//! Bytecode for the stack VM.

use std::fmt;

/// Where a closure capture comes from in the *enclosing* frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSrc {
    /// A local slot of the enclosing function.
    Local(u16),
    /// A capture slot of the enclosing closure.
    Capture(u16),
}

/// One VM instruction. Jumps are relative to the *next* instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    Const(i64),
    /// Push a boolean constant.
    ConstBool(bool),
    /// Push unit.
    ConstUnit,
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push capture slot.
    LoadCapture(u16),
    /// Push global slot (top-level definitions).
    LoadGlobal(u16),
    /// Pop into global slot.
    StoreGlobal(u16),
    /// Integer add (binary, pops two, pushes one).
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Mod,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Integer equality.
    Eq,
    /// Integer disequality.
    Ne,
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Boolean not.
    Not,
    /// Superinstruction: add immediate (from peephole).
    AddImm(i64),
    /// Unconditional relative jump.
    Jump(i32),
    /// Pop a bool; jump if false.
    JumpIfFalse(i32),
    /// Build a closure over function `func` with the given captures.
    MakeClosure {
        /// Target function index.
        func: u16,
        /// Capture sources, evaluated in the enclosing frame.
        captures: Vec<CaptureSrc>,
    },
    /// Call with `n` arguments (closure under the args on the stack).
    Call(u8),
    /// Tail call: like [`Instr::Call`] but reuses the current frame, so tail
    /// recursion runs in constant stack space (inserted automatically for
    /// `Call; Ret` sequences).
    TailCall(u8),
    /// Return the top of stack to the caller.
    Ret,
    /// Call native function `idx` with `nargs` integer arguments.
    CallNative {
        /// Index into the native registry.
        idx: u16,
        /// Argument count.
        nargs: u8,
    },
    /// Pop `init` and `len`, push a new vector.
    VecNew,
    /// Pop index and vector, push element.
    VecGet,
    /// Pop value, index, vector; store; push unit.
    VecSet,
    /// Pop vector, push its length.
    VecLen,
    /// Discard the top of stack.
    Pop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const(n) => write!(f, "const {n}"),
            Instr::ConstBool(b) => write!(f, "const {b}"),
            Instr::ConstUnit => write!(f, "const unit"),
            Instr::LoadLocal(i) => write!(f, "load {i}"),
            Instr::StoreLocal(i) => write!(f, "store {i}"),
            Instr::LoadCapture(i) => write!(f, "loadcap {i}"),
            Instr::LoadGlobal(i) => write!(f, "loadg {i}"),
            Instr::StoreGlobal(i) => write!(f, "storeg {i}"),
            Instr::AddImm(n) => write!(f, "addimm {n}"),
            Instr::Jump(d) => write!(f, "jump {d}"),
            Instr::JumpIfFalse(d) => write!(f, "jfalse {d}"),
            Instr::MakeClosure { func, captures } => {
                write!(f, "closure f{func} [{} captures]", captures.len())
            }
            Instr::Call(n) => write!(f, "call {n}"),
            Instr::TailCall(n) => write!(f, "tailcall {n}"),
            Instr::Ret => write!(f, "ret"),
            Instr::CallNative { idx, nargs } => write!(f, "native {idx} ({nargs} args)"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name (for disassembly; `<main>` for the entry).
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
    /// Total local slots (params first).
    pub n_locals: usize,
    /// The code; must end with `Ret` on every path.
    pub code: Vec<Instr>,
}

/// A compiled program: functions plus the native-call registry names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bytecode {
    /// All functions; index 0 is the entry point.
    pub functions: Vec<Function>,
    /// Names of native functions referenced by `CallNative`.
    pub natives: Vec<String>,
}

impl Bytecode {
    /// Total instruction count across all functions (optimizer metric).
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Renders a readable disassembly.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (fi, func) in self.functions.iter().enumerate() {
            let _ = writeln!(
                out,
                "fn {} (f{fi}, arity {}, {} locals):",
                func.name, func.arity, func.n_locals
            );
            for (i, instr) in func.code.iter().enumerate() {
                let _ = writeln!(out, "  {i:4}: {instr}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembly_lists_functions_and_offsets() {
        let bc = Bytecode {
            functions: vec![Function {
                name: "<main>".into(),
                arity: 0,
                n_locals: 1,
                code: vec![
                    Instr::Const(1),
                    Instr::StoreLocal(0),
                    Instr::LoadLocal(0),
                    Instr::Ret,
                ],
            }],
            natives: vec![],
        };
        let d = bc.disassemble();
        assert!(d.contains("fn <main>"));
        assert!(d.contains("0: const 1"));
        assert!(d.contains("3: ret"));
        assert_eq!(bc.instruction_count(), 4);
    }

    #[test]
    fn instr_display_covers_jumps_and_calls() {
        assert_eq!(Instr::Jump(-3).to_string(), "jump -3");
        assert_eq!(Instr::Call(2).to_string(), "call 2");
        assert_eq!(
            Instr::CallNative { idx: 1, nargs: 2 }.to_string(),
            "native 1 (2 args)"
        );
    }
}
