//! Contracts over BitC functions — the actual BitC vision, wired end to
//! end: write a function in the language, state `requires`/`ensures` about
//! it, and let the prover discharge the obligation against the *real AST*,
//! not a hand-copied model.
//!
//! The translatable fragment is deliberately the decidable one: integer
//! parameters, `+`/`-`, multiplication by constants, comparisons, `and`/
//! `or`/`not`, `if`, `let`, `begin`, and `set!`. Loops and vectors are out
//! of fragment (they need invariant annotations and array theories); the
//! translator reports them as unsupported rather than guessing.

use crate::ast::{Expr, Program};
use crate::diag::{BitcError, Result};
use bitc_verify::term::{Cmp, Formula, Term};
use bitc_verify::vcgen::{verify_procedure, Procedure, Stmt, Vc, VcOutcome};

/// A contract over a function's parameters and its `result`.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Precondition over the parameter names.
    pub requires: Formula,
    /// Postcondition over the parameter names and `result`.
    pub ensures: Formula,
}

/// Translation state: fresh temporaries and accumulated statements.
#[derive(Debug, Default)]
struct Translator {
    fresh: usize,
}

impl Translator {
    fn fresh_tmp(&mut self) -> String {
        self.fresh += 1;
        format!("tmp%{}", self.fresh)
    }

    /// Translates an integer-valued expression into statements + a term.
    fn int_expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<Term> {
        match e {
            Expr::Int(n) => Ok(Term::Int(*n)),
            Expr::Var(x) => Ok(Term::var(x)),
            Expr::Apply(head, args) => {
                let Expr::Var(op) = &**head else {
                    return Err(unsupported("higher-order call"));
                };
                match (op.as_str(), args.as_slice()) {
                    ("+", [a, b]) => {
                        let (ta, tb) = (self.int_expr(a, out)?, self.int_expr(b, out)?);
                        Ok(Term::Add(Box::new(ta), Box::new(tb)))
                    }
                    ("-", [a, b]) => {
                        let (ta, tb) = (self.int_expr(a, out)?, self.int_expr(b, out)?);
                        Ok(Term::Sub(Box::new(ta), Box::new(tb)))
                    }
                    ("*", [Expr::Int(k), b]) => {
                        let tb = self.int_expr(b, out)?;
                        Ok(Term::Scale(*k, Box::new(tb)))
                    }
                    ("*", [a, Expr::Int(k)]) => {
                        let ta = self.int_expr(a, out)?;
                        Ok(Term::Scale(*k, Box::new(ta)))
                    }
                    ("*", _) => Err(unsupported("non-linear multiplication")),
                    _ => Err(unsupported("call in contract fragment")),
                }
            }
            Expr::If(c, t, f) => {
                let cond = self.bool_expr(c, out)?;
                let tmp = self.fresh_tmp();
                let mut then_stmts = Vec::new();
                let tt = self.int_expr(t, &mut then_stmts)?;
                then_stmts.push(Stmt::Assign(tmp.clone(), tt));
                let mut else_stmts = Vec::new();
                let ft = self.int_expr(f, &mut else_stmts)?;
                else_stmts.push(Stmt::Assign(tmp.clone(), ft));
                out.push(Stmt::If(cond, then_stmts, else_stmts));
                Ok(Term::var(&tmp))
            }
            Expr::Let(bindings, body) => {
                for (name, bound) in bindings {
                    let t = self.int_expr(bound, out)?;
                    out.push(Stmt::Assign(name.clone(), t));
                }
                self.int_expr(body, out)
            }
            Expr::Begin(es) => {
                let (last, init) = es.split_last().ok_or_else(|| unsupported("empty begin"))?;
                for e in init {
                    self.stmt_expr(e, out)?;
                }
                self.int_expr(last, out)
            }
            other => Err(unsupported_detail(other)),
        }
    }

    /// Translates a unit-ish expression executed for effect.
    fn stmt_expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<()> {
        match e {
            Expr::SetBang(x, v) => {
                let t = self.int_expr(v, out)?;
                out.push(Stmt::Assign(x.clone(), t));
                Ok(())
            }
            Expr::Begin(es) => {
                for e in es {
                    self.stmt_expr(e, out)?;
                }
                Ok(())
            }
            Expr::If(c, t, f) => {
                let cond = self.bool_expr(c, out)?;
                let mut then_stmts = Vec::new();
                self.stmt_expr(t, &mut then_stmts)?;
                let mut else_stmts = Vec::new();
                self.stmt_expr(f, &mut else_stmts)?;
                out.push(Stmt::If(cond, then_stmts, else_stmts));
                Ok(())
            }
            Expr::Unit => Ok(()),
            other => Err(unsupported_detail(other)),
        }
    }

    /// Translates a boolean expression into a formula (side-effect-free
    /// conditions only, as in the language's typical guard position).
    fn bool_expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<Formula> {
        match e {
            Expr::Bool(b) => Ok(if *b { Formula::True } else { Formula::False }),
            Expr::Apply(head, args) => {
                let Expr::Var(op) = &**head else {
                    return Err(unsupported("higher-order condition"));
                };
                let cmp = |c: Cmp, tr: &mut Translator, out: &mut Vec<Stmt>| -> Result<Formula> {
                    let ta = tr.int_expr(&args[0], out)?;
                    let tb = tr.int_expr(&args[1], out)?;
                    Ok(Formula::cmp(c, ta, tb))
                };
                match op.as_str() {
                    "<" => cmp(Cmp::Lt, self, out),
                    "<=" => cmp(Cmp::Le, self, out),
                    ">" => cmp(Cmp::Gt, self, out),
                    ">=" => cmp(Cmp::Ge, self, out),
                    "=" => cmp(Cmp::Eq, self, out),
                    "!=" => cmp(Cmp::Ne, self, out),
                    "and" => Ok(Formula::and(
                        self.bool_expr(&args[0], out)?,
                        self.bool_expr(&args[1], out)?,
                    )),
                    "or" => Ok(Formula::or(
                        self.bool_expr(&args[0], out)?,
                        self.bool_expr(&args[1], out)?,
                    )),
                    "not" => Ok(Formula::not(self.bool_expr(&args[0], out)?)),
                    other => Err(unsupported(&format!("condition operator {other}"))),
                }
            }
            other => Err(unsupported_detail(other)),
        }
    }
}

fn unsupported(what: &str) -> BitcError {
    BitcError::compile(format!("outside the contract fragment: {what}"))
}

fn unsupported_detail(e: &Expr) -> BitcError {
    unsupported(&format!("expression form {e}"))
}

/// Translates the named function into a contract-checking [`Procedure`].
///
/// # Errors
///
/// Returns [`BitcError::Compile`] if the function is missing, not a lambda,
/// or uses constructs outside the decidable fragment.
pub fn procedure_for(p: &Program, name: &str, contract: &Contract) -> Result<Procedure> {
    let def = p
        .defs
        .iter()
        .find(|d| d.name == name)
        .ok_or_else(|| BitcError::compile(format!("no definition named {name}")))?;
    let Expr::Lambda(_params, body) = &def.expr else {
        return Err(BitcError::compile(format!("{name} is not a function")));
    };
    let mut tr = Translator::default();
    let mut stmts = Vec::new();
    let result = tr.int_expr(body, &mut stmts)?;
    stmts.push(Stmt::Assign("result".into(), result));
    Ok(Procedure {
        name: name.to_owned(),
        requires: contract.requires.clone(),
        ensures: contract.ensures.clone(),
        body: stmts,
    })
}

/// Verifies `name` in `p` against `contract`.
///
/// # Errors
///
/// Translation errors; verification outcomes (including refutations) are
/// returned in the result list, not as errors.
pub fn verify_function(
    p: &Program,
    name: &str,
    contract: &Contract,
) -> Result<Vec<(Vc, VcOutcome)>> {
    Ok(verify_procedure(&procedure_for(p, name, contract)?))
}

/// True if every obligation of `name` against `contract` is proved.
///
/// # Errors
///
/// Translation errors only.
pub fn check_function(p: &Program, name: &str, contract: &Contract) -> Result<bool> {
    Ok(verify_function(p, name, contract)?
        .iter()
        .all(|(_, o)| *o == VcOutcome::Proved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn abs_satisfies_nonnegativity() {
        let p = parse_program("(define abs (lambda (x) (if (< x 0) (- 0 x) x))) (abs -3)").unwrap();
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Ge, v("result"), Term::Int(0)),
        };
        assert!(check_function(&p, "abs", &contract).unwrap());
    }

    #[test]
    fn buggy_abs_is_refuted() {
        // The else branch forgets the negation.
        let p = parse_program("(define abs (lambda (x) (if (< x 0) x x))) (abs -3)").unwrap();
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Ge, v("result"), Term::Int(0)),
        };
        let results = verify_function(&p, "abs", &contract).unwrap();
        assert!(matches!(results[0].1, VcOutcome::Refuted(_)));
    }

    #[test]
    fn clamp_stays_in_range() {
        let p = parse_program(
            "(define clamp (lambda (x lo hi)
               (if (< x lo) lo (if (> x hi) hi x))))
             (clamp 5 0 10)",
        )
        .unwrap();
        let contract = Contract {
            requires: Formula::cmp(Cmp::Le, v("lo"), v("hi")),
            ensures: Formula::and(
                Formula::cmp(Cmp::Ge, v("result"), v("lo")),
                Formula::cmp(Cmp::Le, v("result"), v("hi")),
            ),
        };
        assert!(check_function(&p, "clamp", &contract).unwrap());
    }

    #[test]
    fn clamp_without_precondition_is_refuted() {
        let p = parse_program(
            "(define clamp (lambda (x lo hi)
               (if (< x lo) lo (if (> x hi) hi x))))
             (clamp 5 0 10)",
        )
        .unwrap();
        // Without lo <= hi the postcondition is unprovable (lo > hi breaks it).
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::and(
                Formula::cmp(Cmp::Ge, v("result"), v("lo")),
                Formula::cmp(Cmp::Le, v("result"), v("hi")),
            ),
        };
        assert!(!check_function(&p, "clamp", &contract).unwrap());
    }

    #[test]
    fn linear_arithmetic_with_lets_and_mutation() {
        let p = parse_program(
            "(define scale-add (lambda (a b)
               (let ((acc (* 3 a)))
                 (begin
                   (set! acc (+ acc b))
                   acc))))
             (scale-add 1 2)",
        )
        .unwrap();
        let contract = Contract {
            requires: Formula::and(
                Formula::cmp(Cmp::Ge, v("a"), Term::Int(0)),
                Formula::cmp(Cmp::Ge, v("b"), Term::Int(0)),
            ),
            ensures: Formula::cmp(Cmp::Ge, v("result"), v("b")),
        };
        assert!(check_function(&p, "scale-add", &contract).unwrap());
    }

    #[test]
    fn out_of_fragment_constructs_are_reported() {
        let p = parse_program("(define f (lambda (x) (vec-len (make-vector x 0)))) (f 3)").unwrap();
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::True,
        };
        let err = verify_function(&p, "f", &contract).unwrap_err();
        assert!(err.to_string().contains("outside the contract fragment"));
    }

    #[test]
    fn nonlinear_multiplication_is_rejected_not_mistranslated() {
        let p = parse_program("(define sq (lambda (x) (* x x))) (sq 3)").unwrap();
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Ge, v("result"), Term::Int(0)),
        };
        assert!(verify_function(&p, "sq", &contract).is_err());
    }

    #[test]
    fn missing_function_is_an_error() {
        let p = parse_program("(+ 1 2)").unwrap();
        let contract = Contract {
            requires: Formula::True,
            ensures: Formula::True,
        };
        assert!(verify_function(&p, "ghost", &contract).is_err());
    }
}
