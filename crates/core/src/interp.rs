//! Reference tree-walking interpreter.
//!
//! This is the semantic oracle: slow, obviously correct, used by tests to
//! validate the compiler + VM (differential testing) and by experiment E3 as
//! the "no optimization at all" data point.

use crate::ast::{primitive_arity, Expr, Program};
use crate::diag::{BitcError, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// Closure: parameters, body, captured environment.
    Closure(Rc<ClosureData>),
    /// Mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
}

/// The body and environment of a closure.
#[derive(Debug)]
pub struct ClosureData {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expression.
    pub body: Expr,
    /// Captured environment.
    pub env: Env,
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Vector(a), Value::Vector(b)) => *a.borrow() == *b.borrow(),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Unit => write!(f, "(unit)"),
            Value::Closure(_) => write!(f, "#<closure>"),
            Value::Vector(v) => {
                write!(f, "#(")?;
                for (i, x) in v.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An environment: a persistent chain of mutable frames, so `set!` is
/// visible through closures (Scheme-style boxes, one per binding).
pub type Env = HashMap<String, Rc<RefCell<Value>>>;

fn lookup(env: &Env, name: &str) -> Result<Rc<RefCell<Value>>> {
    env.get(name)
        .cloned()
        .ok_or_else(|| BitcError::runtime(format!("unbound variable {name}")))
}

fn expect_int(v: &Value) -> Result<i64> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(BitcError::runtime(format!("expected int, found {other}"))),
    }
}

fn expect_bool(v: &Value) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(BitcError::runtime(format!("expected bool, found {other}"))),
    }
}

fn apply_primitive(name: &str, args: &[Value]) -> Result<Value> {
    let int2 = || -> Result<(i64, i64)> { Ok((expect_int(&args[0])?, expect_int(&args[1])?)) };
    Ok(match name {
        "+" => Value::Int(int2()?.0.wrapping_add(int2()?.1)),
        "-" => Value::Int(int2()?.0.wrapping_sub(int2()?.1)),
        "*" => Value::Int(int2()?.0.wrapping_mul(int2()?.1)),
        "div" => {
            let (a, b) = int2()?;
            if b == 0 {
                return Err(BitcError::runtime("division by zero"));
            }
            Value::Int(a.wrapping_div(b))
        }
        "mod" => {
            let (a, b) = int2()?;
            if b == 0 {
                return Err(BitcError::runtime("modulo by zero"));
            }
            Value::Int(a.wrapping_rem(b))
        }
        "<" => Value::Bool(int2()?.0 < int2()?.1),
        "<=" => Value::Bool(int2()?.0 <= int2()?.1),
        ">" => Value::Bool(int2()?.0 > int2()?.1),
        ">=" => Value::Bool(int2()?.0 >= int2()?.1),
        "=" => Value::Bool(int2()?.0 == int2()?.1),
        "!=" => Value::Bool(int2()?.0 != int2()?.1),
        "and" => Value::Bool(expect_bool(&args[0])? && expect_bool(&args[1])?),
        "or" => Value::Bool(expect_bool(&args[0])? || expect_bool(&args[1])?),
        "not" => Value::Bool(!expect_bool(&args[0])?),
        other => return Err(BitcError::runtime(format!("unknown primitive {other}"))),
    })
}

/// Evaluates `e` under `env`.
///
/// # Errors
///
/// Returns [`BitcError::Runtime`] on dynamic errors (the typechecker rules
/// most of them out; the interpreter still checks, because it is the oracle).
pub fn eval(env: &Env, e: &Expr) -> Result<Value> {
    match e {
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Unit => Ok(Value::Unit),
        Expr::Var(name) => {
            if let Ok(cell) = lookup(env, name) {
                let v = cell.borrow().clone();
                Ok(v)
            } else if primitive_arity(name).is_some() {
                Err(BitcError::runtime(format!(
                    "primitive {name} must be applied, not referenced"
                )))
            } else {
                Err(BitcError::runtime(format!("unbound variable {name}")))
            }
        }
        Expr::If(c, t, f) => {
            if expect_bool(&eval(env, c)?)? {
                eval(env, t)
            } else {
                eval(env, f)
            }
        }
        Expr::Let(bindings, body) => {
            let mut extended = env.clone();
            for (name, bound) in bindings {
                let v = eval(env, bound)?;
                extended.insert(name.clone(), Rc::new(RefCell::new(v)));
            }
            eval(&extended, body)
        }
        Expr::Lambda(params, body) => Ok(Value::Closure(Rc::new(ClosureData {
            params: params.clone(),
            body: (**body).clone(),
            env: env.clone(),
        }))),
        Expr::Apply(head, args) => {
            // Primitive in head position?
            if let Expr::Var(name) = &**head {
                if !env.contains_key(name) {
                    if let Some(arity) = primitive_arity(name) {
                        if args.len() != arity {
                            return Err(BitcError::runtime(format!(
                                "primitive {name} expects {arity} arguments, got {}",
                                args.len()
                            )));
                        }
                        let mut vs = Vec::with_capacity(args.len());
                        for a in args {
                            vs.push(eval(env, a)?);
                        }
                        return apply_primitive(name, &vs);
                    }
                }
            }
            let f = eval(env, head)?;
            let mut vs = Vec::with_capacity(args.len());
            for a in args {
                vs.push(eval(env, a)?);
            }
            match f {
                Value::Closure(data) => {
                    if data.params.len() != vs.len() {
                        return Err(BitcError::runtime(format!(
                            "function expects {} arguments, got {}",
                            data.params.len(),
                            vs.len()
                        )));
                    }
                    let mut call_env = data.env.clone();
                    for (p, v) in data.params.iter().zip(vs) {
                        call_env.insert(p.clone(), Rc::new(RefCell::new(v)));
                    }
                    eval(&call_env, &data.body)
                }
                other => Err(BitcError::runtime(format!("cannot apply {other}"))),
            }
        }
        Expr::Begin(es) => {
            let mut last = Value::Unit;
            for e in es {
                last = eval(env, e)?;
            }
            Ok(last)
        }
        Expr::SetBang(name, value) => {
            let cell = lookup(env, name)?;
            let v = eval(env, value)?;
            *cell.borrow_mut() = v;
            Ok(Value::Unit)
        }
        Expr::While(cond, body) => {
            while expect_bool(&eval(env, cond)?)? {
                for e in body {
                    eval(env, e)?;
                }
            }
            Ok(Value::Unit)
        }
        Expr::MakeVector(n, init) => {
            let len = expect_int(&eval(env, n)?)?;
            if len < 0 {
                return Err(BitcError::runtime(format!(
                    "make-vector with negative length {len}"
                )));
            }
            let init = eval(env, init)?;
            let len = usize::try_from(len).expect("checked nonnegative");
            Ok(Value::Vector(Rc::new(RefCell::new(vec![init; len]))))
        }
        Expr::VectorRef(v, i) => {
            let vec = eval(env, v)?;
            let idx = expect_int(&eval(env, i)?)?;
            match vec {
                Value::Vector(cells) => {
                    let cells = cells.borrow();
                    usize::try_from(idx)
                        .ok()
                        .and_then(|i| cells.get(i).cloned())
                        .ok_or_else(|| {
                            BitcError::runtime(format!(
                                "vector index {idx} out of bounds (len {})",
                                cells.len()
                            ))
                        })
                }
                other => Err(BitcError::runtime(format!("vec-ref of non-vector {other}"))),
            }
        }
        Expr::VectorSet(v, i, x) => {
            let vec = eval(env, v)?;
            let idx = expect_int(&eval(env, i)?)?;
            let val = eval(env, x)?;
            match vec {
                Value::Vector(cells) => {
                    let mut cells = cells.borrow_mut();
                    let len = cells.len();
                    let slot = usize::try_from(idx).ok().and_then(|i| cells.get_mut(i));
                    match slot {
                        Some(s) => {
                            *s = val;
                            Ok(Value::Unit)
                        }
                        None => Err(BitcError::runtime(format!(
                            "vector index {idx} out of bounds (len {len})"
                        ))),
                    }
                }
                other => Err(BitcError::runtime(format!(
                    "vec-set! of non-vector {other}"
                ))),
            }
        }
        Expr::VectorLen(v) => match eval(env, v)? {
            Value::Vector(cells) => Ok(Value::Int(
                i64::try_from(cells.borrow().len()).expect("fits i64"),
            )),
            other => Err(BitcError::runtime(format!("vec-len of non-vector {other}"))),
        },
    }
}

/// Evaluates a whole program.
///
/// # Errors
///
/// Returns runtime errors from any definition or the main expression.
pub fn eval_program(p: &Program) -> Result<Value> {
    let mut env: Env = HashMap::new();
    for def in &p.defs {
        // Tie the recursive knot: insert a placeholder cell first.
        let cell = Rc::new(RefCell::new(Value::Unit));
        env.insert(def.name.clone(), Rc::clone(&cell));
        let v = eval(&env, &def.expr)?;
        *cell.borrow_mut() = v;
    }
    eval(&env, &p.main)
}

/// Convenience: parse, typecheck, and evaluate `src`.
///
/// # Errors
///
/// Returns the first pipeline error (lex, parse, type, or runtime).
pub fn run_source(src: &str) -> Result<Value> {
    let program = crate::parser::parse_program(src)?;
    crate::infer::infer_program(&program)?;
    eval_program(&program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Value {
        run_source(src).unwrap()
    }

    #[test]
    fn arithmetic_evaluates() {
        assert_eq!(run("(+ 1 (* 2 3))"), Value::Int(7));
        assert_eq!(run("(div 7 2)"), Value::Int(3));
        assert_eq!(run("(mod 7 2)"), Value::Int(1));
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        assert!(run_source("(div 1 0)").is_err());
        assert!(run_source("(mod 1 0)").is_err());
    }

    #[test]
    fn closures_capture_lexically() {
        let v = run("(let ((make-adder (lambda (n) (lambda (x) (+ x n)))))
                       (let ((add3 (make-adder 3))) (add3 4)))");
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn set_bang_is_visible_through_closures() {
        let v = run("(let ((counter 0))
                       (let ((bump (lambda (u) (set! counter (+ counter 1)))))
                         (begin (bump (unit)) (bump (unit)) counter)))");
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn while_loops_run() {
        let v = run("(let ((i 0) (acc 0))
                       (begin
                         (while (< i 5)
                           (set! acc (+ acc i))
                           (set! i (+ i 1)))
                         acc))");
        assert_eq!(v, Value::Int(10));
    }

    #[test]
    fn vectors_read_and_write() {
        let v = run("(let ((v (make-vector 4 0)))
                       (begin
                         (vec-set! v 0 10)
                         (vec-set! v 3 (+ (vec-ref v 0) 5))
                         (+ (vec-ref v 3) (vec-len v))))");
        assert_eq!(v, Value::Int(19));
    }

    #[test]
    fn vector_bounds_are_checked() {
        assert!(run_source("(vec-ref (make-vector 2 0) 5)").is_err());
        assert!(run_source("(vec-set! (make-vector 2 0) -1 0)").is_err());
    }

    #[test]
    fn recursion_works() {
        let v = run("(define fib (lambda (n)
                       (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
                     (fib 15)");
        assert_eq!(v, Value::Int(610));
    }

    #[test]
    fn higher_order_programs_run() {
        let v = run("(define compose (lambda (f g) (lambda (x) (f (g x)))))
                     (define inc (lambda (x) (+ x 1)))
                     (define dbl (lambda (x) (* x 2)))
                     ((compose inc dbl) 5)");
        assert_eq!(v, Value::Int(11));
    }

    #[test]
    fn shadowing_respects_scope() {
        let v = run("(let ((x 1)) (let ((x 2)) x))");
        assert_eq!(v, Value::Int(2));
        let v = run("(let ((x 1)) (begin (let ((x 2)) x) x))");
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn negative_vector_length_is_rejected() {
        assert!(run_source("(make-vector -1 0)").is_err());
    }
}
