//! Compiler: AST → bytecode.
//!
//! Three stages:
//!
//! 1. **Assignment conversion** — variables that are both mutated (`set!`)
//!    and captured by a nested lambda are rewritten into one-element vectors
//!    (heap boxes), so flat-closure capture-by-value preserves sharing.
//! 2. **Closure conversion** — lexical references resolve to local slots,
//!    transitive capture chains (upvalues), or global slots.
//! 3. **Code generation** — a straightforward stack-machine translation.

use crate::ast::{is_primitive, primitive_arity, Def, Expr, Program};
use crate::bytecode::{Bytecode, CaptureSrc, Function, Instr};
use crate::diag::{BitcError, Result};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Assignment conversion
// ---------------------------------------------------------------------------

fn collect_mutated(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::SetBang(x, v) => {
            out.insert(x.clone());
            collect_mutated(v, out);
        }
        Expr::If(a, b, c) => {
            collect_mutated(a, out);
            collect_mutated(b, out);
            collect_mutated(c, out);
        }
        Expr::Let(binds, body) => {
            for (_, b) in binds {
                collect_mutated(b, out);
            }
            collect_mutated(body, out);
        }
        Expr::Lambda(_, body) => collect_mutated(body, out),
        Expr::Apply(h, args) => {
            collect_mutated(h, out);
            for a in args {
                collect_mutated(a, out);
            }
        }
        Expr::Begin(es) | Expr::While(_, es) => {
            if let Expr::While(c, _) = e {
                collect_mutated(c, out);
            }
            for x in es {
                collect_mutated(x, out);
            }
        }
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => {
            collect_mutated(a, out);
            collect_mutated(b, out);
        }
        Expr::VectorSet(a, b, c) => {
            collect_mutated(a, out);
            collect_mutated(b, out);
            collect_mutated(c, out);
        }
        Expr::VectorLen(v) => collect_mutated(v, out),
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit | Expr::Var(_) => {}
    }
}

fn free_vars(e: &Expr, bound: &mut Vec<String>, out: &mut HashSet<String>) {
    match e {
        Expr::Var(x) => {
            if !bound.contains(x) && !is_primitive(x) {
                out.insert(x.clone());
            }
        }
        Expr::SetBang(x, v) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
            free_vars(v, bound, out);
        }
        Expr::If(a, b, c) => {
            free_vars(a, bound, out);
            free_vars(b, bound, out);
            free_vars(c, bound, out);
        }
        Expr::Let(binds, body) => {
            for (_, b) in binds {
                free_vars(b, bound, out);
            }
            let n = binds.len();
            for (x, _) in binds {
                bound.push(x.clone());
            }
            free_vars(body, bound, out);
            bound.truncate(bound.len() - n);
        }
        Expr::Lambda(params, body) => {
            let n = params.len();
            for p in params {
                bound.push(p.clone());
            }
            free_vars(body, bound, out);
            bound.truncate(bound.len() - n);
        }
        Expr::Apply(h, args) => {
            free_vars(h, bound, out);
            for a in args {
                free_vars(a, bound, out);
            }
        }
        Expr::Begin(es) => {
            for x in es {
                free_vars(x, bound, out);
            }
        }
        Expr::While(c, es) => {
            free_vars(c, bound, out);
            for x in es {
                free_vars(x, bound, out);
            }
        }
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => {
            free_vars(a, bound, out);
            free_vars(b, bound, out);
        }
        Expr::VectorSet(a, b, c) => {
            free_vars(a, bound, out);
            free_vars(b, bound, out);
            free_vars(c, bound, out);
        }
        Expr::VectorLen(v) => free_vars(v, bound, out),
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit => {}
    }
}

fn collect_captured(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Lambda(_, body) => {
            let mut bound = Vec::new();
            // Free variables of the whole lambda are captured names.
            free_vars(e, &mut bound, out);
            collect_captured(body, out);
        }
        Expr::If(a, b, c) => {
            collect_captured(a, out);
            collect_captured(b, out);
            collect_captured(c, out);
        }
        Expr::Let(binds, body) => {
            for (_, b) in binds {
                collect_captured(b, out);
            }
            collect_captured(body, out);
        }
        Expr::Apply(h, args) => {
            collect_captured(h, out);
            for a in args {
                collect_captured(a, out);
            }
        }
        Expr::Begin(es) => {
            for x in es {
                collect_captured(x, out);
            }
        }
        Expr::While(c, es) => {
            collect_captured(c, out);
            for x in es {
                collect_captured(x, out);
            }
        }
        Expr::SetBang(_, v) => collect_captured(v, out),
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => {
            collect_captured(a, out);
            collect_captured(b, out);
        }
        Expr::VectorSet(a, b, c) => {
            collect_captured(a, out);
            collect_captured(b, out);
            collect_captured(c, out);
        }
        Expr::VectorLen(v) => collect_captured(v, out),
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit | Expr::Var(_) => {}
    }
}

fn box_expr(e: Expr) -> Expr {
    Expr::MakeVector(Box::new(Expr::Int(1)), Box::new(e))
}

fn rewrite(e: &Expr, boxed: &HashSet<String>) -> Expr {
    match e {
        Expr::Var(x) if boxed.contains(x) => {
            Expr::VectorRef(Box::new(Expr::Var(x.clone())), Box::new(Expr::Int(0)))
        }
        Expr::SetBang(x, v) if boxed.contains(x) => Expr::VectorSet(
            Box::new(Expr::Var(x.clone())),
            Box::new(Expr::Int(0)),
            Box::new(rewrite(v, boxed)),
        ),
        Expr::SetBang(x, v) => Expr::SetBang(x.clone(), Box::new(rewrite(v, boxed))),
        Expr::Let(binds, body) => Expr::Let(
            binds
                .iter()
                .map(|(x, b)| {
                    let rb = rewrite(b, boxed);
                    if boxed.contains(x) {
                        (x.clone(), box_expr(rb))
                    } else {
                        (x.clone(), rb)
                    }
                })
                .collect(),
            Box::new(rewrite(body, boxed)),
        ),
        Expr::Lambda(params, body) => {
            let new_body = rewrite(body, boxed);
            // Boxed parameters get re-bound to boxes on entry.
            let boxed_params: Vec<&String> = params.iter().filter(|p| boxed.contains(*p)).collect();
            let body = if boxed_params.is_empty() {
                new_body
            } else {
                Expr::Let(
                    boxed_params
                        .iter()
                        .map(|p| ((*p).clone(), box_expr(Expr::Var((*p).clone()))))
                        .collect(),
                    Box::new(new_body),
                )
            };
            Expr::Lambda(params.clone(), Box::new(body))
        }
        Expr::If(a, b, c) => Expr::If(
            Box::new(rewrite(a, boxed)),
            Box::new(rewrite(b, boxed)),
            Box::new(rewrite(c, boxed)),
        ),
        Expr::Apply(h, args) => Expr::Apply(
            Box::new(rewrite(h, boxed)),
            args.iter().map(|a| rewrite(a, boxed)).collect(),
        ),
        Expr::Begin(es) => Expr::Begin(es.iter().map(|x| rewrite(x, boxed)).collect()),
        Expr::While(c, es) => Expr::While(
            Box::new(rewrite(c, boxed)),
            es.iter().map(|x| rewrite(x, boxed)).collect(),
        ),
        Expr::MakeVector(a, b) => {
            Expr::MakeVector(Box::new(rewrite(a, boxed)), Box::new(rewrite(b, boxed)))
        }
        Expr::VectorRef(a, b) => {
            Expr::VectorRef(Box::new(rewrite(a, boxed)), Box::new(rewrite(b, boxed)))
        }
        Expr::VectorSet(a, b, c) => Expr::VectorSet(
            Box::new(rewrite(a, boxed)),
            Box::new(rewrite(b, boxed)),
            Box::new(rewrite(c, boxed)),
        ),
        Expr::VectorLen(v) => Expr::VectorLen(Box::new(rewrite(v, boxed))),
        other => other.clone(),
    }
}

/// Rewrites mutated-and-captured variables into heap boxes.
#[must_use]
pub fn assignment_convert(e: &Expr) -> Expr {
    let mut mutated = HashSet::new();
    collect_mutated(e, &mut mutated);
    let mut captured = HashSet::new();
    collect_captured(e, &mut captured);
    let boxed: HashSet<String> = mutated.intersection(&captured).cloned().collect();
    if boxed.is_empty() {
        e.clone()
    } else {
        rewrite(e, &boxed)
    }
}

// ---------------------------------------------------------------------------
// Closure conversion + code generation
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FnCtx {
    func_index: usize,
    scopes: Vec<HashMap<String, u16>>,
    n_locals: usize,
    captures: Vec<(String, CaptureSrc)>,
    code: Vec<Instr>,
}

#[derive(Debug, Clone, Copy)]
enum Resolved {
    Local(u16),
    Capture(u16),
    Global(u16),
}

/// The compiler.
#[derive(Debug, Default)]
pub struct Compiler {
    functions: Vec<Option<Function>>,
    stack: Vec<FnCtx>,
    globals: HashMap<String, u16>,
    natives: Vec<String>,
    native_arity: HashMap<String, usize>,
}

impl Compiler {
    fn ctx(&mut self) -> &mut FnCtx {
        self.stack.last_mut().expect("inside a function")
    }

    fn emit(&mut self, i: Instr) {
        self.ctx().code.push(i);
    }

    fn new_local(&mut self, name: &str) -> u16 {
        let ctx = self.ctx();
        let slot = u16::try_from(ctx.n_locals).expect("local slots fit u16");
        ctx.n_locals += 1;
        ctx.scopes
            .last_mut()
            .expect("scope open")
            .insert(name.to_owned(), slot);
        slot
    }

    fn resolve_at(&mut self, depth: usize, name: &str) -> Option<Resolved> {
        for scope in self.stack[depth].scopes.iter().rev() {
            if let Some(&slot) = scope.get(name) {
                return Some(Resolved::Local(slot));
            }
        }
        // Existing capture in this frame?
        if let Some(pos) = self.stack[depth]
            .captures
            .iter()
            .position(|(n, _)| n == name)
        {
            return Some(Resolved::Capture(u16::try_from(pos).expect("fits")));
        }
        if depth == 0 {
            return self.globals.get(name).copied().map(Resolved::Global);
        }
        match self.resolve_at(depth - 1, name)? {
            Resolved::Local(slot) => {
                self.stack[depth]
                    .captures
                    .push((name.to_owned(), CaptureSrc::Local(slot)));
                Some(Resolved::Capture(
                    u16::try_from(self.stack[depth].captures.len() - 1).expect("fits"),
                ))
            }
            Resolved::Capture(idx) => {
                self.stack[depth]
                    .captures
                    .push((name.to_owned(), CaptureSrc::Capture(idx)));
                Some(Resolved::Capture(
                    u16::try_from(self.stack[depth].captures.len() - 1).expect("fits"),
                ))
            }
            Resolved::Global(g) => Some(Resolved::Global(g)),
        }
    }

    fn resolve(&mut self, name: &str) -> Option<Resolved> {
        self.resolve_at(self.stack.len() - 1, name)
    }

    fn primitive_instr(name: &str) -> Option<Instr> {
        Some(match name {
            "+" => Instr::Add,
            "-" => Instr::Sub,
            "*" => Instr::Mul,
            "div" => Instr::Div,
            "mod" => Instr::Mod,
            "<" => Instr::Lt,
            "<=" => Instr::Le,
            ">" => Instr::Gt,
            ">=" => Instr::Ge,
            "=" => Instr::Eq,
            "!=" => Instr::Ne,
            "and" => Instr::And,
            "or" => Instr::Or,
            "not" => Instr::Not,
            _ => return None,
        })
    }

    fn compile_expr(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Int(n) => self.emit(Instr::Const(*n)),
            Expr::Bool(b) => self.emit(Instr::ConstBool(*b)),
            Expr::Unit => self.emit(Instr::ConstUnit),
            Expr::Var(name) => match self.resolve(name) {
                Some(Resolved::Local(s)) => self.emit(Instr::LoadLocal(s)),
                Some(Resolved::Capture(c)) => self.emit(Instr::LoadCapture(c)),
                Some(Resolved::Global(g)) => self.emit(Instr::LoadGlobal(g)),
                None if is_primitive(name) => {
                    return Err(BitcError::compile(format!(
                        "primitive {name} is not first-class; wrap it in a lambda"
                    )))
                }
                None => {
                    return Err(BitcError::compile(format!("unbound variable {name}")));
                }
            },
            Expr::If(c, t, f) => {
                self.compile_expr(c)?;
                let jfalse_at = self.ctx().code.len();
                self.emit(Instr::JumpIfFalse(0));
                self.compile_expr(t)?;
                let jend_at = self.ctx().code.len();
                self.emit(Instr::Jump(0));
                let else_start = self.ctx().code.len();
                self.compile_expr(f)?;
                let end = self.ctx().code.len();
                self.ctx().code[jfalse_at] =
                    Instr::JumpIfFalse(i32::try_from(else_start - jfalse_at - 1).expect("fits"));
                self.ctx().code[jend_at] =
                    Instr::Jump(i32::try_from(end - jend_at - 1).expect("fits"));
            }
            Expr::Let(binds, body) => {
                // Parallel let: evaluate all initializers, then bind.
                for (_, init) in binds {
                    self.compile_expr(init)?;
                }
                self.ctx().scopes.push(HashMap::new());
                let slots: Vec<u16> = binds.iter().map(|(x, _)| self.new_local(x)).collect();
                for &slot in slots.iter().rev() {
                    self.emit(Instr::StoreLocal(slot));
                }
                self.compile_expr(body)?;
                self.ctx().scopes.pop();
            }
            Expr::Lambda(params, body) => {
                let func_index = self.functions.len();
                self.functions.push(None);
                let mut scope = HashMap::new();
                for (i, p) in params.iter().enumerate() {
                    scope.insert(p.clone(), u16::try_from(i).expect("fits"));
                }
                self.stack.push(FnCtx {
                    func_index,
                    scopes: vec![scope],
                    n_locals: params.len(),
                    captures: Vec::new(),
                    code: Vec::new(),
                });
                self.compile_expr(body)?;
                self.emit(Instr::Ret);
                let mut ctx = self.stack.pop().expect("pushed above");
                mark_tail_calls(&mut ctx.code);
                let captures: Vec<CaptureSrc> = ctx.captures.iter().map(|(_, s)| *s).collect();
                self.functions[func_index] = Some(Function {
                    name: format!("<lambda{func_index}>"),
                    arity: params.len(),
                    n_locals: ctx.n_locals,
                    code: ctx.code,
                });
                debug_assert_eq!(ctx.func_index, func_index);
                self.emit(Instr::MakeClosure {
                    func: u16::try_from(func_index).expect("fits"),
                    captures,
                });
            }
            Expr::Apply(head, args) => {
                if let Expr::Var(name) = &**head {
                    let shadowed = self.resolve(name).is_some();
                    if !shadowed {
                        if let Some(instr) = Self::primitive_instr(name) {
                            let arity = primitive_arity(name).expect("primitive");
                            if args.len() != arity {
                                return Err(BitcError::compile(format!(
                                    "primitive {name} expects {arity} arguments, got {}",
                                    args.len()
                                )));
                            }
                            for a in args {
                                self.compile_expr(a)?;
                            }
                            self.emit(instr);
                            return Ok(());
                        }
                        if let Some(&arity) = self.native_arity.get(name) {
                            if args.len() != arity {
                                return Err(BitcError::compile(format!(
                                    "native {name} expects {arity} arguments, got {}",
                                    args.len()
                                )));
                            }
                            for a in args {
                                self.compile_expr(a)?;
                            }
                            let idx = self
                                .natives
                                .iter()
                                .position(|n| n == name)
                                .expect("native registered");
                            self.emit(Instr::CallNative {
                                idx: u16::try_from(idx).expect("fits"),
                                nargs: u8::try_from(args.len()).expect("fits"),
                            });
                            return Ok(());
                        }
                    }
                }
                self.compile_expr(head)?;
                for a in args {
                    self.compile_expr(a)?;
                }
                self.emit(Instr::Call(
                    u8::try_from(args.len()).expect("arity fits u8"),
                ));
            }
            Expr::Begin(es) => {
                for (i, x) in es.iter().enumerate() {
                    self.compile_expr(x)?;
                    if i != es.len() - 1 {
                        self.emit(Instr::Pop);
                    }
                }
            }
            Expr::SetBang(name, value) => {
                self.compile_expr(value)?;
                match self.resolve(name) {
                    Some(Resolved::Local(s)) => self.emit(Instr::StoreLocal(s)),
                    Some(Resolved::Global(g)) => self.emit(Instr::StoreGlobal(g)),
                    Some(Resolved::Capture(_)) => {
                        return Err(BitcError::compile(format!(
                        "internal: set! of captured variable {name} survived assignment conversion"
                    )))
                    }
                    None => {
                        return Err(BitcError::compile(format!(
                            "set! of unbound variable {name}"
                        )))
                    }
                }
                self.emit(Instr::ConstUnit);
            }
            Expr::While(cond, body) => {
                let loop_start = self.ctx().code.len();
                self.compile_expr(cond)?;
                let jfalse_at = self.ctx().code.len();
                self.emit(Instr::JumpIfFalse(0));
                for x in body {
                    self.compile_expr(x)?;
                    self.emit(Instr::Pop);
                }
                let jback_at = self.ctx().code.len();
                self.emit(Instr::Jump(
                    i32::try_from(loop_start).expect("fits")
                        - i32::try_from(jback_at).expect("fits")
                        - 1,
                ));
                let end = self.ctx().code.len();
                self.ctx().code[jfalse_at] =
                    Instr::JumpIfFalse(i32::try_from(end - jfalse_at - 1).expect("fits"));
                self.emit(Instr::ConstUnit);
            }
            Expr::MakeVector(n, init) => {
                self.compile_expr(n)?;
                self.compile_expr(init)?;
                self.emit(Instr::VecNew);
            }
            Expr::VectorRef(v, i) => {
                self.compile_expr(v)?;
                self.compile_expr(i)?;
                self.emit(Instr::VecGet);
            }
            Expr::VectorSet(v, i, x) => {
                self.compile_expr(v)?;
                self.compile_expr(i)?;
                self.compile_expr(x)?;
                self.emit(Instr::VecSet);
            }
            Expr::VectorLen(v) => {
                self.compile_expr(v)?;
                self.emit(Instr::VecLen);
            }
        }
        Ok(())
    }
}

/// Rewrites `Call; Ret` into `TailCall; Ret` so tail recursion runs in
/// constant stack space. Indices are unchanged (the `Ret` stays as an
/// unreachable landing pad), so no jump fixup is needed.
fn mark_tail_calls(code: &mut [Instr]) {
    for i in 0..code.len().saturating_sub(1) {
        if let (Instr::Call(n), Instr::Ret) = (&code[i], &code[i + 1]) {
            code[i] = Instr::TailCall(*n);
        }
    }
}

/// Compiles a program, with `natives` available as `(name arity)` built-ins
/// callable by name.
///
/// # Errors
///
/// Returns [`BitcError::Compile`] for unbound names or arity violations.
pub fn compile_program_with_natives(p: &Program, natives: &[(&str, usize)]) -> Result<Bytecode> {
    let mut compiler = Compiler {
        natives: natives.iter().map(|(n, _)| (*n).to_owned()).collect(),
        native_arity: natives.iter().map(|(n, a)| ((*n).to_owned(), *a)).collect(),
        ..Compiler::default()
    };
    // Entry function placeholder at index 0.
    compiler.functions.push(None);
    compiler.stack.push(FnCtx {
        func_index: 0,
        scopes: vec![HashMap::new()],
        n_locals: 0,
        captures: Vec::new(),
        code: Vec::new(),
    });
    // Globals for defs (slots assigned up front so recursion resolves).
    for (i, def) in p.defs.iter().enumerate() {
        compiler
            .globals
            .insert(def.name.clone(), u16::try_from(i).expect("fits"));
    }
    for def in &p.defs {
        let converted = assignment_convert(&def.expr);
        compiler.compile_expr(&converted)?;
        let g = compiler.globals[&def.name];
        compiler.emit(Instr::StoreGlobal(g));
    }
    let main = assignment_convert(&p.main);
    compiler.compile_expr(&main)?;
    compiler.emit(Instr::Ret);
    let mut ctx = compiler.stack.pop().expect("entry frame");
    mark_tail_calls(&mut ctx.code);
    compiler.functions[0] = Some(Function {
        name: "<main>".into(),
        arity: 0,
        n_locals: ctx.n_locals,
        code: ctx.code,
    });
    Ok(Bytecode {
        functions: compiler
            .functions
            .into_iter()
            .map(|f| f.expect("all functions finished"))
            .collect(),
        natives: compiler.natives,
    })
}

/// Compiles a program with no natives.
///
/// # Errors
///
/// Returns [`BitcError::Compile`] for unbound names or arity violations.
pub fn compile_program(p: &Program) -> Result<Bytecode> {
    compile_program_with_natives(p, &[])
}

/// Number of global slots a program needs (= number of defs).
#[must_use]
pub fn global_count(p: &Program) -> usize {
    p.defs.len()
}

/// Convenience used across tests and benches: parse + typecheck + compile.
///
/// # Errors
///
/// Returns the first pipeline error.
pub fn compile_source(src: &str) -> Result<Bytecode> {
    let p = crate::parser::parse_program(src)?;
    crate::infer::infer_program(&p)?;
    compile_program(&p)
}

/// Keeps `Def` referenced for rustdoc links.
#[doc(hidden)]
pub fn _def_type_witness(d: &Def) -> &str {
    &d.name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn assignment_conversion_boxes_mutated_captures() {
        let e = parse_expr("(let ((n 0)) (begin ((lambda (u) (set! n 5)) (unit)) n))").unwrap();
        let converted = assignment_convert(&e);
        let s = converted.to_string();
        assert!(
            s.contains("(make-vector 1 0)"),
            "binding must be boxed: {s}"
        );
        assert!(
            s.contains("(vec-set! n 0 5)"),
            "set! must become vec-set!: {s}"
        );
        assert!(
            s.contains("(vec-ref n 0)"),
            "reads must become vec-ref: {s}"
        );
    }

    #[test]
    fn assignment_conversion_leaves_pure_code_alone() {
        let e = parse_expr("(let ((x 1)) (+ x 2))").unwrap();
        assert_eq!(assignment_convert(&e), e);
    }

    #[test]
    fn unmutated_captures_stay_unboxed() {
        let e = parse_expr("(let ((n 1)) (lambda (x) (+ x n)))").unwrap();
        assert_eq!(assignment_convert(&e), e);
    }

    #[test]
    fn compiles_arithmetic_to_stack_ops() {
        let bc = compile_source("(+ 1 (* 2 3))").unwrap();
        assert_eq!(
            bc.functions[0].code,
            vec![
                Instr::Const(1),
                Instr::Const(2),
                Instr::Const(3),
                Instr::Mul,
                Instr::Add,
                Instr::Ret
            ]
        );
    }

    #[test]
    fn compiles_if_with_relative_jumps() {
        let bc = compile_source("(if #t 1 2)").unwrap();
        let code = &bc.functions[0].code;
        assert!(matches!(code[1], Instr::JumpIfFalse(2)));
        assert!(matches!(code[3], Instr::Jump(1)));
    }

    #[test]
    fn lambdas_become_functions_with_captures() {
        let bc = compile_source("(let ((n 3)) ((lambda (x) (+ x n)) 4))").unwrap();
        assert_eq!(bc.functions.len(), 2);
        let makes_closure = bc.functions[0]
            .code
            .iter()
            .any(|i| matches!(i, Instr::MakeClosure { captures, .. } if captures.len() == 1));
        assert!(makes_closure, "{}", bc.disassemble());
    }

    #[test]
    fn defines_become_globals() {
        let bc = compile_source("(define one 1) (+ one 1)").unwrap();
        let code = &bc.functions[0].code;
        assert!(code.contains(&Instr::StoreGlobal(0)));
        assert!(code.contains(&Instr::LoadGlobal(0)));
    }

    #[test]
    fn unbound_variable_is_a_compile_error() {
        let p = parse_program("missing").unwrap();
        assert!(compile_program(&p).is_err());
    }

    #[test]
    fn first_class_primitive_is_rejected_with_hint() {
        let p = parse_program("(let ((f +)) (f 1 2))").unwrap();
        let err = compile_program(&p).unwrap_err();
        assert!(err.to_string().contains("wrap it in a lambda"));
    }

    #[test]
    fn native_calls_compile_to_call_native() {
        let p = parse_program("(host-add 1 2)").unwrap();
        let bc = compile_program_with_natives(&p, &[("host-add", 2)]).unwrap();
        assert!(bc.functions[0]
            .code
            .contains(&Instr::CallNative { idx: 0, nargs: 2 }));
    }

    #[test]
    fn native_arity_is_checked() {
        let p = parse_program("(host-add 1)").unwrap();
        assert!(compile_program_with_natives(&p, &[("host-add", 2)]).is_err());
    }

    #[test]
    fn transitive_captures_chain_through_frames() {
        // innermost lambda reaches two frames up.
        let bc = compile_source("(let ((a 1)) ((lambda (x) ((lambda (y) (+ (+ x y) a)) 2)) 3))")
            .unwrap();
        // Inner function must have two captures (x and a).
        let inner = bc
            .functions
            .iter()
            .find(|f| f.arity == 1 && f.code.len() > 4)
            .expect("inner fn");
        let _ = inner;
        let has_two_capture_closure = bc
            .functions
            .iter()
            .flat_map(|f| &f.code)
            .any(|i| matches!(i, Instr::MakeClosure { captures, .. } if captures.len() == 2));
        assert!(has_two_capture_closure, "{}", bc.disassemble());
    }
}
