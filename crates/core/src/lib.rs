//! # bitc-core — a BitC-style verifiable systems language, reified
//!
//! The paper's primary contribution is an argument that a language can offer
//! ML-strength types *and* the things systems programmers refuse to give up:
//! mutability, unboxed representation, manual-feeling cost models, and
//! checkable invariants. BitC itself was abandoned before evaluation; this
//! crate builds the pipeline the paper describes so the claims become
//! measurable:
//!
//! * [`lexer`] / [`parser`] — S-expression surface syntax (BitC's original
//!   concrete syntax family),
//! * [`ast`] — core language: HM polymorphism plus `set!`, `while`, and
//!   mutable vectors,
//! * [`infer`] — Algorithm W with the value restriction,
//! * [`interp`] — reference interpreter (semantic oracle),
//! * [`compile`] — assignment conversion, closure conversion, codegen,
//! * [`vm`] — one bytecode, two value representations: [`vm::Unboxed`]
//!   (raw words, tags discharged by the type checker) and [`vm::Boxed`]
//!   (uniform heap cells) — the paper's Fallacy 2 as an experiment,
//! * [`opt`] — optimization passes, separable for the Fallacy 3 ablation,
//! * [`ffi`] — the native-call boundary for the Fallacy 4 (legacy
//!   interop) measurements,
//! * [`layout`] — the representation cost model.
//!
//! ```
//! use bitc_core::vm::{run_boxed, run_unboxed};
//!
//! let src = "(define fib (lambda (n)
//!               (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
//!             (fib 10)";
//! assert_eq!(run_unboxed(src).unwrap(), 55);
//! assert_eq!(run_boxed(src).unwrap(), 55); // same semantics, slower clothes
//! ```

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod contracts;
pub mod diag;
pub mod ffi;
pub mod infer;
pub mod interp;
pub mod layout;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod types;
pub mod vm;

pub use diag::{BitcError, Result};
