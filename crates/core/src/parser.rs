//! Parser: tokens → S-expressions → [`crate::ast`].

use crate::ast::{Def, Expr, Program};
use crate::diag::{BitcError, Result, Span};
use crate::lexer::{lex, SpannedToken, Token};

/// A generic S-expression, the intermediate form between tokens and AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// Integer atom.
    Int(i64, Span),
    /// Boolean atom.
    Bool(bool, Span),
    /// Symbol atom.
    Sym(String, Span),
    /// Parenthesized list.
    List(Vec<Sexp>, Span),
}

impl Sexp {
    fn span(&self) -> Span {
        match self {
            Sexp::Int(_, s) | Sexp::Bool(_, s) | Sexp::Sym(_, s) | Sexp::List(_, s) => *s,
        }
    }
}

fn parse_error(span: Span, message: impl Into<String>) -> BitcError {
    BitcError::Parse {
        span,
        message: message.into(),
    }
}

fn read_sexp(tokens: &[SpannedToken], pos: &mut usize) -> Result<Sexp> {
    let Some(t) = tokens.get(*pos) else {
        return Err(parse_error(Span::default(), "unexpected end of input"));
    };
    *pos += 1;
    match &t.token {
        Token::Int(n) => Ok(Sexp::Int(*n, t.span)),
        Token::Bool(b) => Ok(Sexp::Bool(*b, t.span)),
        Token::Ident(s) => Ok(Sexp::Sym(s.clone(), t.span)),
        Token::RParen => Err(parse_error(t.span, "unexpected )")),
        Token::LParen => {
            let start = t.span;
            let mut items = Vec::new();
            loop {
                match tokens.get(*pos) {
                    None => return Err(parse_error(start, "unclosed (")),
                    Some(tok) if tok.token == Token::RParen => {
                        let span = start.merge(tok.span);
                        *pos += 1;
                        return Ok(Sexp::List(items, span));
                    }
                    Some(_) => items.push(read_sexp(tokens, pos)?),
                }
            }
        }
    }
}

/// Reads every top-level S-expression in `src`.
///
/// # Errors
///
/// Returns lexical or syntactic errors.
pub fn read_all(src: &str) -> Result<Vec<Sexp>> {
    let tokens = lex(src)?;
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        out.push(read_sexp(&tokens, &mut pos)?);
    }
    Ok(out)
}

fn expect_sym(s: &Sexp) -> Result<String> {
    match s {
        Sexp::Sym(name, _) => Ok(name.clone()),
        other => Err(parse_error(other.span(), "expected an identifier")),
    }
}

fn to_expr(s: &Sexp) -> Result<Expr> {
    match s {
        Sexp::Int(n, _) => Ok(Expr::Int(*n)),
        Sexp::Bool(b, _) => Ok(Expr::Bool(*b)),
        Sexp::Sym(name, _) => Ok(Expr::Var(name.clone())),
        Sexp::List(items, span) => {
            let Some(head) = items.first() else {
                return Err(parse_error(*span, "empty application"));
            };
            if let Sexp::Sym(kw, _) = head {
                match kw.as_str() {
                    "unit" => {
                        if items.len() != 1 {
                            return Err(parse_error(*span, "(unit) takes no arguments"));
                        }
                        return Ok(Expr::Unit);
                    }
                    "if" => {
                        if items.len() != 4 {
                            return Err(parse_error(*span, "(if c t e) takes three arguments"));
                        }
                        return Ok(Expr::If(
                            Box::new(to_expr(&items[1])?),
                            Box::new(to_expr(&items[2])?),
                            Box::new(to_expr(&items[3])?),
                        ));
                    }
                    "let" => {
                        if items.len() != 3 {
                            return Err(parse_error(*span, "(let ((x e)...) body)"));
                        }
                        let Sexp::List(binds, _) = &items[1] else {
                            return Err(parse_error(
                                items[1].span(),
                                "let bindings must be a list",
                            ));
                        };
                        let mut bindings = Vec::new();
                        for b in binds {
                            let Sexp::List(pair, bspan) = b else {
                                return Err(parse_error(b.span(), "binding must be (name expr)"));
                            };
                            if pair.len() != 2 {
                                return Err(parse_error(*bspan, "binding must be (name expr)"));
                            }
                            bindings.push((expect_sym(&pair[0])?, to_expr(&pair[1])?));
                        }
                        return Ok(Expr::Let(bindings, Box::new(to_expr(&items[2])?)));
                    }
                    "lambda" => {
                        if items.len() != 3 {
                            return Err(parse_error(*span, "(lambda (params) body)"));
                        }
                        let Sexp::List(params, _) = &items[1] else {
                            return Err(parse_error(
                                items[1].span(),
                                "lambda params must be a list",
                            ));
                        };
                        let names: Result<Vec<String>> = params.iter().map(expect_sym).collect();
                        return Ok(Expr::Lambda(names?, Box::new(to_expr(&items[2])?)));
                    }
                    "begin" => {
                        if items.len() < 2 {
                            return Err(parse_error(*span, "(begin e ...) needs a body"));
                        }
                        let es: Result<Vec<Expr>> = items[1..].iter().map(to_expr).collect();
                        return Ok(Expr::Begin(es?));
                    }
                    "set!" => {
                        if items.len() != 3 {
                            return Err(parse_error(*span, "(set! name expr)"));
                        }
                        return Ok(Expr::SetBang(
                            expect_sym(&items[1])?,
                            Box::new(to_expr(&items[2])?),
                        ));
                    }
                    "while" => {
                        if items.len() < 3 {
                            return Err(parse_error(*span, "(while cond body ...)"));
                        }
                        let body: Result<Vec<Expr>> = items[2..].iter().map(to_expr).collect();
                        return Ok(Expr::While(Box::new(to_expr(&items[1])?), body?));
                    }
                    "make-vector" => {
                        if items.len() != 3 {
                            return Err(parse_error(*span, "(make-vector n init)"));
                        }
                        return Ok(Expr::MakeVector(
                            Box::new(to_expr(&items[1])?),
                            Box::new(to_expr(&items[2])?),
                        ));
                    }
                    "vec-ref" => {
                        if items.len() != 3 {
                            return Err(parse_error(*span, "(vec-ref v i)"));
                        }
                        return Ok(Expr::VectorRef(
                            Box::new(to_expr(&items[1])?),
                            Box::new(to_expr(&items[2])?),
                        ));
                    }
                    "vec-set!" => {
                        if items.len() != 4 {
                            return Err(parse_error(*span, "(vec-set! v i e)"));
                        }
                        return Ok(Expr::VectorSet(
                            Box::new(to_expr(&items[1])?),
                            Box::new(to_expr(&items[2])?),
                            Box::new(to_expr(&items[3])?),
                        ));
                    }
                    "vec-len" => {
                        if items.len() != 2 {
                            return Err(parse_error(*span, "(vec-len v)"));
                        }
                        return Ok(Expr::VectorLen(Box::new(to_expr(&items[1])?)));
                    }
                    "define" => {
                        return Err(parse_error(*span, "define is only allowed at top level"));
                    }
                    _ => {}
                }
            }
            let func = to_expr(head)?;
            let args: Result<Vec<Expr>> = items[1..].iter().map(to_expr).collect();
            Ok(Expr::Apply(Box::new(func), args?))
        }
    }
}

/// Parses one expression from source.
///
/// # Errors
///
/// Returns a parse error if `src` is not exactly one well-formed expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let sexps = read_all(src)?;
    match sexps.as_slice() {
        [one] => to_expr(one),
        [] => Err(parse_error(Span::default(), "empty input")),
        [_, extra, ..] => Err(parse_error(extra.span(), "expected exactly one expression")),
    }
}

/// Parses a whole program: any number of `(define name expr)` forms followed
/// by a final main expression.
///
/// # Errors
///
/// Returns a parse error for malformed input or a missing main expression.
pub fn parse_program(src: &str) -> Result<Program> {
    let sexps = read_all(src)?;
    if sexps.is_empty() {
        return Err(parse_error(Span::default(), "empty program"));
    }
    let mut defs = Vec::new();
    let mut main: Option<Expr> = None;
    for (i, s) in sexps.iter().enumerate() {
        let is_define = matches!(
            s,
            Sexp::List(items, _) if matches!(items.first(), Some(Sexp::Sym(k, _)) if k == "define")
        );
        if is_define {
            let Sexp::List(items, span) = s else {
                unreachable!()
            };
            if main.is_some() {
                return Err(parse_error(*span, "define after the main expression"));
            }
            if items.len() != 3 {
                return Err(parse_error(*span, "(define name expr)"));
            }
            defs.push(Def {
                name: expect_sym(&items[1])?,
                expr: to_expr(&items[2])?,
            });
        } else {
            if i != sexps.len() - 1 {
                return Err(parse_error(
                    s.span(),
                    "only the final form may be the main expression",
                ));
            }
            main = Some(to_expr(s)?);
        }
    }
    let Some(main) = main else {
        return Err(parse_error(
            Span::default(),
            "program has no main expression",
        ));
    };
    Ok(Program { defs, main })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_arithmetic() {
        let e = parse_expr("(+ 1 (* 2 3))").unwrap();
        assert_eq!(e.to_string(), "(+ 1 (* 2 3))");
    }

    #[test]
    fn parses_let_lambda_if() {
        let e = parse_expr("(let ((f (lambda (x) (if (< x 0) (- 0 x) x)))) (f -5))").unwrap();
        assert!(matches!(e, Expr::Let(_, _)));
    }

    #[test]
    fn parses_mutation_and_loops() {
        let e = parse_expr("(begin (set! x 1) (while (< x 10) (set! x (+ x 1))) x)").unwrap();
        match e {
            Expr::Begin(es) => {
                assert!(matches!(es[0], Expr::SetBang(_, _)));
                assert!(matches!(es[1], Expr::While(_, _)));
            }
            other => panic!("expected begin, got {other}"),
        }
    }

    #[test]
    fn parses_vectors() {
        let e = parse_expr("(vec-set! (make-vector 10 0) 3 42)").unwrap();
        assert!(matches!(e, Expr::VectorSet(_, _, _)));
    }

    #[test]
    fn parses_program_with_defines() {
        let p = parse_program("(define two 2) (define sq (lambda (x) (* x x))) (sq two)").unwrap();
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.main.to_string(), "(sq two)");
    }

    #[test]
    fn rejects_define_in_expression_position() {
        assert!(parse_expr("(+ 1 (define x 2))").is_err());
    }

    #[test]
    fn rejects_define_after_main() {
        assert!(parse_program("(+ 1 2) (define x 3)").is_err());
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse_expr("(+ 1 2").is_err());
        assert!(parse_expr("+ 1 2)").is_err());
    }

    #[test]
    fn rejects_empty_application() {
        assert!(parse_expr("()").is_err());
    }

    #[test]
    fn rejects_malformed_let() {
        assert!(parse_expr("(let (x 1) x)").is_err());
        assert!(parse_expr("(let ((1 x)) x)").is_err());
    }

    #[test]
    fn rejects_program_without_main() {
        assert!(parse_program("(define x 1)").is_err());
    }

    /// Identifier strategy that avoids the language keywords (a keyword in
    /// head position would legitimately reparse as a special form).
    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,5}".prop_filter("not a keyword", |s| {
            !matches!(
                s.as_str(),
                "unit" | "if" | "let" | "lambda" | "begin" | "while" | "define"
            )
        })
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            any::<i32>().prop_map(|n| Expr::Int(i64::from(n))),
            any::<bool>().prop_map(Expr::Bool),
            arb_name().prop_map(Expr::Var),
            Just(Expr::Unit),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::If(
                    Box::new(a),
                    Box::new(b),
                    Box::new(c)
                )),
                (arb_name(), inner.clone(), inner.clone())
                    .prop_map(|(x, e, b)| Expr::Let(vec![(x, e)], Box::new(b))),
                (arb_name(), inner.clone()).prop_map(|(p, b)| Expr::Lambda(vec![p], Box::new(b))),
                (
                    inner.clone(),
                    proptest::collection::vec(inner.clone(), 0..3)
                )
                    .prop_map(|(h, args)| Expr::Apply(Box::new(h), args)),
                proptest::collection::vec(inner.clone(), 1..3).prop_map(Expr::Begin),
                (inner.clone(), inner.clone())
                    .prop_map(|(n, i)| Expr::MakeVector(Box::new(n), Box::new(i))),
            ]
        })
    }

    proptest! {
        /// print → reparse is the identity on ASTs.
        #[test]
        fn print_parse_roundtrip(e in arb_expr()) {
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            prop_assert_eq!(reparsed, e);
        }
    }
}
