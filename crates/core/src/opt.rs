//! Optimization passes, separated so experiment E3 can enable them one at a
//! time and measure how much of the boxed-representation gap each recovers
//! (the paper's Fallacy 3: "the optimizer can fix it").
//!
//! AST passes: constant folding, top-level inlining. Bytecode passes:
//! peephole fusion (with full jump-offset remapping) and dead-code
//! elimination.

use crate::ast::{Def, Expr, Program};
use crate::bytecode::{Bytecode, Function, Instr};
use crate::compile::compile_program;
use crate::diag::Result;
use std::collections::HashSet;

/// How much optimization to apply (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization.
    None,
    /// AST constant folding.
    ConstFold,
    /// + top-level function inlining.
    Inline,
    /// + bytecode peephole fusion.
    Peephole,
    /// + dead-code elimination (everything on).
    Full,
}

impl OptLevel {
    /// All levels in ascending order (for sweeps).
    pub const ALL: [OptLevel; 5] = [
        OptLevel::None,
        OptLevel::ConstFold,
        OptLevel::Inline,
        OptLevel::Peephole,
        OptLevel::Full,
    ];
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptLevel::None => "none",
            OptLevel::ConstFold => "const-fold",
            OptLevel::Inline => "+inline",
            OptLevel::Peephole => "+peephole",
            OptLevel::Full => "+dce",
        };
        f.write_str(s)
    }
}

// ---------------------------------------------------------------------------
// AST: constant folding
// ---------------------------------------------------------------------------

fn fold2(op: &str, a: &Expr, b: &Expr) -> Option<Expr> {
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => {
            let (x, y) = (*x, *y);
            Some(match op {
                "+" => Expr::Int(x.wrapping_add(y)),
                "-" => Expr::Int(x.wrapping_sub(y)),
                "*" => Expr::Int(x.wrapping_mul(y)),
                // Division folds only when safe.
                "div" if y != 0 => Expr::Int(x.wrapping_div(y)),
                "mod" if y != 0 => Expr::Int(x.wrapping_rem(y)),
                "<" => Expr::Bool(x < y),
                "<=" => Expr::Bool(x <= y),
                ">" => Expr::Bool(x > y),
                ">=" => Expr::Bool(x >= y),
                "=" => Expr::Bool(x == y),
                "!=" => Expr::Bool(x != y),
                _ => return None,
            })
        }
        (Expr::Bool(x), Expr::Bool(y)) => Some(match op {
            "and" => Expr::Bool(*x && *y),
            "or" => Expr::Bool(*x || *y),
            _ => return None,
        }),
        _ => None,
    }
}

/// Folds constant subexpressions bottom-up.
#[must_use]
pub fn const_fold(e: &Expr) -> Expr {
    match e {
        Expr::If(c, t, f) => {
            let c = const_fold(c);
            let t = const_fold(t);
            let f = const_fold(f);
            match c {
                Expr::Bool(true) => t,
                Expr::Bool(false) => f,
                c => Expr::If(Box::new(c), Box::new(t), Box::new(f)),
            }
        }
        Expr::Apply(head, args) => {
            let folded_args: Vec<Expr> = args.iter().map(const_fold).collect();
            if let Expr::Var(op) = &**head {
                if folded_args.len() == 2 {
                    if let Some(folded) = fold2(op, &folded_args[0], &folded_args[1]) {
                        return folded;
                    }
                }
                if op == "not" && folded_args.len() == 1 {
                    if let Expr::Bool(b) = folded_args[0] {
                        return Expr::Bool(!b);
                    }
                }
            }
            Expr::Apply(Box::new(const_fold(head)), folded_args)
        }
        Expr::Let(binds, body) => Expr::Let(
            binds
                .iter()
                .map(|(x, b)| (x.clone(), const_fold(b)))
                .collect(),
            Box::new(const_fold(body)),
        ),
        Expr::Lambda(params, body) => Expr::Lambda(params.clone(), Box::new(const_fold(body))),
        Expr::Begin(es) => Expr::Begin(es.iter().map(const_fold).collect()),
        Expr::SetBang(x, v) => Expr::SetBang(x.clone(), Box::new(const_fold(v))),
        Expr::While(c, es) => {
            Expr::While(Box::new(const_fold(c)), es.iter().map(const_fold).collect())
        }
        Expr::MakeVector(a, b) => {
            Expr::MakeVector(Box::new(const_fold(a)), Box::new(const_fold(b)))
        }
        Expr::VectorRef(a, b) => Expr::VectorRef(Box::new(const_fold(a)), Box::new(const_fold(b))),
        Expr::VectorSet(a, b, c) => Expr::VectorSet(
            Box::new(const_fold(a)),
            Box::new(const_fold(b)),
            Box::new(const_fold(c)),
        ),
        Expr::VectorLen(v) => Expr::VectorLen(Box::new(const_fold(v))),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// AST: top-level inlining
// ---------------------------------------------------------------------------

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit | Expr::Var(_) => 1,
        Expr::If(a, b, c) | Expr::VectorSet(a, b, c) => {
            1 + expr_size(a) + expr_size(b) + expr_size(c)
        }
        Expr::Let(binds, body) => {
            1 + binds.iter().map(|(_, b)| expr_size(b)).sum::<usize>() + expr_size(body)
        }
        Expr::Lambda(_, body) | Expr::VectorLen(body) | Expr::SetBang(_, body) => {
            1 + expr_size(body)
        }
        Expr::Apply(h, args) => 1 + expr_size(h) + args.iter().map(expr_size).sum::<usize>(),
        Expr::Begin(es) => 1 + es.iter().map(expr_size).sum::<usize>(),
        Expr::While(c, es) => 1 + expr_size(c) + es.iter().map(expr_size).sum::<usize>(),
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => 1 + expr_size(a) + expr_size(b),
    }
}

fn mentions(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Var(x) => x == name,
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit => false,
        Expr::If(a, b, c) | Expr::VectorSet(a, b, c) => {
            mentions(a, name) || mentions(b, name) || mentions(c, name)
        }
        Expr::Let(binds, body) => {
            binds.iter().any(|(_, b)| mentions(b, name)) || mentions(body, name)
        }
        Expr::Lambda(_, body) | Expr::VectorLen(body) => mentions(body, name),
        Expr::SetBang(x, v) => x == name || mentions(v, name),
        Expr::Apply(h, args) => mentions(h, name) || args.iter().any(|a| mentions(a, name)),
        Expr::Begin(es) => es.iter().any(|x| mentions(x, name)),
        Expr::While(c, es) => mentions(c, name) || es.iter().any(|x| mentions(x, name)),
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => mentions(a, name) || mentions(b, name),
    }
}

/// Maximum body size (AST nodes) for an inlining candidate.
const INLINE_LIMIT: usize = 24;

fn inline_in(e: &Expr, name: &str, params: &[String], body: &Expr) -> Expr {
    let rec = |x: &Expr| inline_in(x, name, params, body);
    match e {
        Expr::Apply(head, args) => {
            let new_args: Vec<Expr> = args.iter().map(rec).collect();
            if let Expr::Var(f) = &**head {
                if f == name && new_args.len() == params.len() {
                    // (f a b) => (let ((p1 a) (p2 b)) body)
                    return Expr::Let(
                        params.iter().cloned().zip(new_args).collect(),
                        Box::new(body.clone()),
                    );
                }
            }
            Expr::Apply(Box::new(rec(head)), args.iter().map(rec).collect())
        }
        Expr::If(a, b, c) => Expr::If(Box::new(rec(a)), Box::new(rec(b)), Box::new(rec(c))),
        Expr::Let(binds, b) => {
            // Stop if a binding shadows the function name.
            if binds.iter().any(|(x, _)| x == name) {
                return Expr::Let(
                    binds.iter().map(|(x, i)| (x.clone(), rec(i))).collect(),
                    b.clone(),
                );
            }
            Expr::Let(
                binds.iter().map(|(x, i)| (x.clone(), rec(i))).collect(),
                Box::new(rec(b)),
            )
        }
        Expr::Lambda(ps, b) => {
            if ps.iter().any(|p| p == name) {
                return e.clone();
            }
            Expr::Lambda(ps.clone(), Box::new(rec(b)))
        }
        Expr::Begin(es) => Expr::Begin(es.iter().map(rec).collect()),
        Expr::SetBang(x, v) => Expr::SetBang(x.clone(), Box::new(rec(v))),
        Expr::While(c, es) => Expr::While(Box::new(rec(c)), es.iter().map(rec).collect()),
        Expr::MakeVector(a, b) => Expr::MakeVector(Box::new(rec(a)), Box::new(rec(b))),
        Expr::VectorRef(a, b) => Expr::VectorRef(Box::new(rec(a)), Box::new(rec(b))),
        Expr::VectorSet(a, b, c) => {
            Expr::VectorSet(Box::new(rec(a)), Box::new(rec(b)), Box::new(rec(c)))
        }
        Expr::VectorLen(v) => Expr::VectorLen(Box::new(rec(v))),
        other => other.clone(),
    }
}

/// Inlines small, non-recursive top-level lambda definitions at their call
/// sites. Definitions stay in place (they may still be referenced
/// first-class); dead ones are cheap anyway.
#[must_use]
pub fn inline_program(p: &Program) -> Program {
    let mut out = p.clone();
    for def in &p.defs {
        let Expr::Lambda(params, body) = &def.expr else {
            continue;
        };
        if expr_size(body) > INLINE_LIMIT || mentions(body, &def.name) {
            continue;
        }
        // Only inline bodies that are closed over their params + globals and
        // don't mutate anything (keeps substitution trivially sound).
        let mut muts = HashSet::new();
        super_collect_mutated(body, &mut muts);
        if !muts.is_empty() {
            continue;
        }
        for later in &mut out.defs {
            if later.name != def.name {
                later.expr = inline_in(&later.expr, &def.name, params, body);
            }
        }
        out.main = inline_in(&out.main, &def.name, params, body);
    }
    out
}

fn super_collect_mutated(e: &Expr, out: &mut HashSet<String>) {
    if let Expr::SetBang(x, v) = e {
        out.insert(x.clone());
        super_collect_mutated(v, out);
        return;
    }
    match e {
        Expr::If(a, b, c) | Expr::VectorSet(a, b, c) => {
            super_collect_mutated(a, out);
            super_collect_mutated(b, out);
            super_collect_mutated(c, out);
        }
        Expr::Let(binds, body) => {
            for (_, b) in binds {
                super_collect_mutated(b, out);
            }
            super_collect_mutated(body, out);
        }
        Expr::Lambda(_, body) | Expr::VectorLen(body) => super_collect_mutated(body, out),
        Expr::Apply(h, args) => {
            super_collect_mutated(h, out);
            for a in args {
                super_collect_mutated(a, out);
            }
        }
        Expr::Begin(es) => {
            for x in es {
                super_collect_mutated(x, out);
            }
        }
        Expr::While(c, es) => {
            super_collect_mutated(c, out);
            for x in es {
                super_collect_mutated(x, out);
            }
        }
        Expr::MakeVector(a, b) | Expr::VectorRef(a, b) => {
            super_collect_mutated(a, out);
            super_collect_mutated(b, out);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Bytecode: peephole with jump remapping
// ---------------------------------------------------------------------------

fn jump_targets(code: &[Instr]) -> Vec<bool> {
    let mut targets = vec![false; code.len() + 1];
    for (i, instr) in code.iter().enumerate() {
        if let Instr::Jump(d) | Instr::JumpIfFalse(d) = instr {
            let t = i64::try_from(i).expect("fits") + 1 + i64::from(*d);
            if let Ok(t) = usize::try_from(t) {
                if t < targets.len() {
                    targets[t] = true;
                }
            }
        }
    }
    targets
}

/// Applies peephole fusions to one function, remapping all jump offsets.
fn peephole_function(func: &Function) -> Function {
    let code = &func.code;
    let targets = jump_targets(code);
    let mut new_code: Vec<Instr> = Vec::with_capacity(code.len());
    // old index -> new index (length +1 for end-of-function target).
    let mut map = vec![0usize; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        map[i] = new_code.len();
        // Window fusions. A window is fusable only if positions after the
        // first are not jump targets.
        let free2 = i + 1 < code.len() && !targets[i + 1];
        let free3 = free2 && i + 2 < code.len() && !targets[i + 2];
        match (code.get(i), code.get(i + 1), code.get(i + 2)) {
            // Const a, Const b, arith -> Const (a op b)
            (Some(Instr::Const(a)), Some(Instr::Const(b)), Some(op)) if free3 => {
                let folded = match op {
                    Instr::Add => Some(Instr::Const(a.wrapping_add(*b))),
                    Instr::Sub => Some(Instr::Const(a.wrapping_sub(*b))),
                    Instr::Mul => Some(Instr::Const(a.wrapping_mul(*b))),
                    Instr::Lt => Some(Instr::ConstBool(a < b)),
                    Instr::Le => Some(Instr::ConstBool(a <= b)),
                    Instr::Gt => Some(Instr::ConstBool(a > b)),
                    Instr::Ge => Some(Instr::ConstBool(a >= b)),
                    Instr::Eq => Some(Instr::ConstBool(a == b)),
                    Instr::Ne => Some(Instr::ConstBool(a != b)),
                    _ => None,
                };
                if let Some(f) = folded {
                    map[i + 1] = new_code.len();
                    map[i + 2] = new_code.len();
                    new_code.push(f);
                    i += 3;
                    continue;
                }
            }
            _ => {}
        }
        match (code.get(i), code.get(i + 1)) {
            // Const n, Add -> AddImm n
            (Some(Instr::Const(n)), Some(Instr::Add)) if free2 => {
                map[i + 1] = new_code.len();
                new_code.push(Instr::AddImm(*n));
                i += 2;
                continue;
            }
            // Const n, Sub -> AddImm -n
            (Some(Instr::Const(n)), Some(Instr::Sub)) if free2 => {
                map[i + 1] = new_code.len();
                new_code.push(Instr::AddImm(n.wrapping_neg()));
                i += 2;
                continue;
            }
            // Not, JumpIfFalse d stays (would need JumpIfTrue); skip.
            _ => {}
        }
        new_code.push(code[i].clone());
        i += 1;
    }
    map[code.len()] = new_code.len();
    // Remap jumps.
    let remapped: Vec<Instr> = new_code
        .iter()
        .enumerate()
        .map(|(new_i, instr)| match instr {
            Instr::Jump(_) | Instr::JumpIfFalse(_) => {
                // Find the old index of this instruction: invert map lazily.
                let old_i = map.iter().position(|&m| m == new_i).expect("mapped");
                let (Instr::Jump(d) | Instr::JumpIfFalse(d)) = &code[old_i] else {
                    unreachable!("jump stayed a jump")
                };
                let old_target =
                    usize::try_from(i64::try_from(old_i).expect("fits") + 1 + i64::from(*d))
                        .expect("target in range");
                let new_target = map[old_target];
                let nd = i64::try_from(new_target).expect("fits")
                    - i64::try_from(new_i).expect("fits")
                    - 1;
                let nd = i32::try_from(nd).expect("delta fits");
                match instr {
                    Instr::Jump(_) => Instr::Jump(nd),
                    _ => Instr::JumpIfFalse(nd),
                }
            }
            other => other.clone(),
        })
        .collect();
    Function {
        name: func.name.clone(),
        arity: func.arity,
        n_locals: func.n_locals,
        code: remapped,
    }
}

/// Peephole-optimizes every function.
#[must_use]
pub fn peephole(bc: &Bytecode) -> Bytecode {
    Bytecode {
        functions: bc.functions.iter().map(peephole_function).collect(),
        natives: bc.natives.clone(),
    }
}

// ---------------------------------------------------------------------------
// Bytecode: dead-code elimination
// ---------------------------------------------------------------------------

fn dce_function(func: &Function) -> Function {
    // Reachability over the CFG from instruction 0.
    let code = &func.code;
    let mut reachable = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if i >= code.len() || reachable[i] {
            continue;
        }
        reachable[i] = true;
        match &code[i] {
            Instr::Ret => {}
            Instr::Jump(d) => {
                let t = i64::try_from(i).expect("fits") + 1 + i64::from(*d);
                stack.push(usize::try_from(t).expect("in range"));
            }
            Instr::JumpIfFalse(d) => {
                let t = i64::try_from(i).expect("fits") + 1 + i64::from(*d);
                stack.push(usize::try_from(t).expect("in range"));
                stack.push(i + 1);
            }
            _ => stack.push(i + 1),
        }
    }
    if reachable.iter().all(|&r| r) {
        return func.clone();
    }
    // Compact, building the index map, then remap jumps.
    let mut map = vec![usize::MAX; code.len() + 1];
    let mut new_code = Vec::new();
    for (i, instr) in code.iter().enumerate() {
        map[i] = new_code.len();
        if reachable[i] {
            new_code.push(instr.clone());
        }
    }
    map[code.len()] = new_code.len();
    // Fix map entries for dead slots: point at the next live instruction
    // (only needed for jump-target arithmetic; dead targets are never used
    // by live jumps, but keep the map total anyway).
    let mut final_code = Vec::with_capacity(new_code.len());
    let mut new_i = 0;
    for (old_i, instr) in code.iter().enumerate() {
        if !reachable[old_i] {
            continue;
        }
        let fixed = match instr {
            Instr::Jump(d) | Instr::JumpIfFalse(d) => {
                let old_target =
                    usize::try_from(i64::try_from(old_i).expect("fits") + 1 + i64::from(*d))
                        .expect("in range");
                let new_target = map[old_target];
                let nd = i64::try_from(new_target).expect("fits") - i64::from(new_i) - 1;
                let nd = i32::try_from(nd).expect("delta fits");
                match instr {
                    Instr::Jump(_) => Instr::Jump(nd),
                    _ => Instr::JumpIfFalse(nd),
                }
            }
            other => other.clone(),
        };
        final_code.push(fixed);
        new_i += 1;
    }
    Function {
        name: func.name.clone(),
        arity: func.arity,
        n_locals: func.n_locals,
        code: final_code,
    }
}

/// Removes unreachable instructions from every function.
#[must_use]
pub fn dce(bc: &Bytecode) -> Bytecode {
    Bytecode {
        functions: bc.functions.iter().map(dce_function).collect(),
        natives: bc.natives.clone(),
    }
}

/// Compiles `p` at the given optimization level.
///
/// # Errors
///
/// Compilation errors from the underlying compiler.
pub fn compile_optimized(p: &Program, level: OptLevel) -> Result<Bytecode> {
    let mut p = p.clone();
    if level >= OptLevel::ConstFold {
        p.defs = p
            .defs
            .iter()
            .map(|d| Def {
                name: d.name.clone(),
                expr: const_fold(&d.expr),
            })
            .collect();
        p.main = const_fold(&p.main);
    }
    if level >= OptLevel::Inline {
        p = inline_program(&p);
        // Folding again after inlining exposes new constants.
        p.main = const_fold(&p.main);
        p.defs = p
            .defs
            .iter()
            .map(|d| Def {
                name: d.name.clone(),
                expr: const_fold(&d.expr),
            })
            .collect();
    }
    let mut bc = compile_program(&p)?;
    if level >= OptLevel::Peephole {
        bc = peephole(&bc);
    }
    if level >= OptLevel::Full {
        bc = dce(&bc);
    }
    Ok(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffi::NativeRegistry;
    use crate::parser::{parse_expr, parse_program};
    use crate::vm::{Unboxed, Vm};

    fn run_at(src: &str, level: OptLevel) -> i64 {
        let p = parse_program(src).unwrap();
        crate::infer::infer_program(&p).unwrap();
        let bc = compile_optimized(&p, level).unwrap();
        Vm::<Unboxed>::new(&bc, &NativeRegistry::new())
            .unwrap()
            .run_int()
            .unwrap()
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let e = parse_expr("(+ 1 (* 2 3))").unwrap();
        assert_eq!(const_fold(&e), Expr::Int(7));
    }

    #[test]
    fn const_fold_selects_known_branches() {
        let e = parse_expr("(if (< 1 2) 10 20)").unwrap();
        assert_eq!(const_fold(&e), Expr::Int(10));
    }

    #[test]
    fn const_fold_leaves_division_by_zero_for_runtime() {
        let e = parse_expr("(div 1 0)").unwrap();
        assert_eq!(const_fold(&e), e, "must not fold away the trap");
    }

    #[test]
    fn const_fold_is_semantics_preserving_on_programs() {
        let src = "(define f (lambda (x) (+ x (* 2 3)))) (f (+ 10 20))";
        assert_eq!(
            run_at(src, OptLevel::None),
            run_at(src, OptLevel::ConstFold)
        );
    }

    #[test]
    fn inline_replaces_calls_with_lets() {
        let p = parse_program("(define dbl (lambda (x) (* 2 x))) (dbl 21)").unwrap();
        let inlined = inline_program(&p);
        assert_eq!(inlined.main.to_string(), "(let ((x 21)) (* 2 x))");
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let p = parse_program(
            "(define fact (lambda (n) (if (<= n 1) 1 (* n (fact (- n 1)))))) (fact 5)",
        )
        .unwrap();
        let inlined = inline_program(&p);
        assert_eq!(inlined.main, p.main, "recursive call sites must survive");
    }

    #[test]
    fn peephole_fuses_constants_and_preserves_results() {
        let src = "(define f (lambda (x) (+ x (* 3 4)))) (+ (f 1) (+ 2 3))";
        let p = parse_program(src).unwrap();
        let plain = compile_program(&p).unwrap();
        let opt = peephole(&plain);
        assert!(opt.instruction_count() < plain.instruction_count());
        let r1 = Vm::<Unboxed>::new(&plain, &NativeRegistry::new())
            .unwrap()
            .run_int()
            .unwrap();
        let r2 = Vm::<Unboxed>::new(&opt, &NativeRegistry::new())
            .unwrap()
            .run_int()
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn peephole_preserves_loops_with_jumps() {
        let src = "(let ((i 0) (acc 0))
                     (begin
                       (while (< i 10) (set! acc (+ acc 2)) (set! i (+ i 1)))
                       acc))";
        for level in [OptLevel::None, OptLevel::Peephole, OptLevel::Full] {
            assert_eq!(run_at(src, level), 20, "level {level}");
        }
    }

    #[test]
    fn addimm_superinstruction_appears() {
        let src = "(let ((x 5)) (+ x 1))";
        let p = parse_program(src).unwrap();
        let bc = peephole(&compile_program(&p).unwrap());
        assert!(
            bc.functions[0].code.contains(&Instr::AddImm(1)),
            "{}",
            bc.disassemble()
        );
    }

    #[test]
    fn dce_removes_unreachable_else_branches() {
        // After const-fold the If is gone; build raw bytecode with a dead arm
        // via folded condition at the bytecode level instead.
        let src = "(if (< 1 2) 1 2)";
        let p = parse_program(src).unwrap();
        let bc = compile_program(&p).unwrap(); // keeps both arms
        let folded = peephole(&bc); // cond becomes ConstBool(true)
        let cleaned = dce(&folded);
        assert!(cleaned.instruction_count() <= folded.instruction_count());
        let r = Vm::<Unboxed>::new(&cleaned, &NativeRegistry::new())
            .unwrap()
            .run_int()
            .unwrap();
        assert_eq!(r, 1);
    }

    #[test]
    fn every_level_agrees_on_a_corpus() {
        let corpus = [
            "(define sq (lambda (x) (* x x))) (+ (sq 3) (sq 4))",
            "(define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))) (fib 12)",
            "(let ((v (make-vector 8 0)))
               (let ((i 0))
                 (begin
                   (while (< i 8) (vec-set! v i (* i i)) (set! i (+ i 1)))
                   (+ (vec-ref v 7) (vec-ref v 3)))))",
            "(let ((f (lambda (x) (+ x (* 2 5))))) (f 7))",
        ];
        for src in corpus {
            let baseline = run_at(src, OptLevel::None);
            for level in OptLevel::ALL {
                assert_eq!(run_at(src, level), baseline, "{src} at {level}");
            }
        }
    }

    #[test]
    fn optimization_reduces_executed_instructions() {
        let src = "(define f (lambda (x) (+ x (* 3 4))))
                   (let ((i 0) (acc 0))
                     (begin
                       (while (< i 100) (set! acc (+ acc (f i))) (set! i (+ i 1)))
                       acc))";
        let p = parse_program(src).unwrap();
        let reg = NativeRegistry::new();
        let plain = compile_optimized(&p, OptLevel::None).unwrap();
        let full = compile_optimized(&p, OptLevel::Full).unwrap();
        let mut v1 = Vm::<Unboxed>::new(&plain, &reg).unwrap();
        let mut v2 = Vm::<Unboxed>::new(&full, &reg).unwrap();
        let r1 = v1.run_int().unwrap();
        let r2 = v2.run_int().unwrap();
        assert_eq!(r1, r2);
        assert!(
            v2.stats.instructions < v1.stats.instructions,
            "full: {} < none: {}",
            v2.stats.instructions,
            v1.stats.instructions
        );
    }
}
