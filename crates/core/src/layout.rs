//! Representation cost model: how many bytes a value of a given type costs
//! under the unboxed and boxed representations.
//!
//! The numbers feed experiment E2's memory column and quantify the paper's
//! Fallacy 2 claim structurally: boxing multiplies the footprint (pointer +
//! header per value) and scatters it (one heap cell per element), which is
//! where the cache misses come from.

use crate::types::Type;

/// Bytes of one pointer/word in the model machine.
pub const WORD: usize = 8;

/// Bytes of a heap-cell header (tag + refcount in the boxed VM).
pub const HEADER: usize = 8;

/// Inline (stack/register) size of a value under the unboxed representation.
#[must_use]
pub fn unboxed_inline_bytes(t: &Type) -> usize {
    match t {
        // Unit is zero-sized; everything else is one machine word.
        Type::Unit => 0,
        _ => WORD,
    }
}

/// Heap bytes per value under the unboxed representation (payload only;
/// scalars carry none).
#[must_use]
pub fn unboxed_heap_bytes(t: &Type) -> usize {
    match t {
        Type::Vector(_) | Type::Fn(_, _) => HEADER, // descriptor cell
        _ => 0,
    }
}

/// Heap bytes per value under the uniformly boxed representation: every
/// value, scalar or not, is a header + payload cell reached by pointer.
#[must_use]
pub fn boxed_heap_bytes(t: &Type) -> usize {
    match t {
        Type::Unit => HEADER,
        _ => HEADER + WORD,
    }
}

/// Total bytes for an array of `n` elements of type `t`, both
/// representations: `(unboxed, boxed)`.
///
/// Unboxed arrays store elements inline; boxed arrays store `n` pointers to
/// `n` separately allocated cells.
#[must_use]
pub fn array_bytes(t: &Type, n: usize) -> (usize, usize) {
    let unboxed = HEADER + n * unboxed_inline_bytes(t);
    let boxed = HEADER + n * WORD + n * boxed_heap_bytes(t);
    (unboxed, boxed)
}

/// The boxing bloat factor for an array of `n` elements of `t`.
#[must_use]
pub fn bloat_factor(t: &Type, n: usize) -> f64 {
    let (u, b) = array_bytes(t, n);
    #[allow(clippy::cast_precision_loss)]
    {
        b as f64 / u as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_word_sized_unboxed() {
        assert_eq!(unboxed_inline_bytes(&Type::Int), 8);
        assert_eq!(unboxed_inline_bytes(&Type::Bool), 8);
        assert_eq!(unboxed_inline_bytes(&Type::Unit), 0);
        assert_eq!(unboxed_heap_bytes(&Type::Int), 0);
    }

    #[test]
    fn boxing_adds_header_and_indirection() {
        assert_eq!(boxed_heap_bytes(&Type::Int), 16);
        let (u, b) = array_bytes(&Type::Int, 1000);
        assert_eq!(u, 8 + 8000);
        assert_eq!(b, 8 + 8000 + 16_000);
    }

    #[test]
    fn bloat_approaches_3x_for_large_int_arrays() {
        let f = bloat_factor(&Type::Int, 1_000_000);
        assert!(f > 2.9 && f < 3.1, "bloat {f}");
    }

    #[test]
    fn unit_arrays_are_degenerate_but_defined() {
        let (u, b) = array_bytes(&Type::Unit, 10);
        assert_eq!(u, 8);
        assert!(b > u);
    }
}
