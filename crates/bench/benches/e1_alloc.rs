//! E1 — allocator throughput, one Criterion group per manager.

use bench_suite::sizes::E1_OPS;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sysmem::arena::RegionHeap;
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::rc::RcHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::workload::{
    run_region_workload, run_workload, Lifetime, ReclaimStrategy, WorkloadSpec,
};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        ops: E1_OPS,
        min_words: 2,
        max_words: 32,
        nrefs: 2,
        link_prob: 0.2,
        lifetime: Lifetime::Exponential { mean_ops: 64.0 },
        seed: 7,
    }
}

const HEAP_BYTES: usize = 1 << 22;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_alloc");
    let s = spec();

    group.bench_function("region", |b| {
        b.iter_batched(
            || RegionHeap::new(HEAP_BYTES),
            |mut h| run_region_workload(&mut h, &s, 256),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("freelist", |b| {
        b.iter_batched(
            || FreeListHeap::new(HEAP_BYTES),
            |mut h| run_workload(&mut h, &s, ReclaimStrategy::ExplicitFree),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("refcount", |b| {
        b.iter_batched(
            || RcHeap::new(HEAP_BYTES),
            |mut h| run_workload(&mut h, &s, ReclaimStrategy::RootRelease),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mark-sweep", |b| {
        b.iter_batched(
            || MarkSweepHeap::new(HEAP_BYTES),
            |mut h| run_workload(&mut h, &s, ReclaimStrategy::RootRelease),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("semispace", |b| {
        b.iter_batched(
            || SemiSpaceHeap::new(HEAP_BYTES * 2),
            |mut h| run_workload(&mut h, &s, ReclaimStrategy::RootRelease),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("generational", |b| {
        b.iter_batched(
            || GenerationalHeap::new(HEAP_BYTES, 1 << 16),
            |mut h| run_workload(&mut h, &s, ReclaimStrategy::RootRelease),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
