//! E4 — call cost across the FFI boundary vs in-language calls.

use bench_suite::sizes::E4_CALLS;
use bitc_core::compile::compile_program_with_natives;
use bitc_core::ffi::NativeRegistry;
use bitc_core::parser::parse_program;
use bitc_core::vm::{Unboxed, Vm};
use criterion::{criterion_group, criterion_main, Criterion};

fn call_loop(callee: &str) -> String {
    format!(
        "(define vm-add (lambda (a b) (+ a b)))
         (let ((i 0) (acc 0))
           (begin
             (while (< i {n}) (set! acc ({callee} acc 1)) (set! i (+ i 1)))
             acc))",
        n = E4_CALLS
    )
}

fn bench_ffi(c: &mut Criterion) {
    let reg = NativeRegistry::with_defaults();
    let sigs = reg.signatures();
    let sigs_ref: Vec<(&str, usize)> = sigs.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    let mut group = c.benchmark_group("e4_ffi");

    group.bench_function("native_loop_no_boundary", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..E4_CALLS {
                acc = std::hint::black_box(acc.wrapping_add(1));
            }
            acc
        });
    });
    for (name, callee) in [("vm_to_vm", "vm-add"), ("vm_to_native_ffi", "host-add")] {
        let p = parse_program(&call_loop(callee)).expect("parses");
        let bc = compile_program_with_natives(&p, &sigs_ref).expect("compiles");
        group.bench_function(name, |b| {
            b.iter(|| Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap());
        });
    }
    // Batched boundary crossing: one native call doing all the work.
    let p = parse_program(&format!("(host-sum-to {E4_CALLS})")).expect("parses");
    let bc = compile_program_with_natives(&p, &sigs_ref).expect("compiles");
    group.bench_function("one_native_call_batched", |b| {
        b.iter(|| Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_ffi);
criterion_main!(benches);
