//! E8 — packet parsing throughput: zero-copy vs combinators vs boxed.

use bench_suite::sizes::E8_PACKETS;
use criterion::{criterion_group, criterion_main, Criterion};
use plos06::experiments::e8_repr::make_stream;
use sysrepr::boxed::BoxedPacket;
use sysrepr::langsec::{ipv4_header, Input};
use sysrepr::packet::EthernetView;

fn bench_repr(c: &mut Criterion) {
    let stream = make_stream(E8_PACKETS);
    let mut group = c.benchmark_group("e8_repr");
    group.bench_function("zero_copy_views", |b| {
        b.iter(|| {
            let mut check = 0u64;
            for bytes in &stream {
                let ip = EthernetView::parse(bytes).unwrap().ipv4().unwrap();
                let udp = ip.udp().unwrap();
                check = check.wrapping_add(u64::from(udp.dst_port()));
                check =
                    check.wrapping_add(udp.payload().iter().map(|&b| u64::from(b)).sum::<u64>());
            }
            check
        });
    });
    group.bench_function("langsec_combinators_hdr", |b| {
        b.iter(|| {
            let mut check = 0u64;
            for bytes in &stream {
                let (hdr, _) = ipv4_header(Input::new(&bytes[14..])).unwrap();
                check = check.wrapping_add(u64::from(hdr.ttl));
            }
            check
        });
    });
    group.bench_function("boxed_allocating", |b| {
        b.iter(|| {
            let mut check = 0u64;
            for bytes in &stream {
                let p = BoxedPacket::parse(bytes).unwrap();
                check = check.wrapping_add(u64::from(p.dst_port().unwrap_or(0)));
                check = check.wrapping_add(p.payload().iter().map(|&b| u64::from(b)).sum::<u64>());
            }
            check
        });
    });
    group.finish();
}

criterion_group!(benches, bench_repr);
criterion_main!(benches);
