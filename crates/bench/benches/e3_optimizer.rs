//! E3 — optimizer ablation: boxed VM at each opt level + the unboxed
//! ceiling.

use bench_suite::sizes::E2_LOOP;
use bitc_core::ffi::NativeRegistry;
use bitc_core::opt::{compile_optimized, OptLevel};
use bitc_core::parser::parse_program;
use bitc_core::vm::{Boxed, Unboxed, Vm};
use criterion::{criterion_group, criterion_main, Criterion};

fn workload() -> String {
    let n = E2_LOOP;
    format!(
        "(define scale (lambda (x) (* x (+ 2 2))))
         (define offset (lambda (x) (+ x (- 10 3))))
         (let ((i 0) (acc 0))
           (begin
             (while (< i {n}) (set! acc (+ acc (offset (scale i)))) (set! i (+ i 1)))
             acc))"
    )
}

fn bench_optimizer(c: &mut Criterion) {
    let program = parse_program(&workload()).expect("parses");
    let reg = NativeRegistry::new();
    let mut group = c.benchmark_group("e3_optimizer");
    for level in OptLevel::ALL {
        let bc = compile_optimized(&program, level).expect("compiles");
        group.bench_function(format!("boxed_{level}"), |b| {
            b.iter(|| Vm::<Boxed>::new(&bc, &reg).unwrap().run_int().unwrap());
        });
    }
    let bc = compile_optimized(&program, OptLevel::None).expect("compiles");
    group.bench_function("unboxed_no_optimizer", |b| {
        b.iter(|| Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
