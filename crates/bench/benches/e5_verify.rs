//! E5 — prover throughput on the kernel invariant suites.

use bitc_verify::vcgen::verify_procedure;
use criterion::{criterion_group, criterion_main, Criterion};
use microkernel::invariants::{invariant_suite, seeded_bug_suite};

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_verify");
    for proc in invariant_suite() {
        group.bench_function(format!("prove_{}", proc.name), |b| {
            b.iter(|| verify_procedure(&proc));
        });
    }
    for proc in seeded_bug_suite() {
        group.bench_function(format!("refute_{}", proc.name), |b| {
            b.iter(|| verify_procedure(&proc));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
