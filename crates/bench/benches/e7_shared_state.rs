//! E7 — bank-transfer throughput per concurrency model and thread count.

use bench_suite::sizes::E7_OPS;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sysconc::bank::{
    run_contention, ActorBank, Bank, BrokenComposedBank, CoarseLockBank, FineLockBank, StmBank,
};

const ACCOUNTS: usize = 64;
const INITIAL: i64 = 1_000;

fn make_bank(model: &str) -> Box<dyn Bank> {
    match model {
        "coarse_lock" => Box::new(CoarseLockBank::new(ACCOUNTS, INITIAL)),
        "fine_lock" => Box::new(FineLockBank::new(ACCOUNTS, INITIAL)),
        "broken_composed" => Box::new(BrokenComposedBank::new(ACCOUNTS, INITIAL)),
        "stm" => Box::new(StmBank::new(ACCOUNTS, INITIAL)),
        "actor" => Box::new(ActorBank::new(ACCOUNTS, INITIAL)),
        other => unreachable!("unknown model {other}"),
    }
}

fn bench_shared_state(c: &mut Criterion) {
    for threads in [2usize, 4] {
        let mut group = c.benchmark_group(format!("e7_threads_{threads}"));
        group.sample_size(10);
        for model in ["coarse_lock", "fine_lock", "stm", "actor"] {
            group.bench_function(model, |b| {
                b.iter_batched(
                    || make_bank(model),
                    |bank| run_contention(bank.as_ref(), threads, E7_OPS),
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_shared_state);
criterion_main!(benches);
