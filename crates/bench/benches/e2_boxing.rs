//! E2 — boxed vs unboxed representation on the three kernels.

use bench_suite::sizes::E2_LOOP;
use bitc_core::compile::compile_source;
use bitc_core::ffi::NativeRegistry;
use bitc_core::vm::{Boxed, Unboxed, Vm};
use criterion::{criterion_group, criterion_main, Criterion};

fn kernels() -> Vec<(&'static str, String)> {
    let n = E2_LOOP;
    vec![
        (
            "sum-loop",
            format!(
                "(let ((i 0) (acc 0))
                   (begin (while (< i {n}) (set! acc (+ acc i)) (set! i (+ i 1))) acc))"
            ),
        ),
        (
            "vector-walk",
            format!(
                "(let ((v (make-vector {m} 1)) (i 0) (acc 0))
                   (begin
                     (while (< i {m}) (vec-set! v i (* i 3)) (set! i (+ i 1)))
                     (set! i 0)
                     (while (< i {m}) (set! acc (+ acc (vec-ref v i))) (set! i (+ i 1)))
                     acc))",
                m = n / 4
            ),
        ),
        (
            "fib-calls",
            "(define fib (lambda (x) (if (< x 2) x (+ (fib (- x 1)) (fib (- x 2)))))) (fib 16)"
                .to_owned(),
        ),
    ]
}

fn bench_boxing(c: &mut Criterion) {
    let reg = NativeRegistry::new();
    for (name, src) in kernels() {
        let bc = compile_source(&src).expect("kernel compiles");
        let mut group = c.benchmark_group(format!("e2_{name}"));
        group.bench_function("unboxed", |b| {
            b.iter(|| Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap());
        });
        group.bench_function("boxed", |b| {
            b.iter(|| Vm::<Boxed>::new(&bc, &reg).unwrap().run_int().unwrap());
        });
        group.finish();
    }
}

criterion_group!(benches, bench_boxing);
criterion_main!(benches);
