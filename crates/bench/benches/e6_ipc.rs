//! E6 — IPC round trips under each kernel heap policy.

use bench_suite::sizes::E6_ROUNDS;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use microkernel::kernel::Kernel;
use microkernel::rights::Rights;
use microkernel::{CapSlot, Pid};
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::Manager;

struct Setup {
    kernel: Kernel,
    client: Pid,
    server: Pid,
    req: (CapSlot, CapSlot),
    rep: (CapSlot, CapSlot),
}

fn setup(heap: Box<dyn Manager>) -> Setup {
    let mut kernel = Kernel::new(heap);
    let server = kernel.spawn_process();
    let client = kernel.spawn_process();
    let req_s = kernel.create_endpoint(server).unwrap();
    let req_c = kernel
        .grant_cap(server, req_s, client, Rights::SEND)
        .unwrap();
    let rep_s = kernel.create_endpoint(server).unwrap();
    let rep_c = kernel
        .grant_cap(server, rep_s, client, Rights::RECV)
        .unwrap();
    Setup {
        kernel,
        client,
        server,
        req: (req_s, req_c),
        rep: (rep_s, rep_c),
    }
}

fn heap_for(policy: &str) -> Box<dyn Manager> {
    const BYTES: usize = 1 << 20;
    match policy {
        "freelist" => Box::new(FreeListHeap::new(BYTES)),
        "mark_sweep" => Box::new(MarkSweepHeap::new(BYTES)),
        "semispace" => Box::new(SemiSpaceHeap::new(BYTES * 2)),
        "generational" => Box::new(GenerationalHeap::new(BYTES, 1 << 14)),
        other => unreachable!("unknown policy {other}"),
    }
}

fn bench_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ipc");
    for policy in ["freelist", "mark_sweep", "semispace", "generational"] {
        group.bench_function(policy, |b| {
            b.iter_batched(
                || setup(heap_for(policy)),
                |mut s| {
                    for _ in 0..E6_ROUNDS {
                        s.kernel
                            .ping_pong(s.client, s.server, s.req, s.rep, 16)
                            .expect("round trip");
                    }
                    s.kernel.cycles.total()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ipc);
criterion_main!(benches);
