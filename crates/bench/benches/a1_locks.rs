//! A1 — ablation: lock primitives under contention.
//!
//! DESIGN.md calls out the choice of hand-rolled kernel-style primitives
//! (test-and-test-and-set spinlock, FIFO ticket lock, seqlock) over OS
//! mutexes. This bench compares them against `std::sync::Mutex` and
//! `parking_lot::Mutex` on the canonical contended-counter workload, plus
//! seqlock reads against an uncontended mutex read.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sysconc::spinlock::{SeqLock, SpinLock, TicketLock};

const INCREMENTS: usize = 20_000;
const THREADS: usize = 4;

fn contended<F: Fn() + Sync>(f: F) {
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..INCREMENTS / THREADS {
                    f();
                }
            });
        }
    });
}

fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_contended_counter");
    group.sample_size(20);

    group.bench_function("spinlock", |b| {
        b.iter(|| {
            let lock = SpinLock::new(0u64);
            contended(|| {
                *lock.lock() += 1;
            });
            let v = *lock.lock();
            v
        });
    });
    group.bench_function("ticket_lock", |b| {
        b.iter(|| {
            let lock = TicketLock::new(0u64);
            contended(|| {
                *lock.lock() += 1;
            });
            let v = *lock.lock();
            v
        });
    });
    group.bench_function("std_mutex", |b| {
        b.iter(|| {
            let lock = Mutex::new(0u64);
            contended(|| {
                *lock.lock().unwrap() += 1;
            });
            let v = *lock.lock().unwrap();
            v
        });
    });
    group.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            let lock = parking_lot::Mutex::new(0u64);
            contended(|| {
                *lock.lock() += 1;
            });
            let v = *lock.lock();
            v
        });
    });
    group.bench_function("atomic_fetch_add", |b| {
        b.iter(|| {
            let counter = AtomicU64::new(0);
            contended(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            counter.load(Ordering::Relaxed)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("a1_read_mostly");
    let seq = Arc::new(SeqLock::new((7u64, 7u64)));
    group.bench_function("seqlock_read", |b| {
        b.iter(|| seq.read());
    });
    let mx = Arc::new(Mutex::new((7u64, 7u64)));
    group.bench_function("mutex_read", |b| {
        b.iter(|| *mx.lock().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
