//! # bench-suite — Criterion benchmarks for experiments E1–E8
//!
//! One bench target per experiment table (see DESIGN.md's per-experiment
//! index). The `plos06::experiments` module prints the same measurements as
//! one-shot tables; these benches are the statistically careful versions.
//!
//! ```sh
//! cargo bench -p bench-suite --bench e2_boxing
//! ```

/// Standard small sizes shared by the benches so cross-bench numbers are
/// comparable.
pub mod sizes {
    /// Allocation operations per E1 iteration.
    pub const E1_OPS: usize = 10_000;
    /// Loop iterations per E2/E3 kernel.
    pub const E2_LOOP: usize = 10_000;
    /// Calls per E4 iteration.
    pub const E4_CALLS: u64 = 10_000;
    /// IPC round trips per E6 iteration.
    pub const E6_ROUNDS: usize = 200;
    /// Transfers per thread per E7 iteration.
    pub const E7_OPS: usize = 2_000;
    /// Packets per E8 iteration.
    pub const E8_PACKETS: usize = 2_000;
}
