//! A small DPLL SAT solver: unit propagation, pure-literal elimination, and
//! chronological backtracking over a CNF produced by Tseitin transformation.
//!
//! This is the propositional engine under the lazy-SMT loop in
//! [`crate::solver`]; it is deliberately simple (no clause learning) because
//! the verification conditions systems invariants generate are tiny by SAT
//! standards — the paper's point is that the *integration* must exist, not
//! that the engine be competitive.

/// A literal: positive or negative occurrence of variable `var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// True for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    #[must_use]
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    #[must_use]
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A CNF formula: a conjunction of clauses, each a disjunction of literals.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty CNF over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Adds one clause.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }
}

/// Solves the CNF; returns a satisfying assignment (indexed by variable) or
/// `None` if unsatisfiable.
#[must_use]
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    if dpll(&cnf.clauses, &mut assignment) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn dpll(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to a fixed point.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut num_unassigned = 0;
            let mut satisfied = false;
            for &lit in clause {
                match assignment[lit.var] {
                    Some(v) if v == lit.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        num_unassigned += 1;
                        unassigned = Some(lit);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match num_unassigned {
                0 => {
                    // Conflict: undo trail.
                    for v in trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                1 => {
                    let lit = unassigned.expect("one unassigned literal");
                    assignment[lit.var] = Some(lit.positive);
                    trail.push(lit.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }
    // Pick a branching variable.
    let Some(var) = assignment.iter().position(Option::is_none) else {
        return true; // all assigned, no conflicts: satisfying.
    };
    for value in [true, false] {
        assignment[var] = Some(value);
        if dpll(clauses, assignment) {
            return true;
        }
        assignment[var] = None;
    }
    // Undo propagation trail on failure.
    for v in trail {
        assignment[v] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_cnf_is_sat() {
        assert!(solve(&Cnf::new(0)).is_some());
    }

    #[test]
    fn single_unit_clause() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(0)]);
        assert_eq!(solve(&cnf), Some(vec![true]));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert_eq!(solve(&cnf), None);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![]);
        assert_eq!(solve(&cnf), None);
    }

    #[test]
    fn chain_of_implications_propagates() {
        // x0 && (x0 -> x1) && (x1 -> x2)
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(1), Lit::pos(2)]);
        assert_eq!(solve(&cnf), Some(vec![true, true, true]));
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // Two pigeons, one hole: p0 and p1 both in hole, but not together.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(0), Lit::neg(1)]);
        assert_eq!(solve(&cnf), None);
    }

    #[test]
    fn xor_structure_requires_backtracking() {
        // (a || b) && (!a || !b) — two solutions; must find one.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(0), Lit::neg(1)]);
        let m = solve(&cnf).unwrap();
        assert_ne!(m[0], m[1]);
    }

    fn eval(cnf: &Cnf, m: &[bool]) -> bool {
        cnf.clauses
            .iter()
            .all(|c| c.iter().any(|l| m[l.var] == l.positive))
    }

    proptest! {
        /// Against brute force: for random small CNFs the solver agrees with
        /// exhaustive enumeration and returned models actually satisfy.
        #[test]
        fn agrees_with_brute_force(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..4, any::<bool>()), 1..4),
                0..8
            )
        ) {
            let mut cnf = Cnf::new(4);
            for c in &clauses {
                cnf.add_clause(c.iter().map(|&(v, p)| Lit { var: v, positive: p }).collect());
            }
            let brute = (0..16u32).any(|bits| {
                let m: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                eval(&cnf, &m)
            });
            match solve(&cnf) {
                Some(m) => {
                    prop_assert!(eval(&cnf, &m), "returned model does not satisfy");
                    prop_assert!(brute);
                }
                None => prop_assert!(!brute, "solver missed a satisfying assignment"),
            }
        }
    }
}
