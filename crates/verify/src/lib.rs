//! # bitc-verify — application constraint checking
//!
//! The prover-integration substrate the paper's Challenge 1 calls for: BitC's
//! goal was "stateful low-level systems codes that we can reason about in
//! varying measure using automated tools". This crate is that automated
//! tool, scaled to a reproduction:
//!
//! * [`term`] — quantifier-free formulas over linear integer arithmetic and
//!   Booleans (the fragment that covers index bounds, size accounting, and
//!   capability-bit invariants),
//! * [`dpll`] — a DPLL SAT solver,
//! * [`lia`] — Fourier–Motzkin with integer tightening and model extraction,
//! * [`solver`] — the lazy DPLL(T) combination with counterexample models,
//! * [`vcgen`] — weakest-precondition verification-condition generation for
//!   an imperative contract language (`requires`/`ensures`/`invariant`).
//!
//! The solver is *honest*: `Valid` and `Invalid(model)` are definitive
//! (models are re-checkable, and the test suite cross-checks against brute
//! force); when the integer fragment exceeds what Fourier–Motzkin can
//! decide, it answers `Unknown` instead of guessing.
//!
//! ```
//! use bitc_verify::term::{Cmp, Formula, Term};
//! use bitc_verify::solver::{check_valid, Validity};
//!
//! // x <= y && y <= z ==> x <= z
//! let f = Formula::implies(
//!     Formula::and(
//!         Formula::cmp(Cmp::Le, Term::var("x"), Term::var("y")),
//!         Formula::cmp(Cmp::Le, Term::var("y"), Term::var("z")),
//!     ),
//!     Formula::cmp(Cmp::Le, Term::var("x"), Term::var("z")),
//! );
//! assert_eq!(check_valid(&f), Validity::Valid);
//! ```

pub mod dpll;
pub mod lia;
pub mod model;
pub mod solver;
pub mod term;
pub mod vcgen;

pub use model::Model;
pub use solver::{check_sat, check_valid, SatResult, Validity};
pub use term::{Cmp, Formula, Term};
