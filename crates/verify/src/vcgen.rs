//! Verification-condition generation for a small imperative contract
//! language: weakest preconditions over straight-line code, conditionals,
//! and invariant-annotated loops.
//!
//! This is the "application constraint checking" workflow of the paper's
//! Challenge 1: the programmer states `requires`/`ensures`/`invariant`
//! constraints alongside ordinary code, and the tool reduces them to
//! formulas the solver can discharge — no interactive prover in the loop.

use crate::solver::{check_valid, Validity};
use crate::term::{Formula, Term};
use std::fmt;

/// A statement of the contract language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `x := e`
    Assign(String, Term),
    /// Runtime check the verifier must prove can never fail.
    Assert(Formula),
    /// A fact the verifier may assume (e.g. from a caller check).
    Assume(Formula),
    /// `if c { then } else { els }`
    If(Formula, Vec<Stmt>, Vec<Stmt>),
    /// `while c invariant inv { body }`
    While {
        /// Loop condition.
        cond: Formula,
        /// Loop invariant supplied by the programmer.
        invariant: Formula,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A procedure with a contract.
#[derive(Debug, Clone)]
pub struct Procedure {
    /// Procedure name (used in VC labels).
    pub name: String,
    /// Precondition.
    pub requires: Formula,
    /// Postcondition.
    pub ensures: Formula,
    /// Body.
    pub body: Vec<Stmt>,
}

/// One generated verification condition.
#[derive(Debug, Clone)]
pub struct Vc {
    /// Human-readable label ("proc: loop invariant preserved").
    pub label: String,
    /// The formula that must be valid.
    pub formula: Formula,
}

/// Outcome of checking one VC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcOutcome {
    /// Proven.
    Proved,
    /// Refuted, with the counterexample rendered as a string.
    Refuted(String),
    /// Solver gave up.
    Unknown,
}

impl fmt::Display for VcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcOutcome::Proved => write!(f, "proved"),
            VcOutcome::Refuted(m) => write!(f, "REFUTED [{m}]"),
            VcOutcome::Unknown => write!(f, "unknown"),
        }
    }
}

/// Collects the variables assigned anywhere in `stmts` (loop havoc set).
fn modified_vars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(x, _) => {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
            Stmt::If(_, t, e) => {
                modified_vars(t, out);
                modified_vars(e, out);
            }
            Stmt::While { body, .. } => modified_vars(body, out),
            Stmt::Assert(_) | Stmt::Assume(_) => {}
        }
    }
}

/// VC generator state (fresh-variable counter and the side conditions
/// accumulated from asserts and loops).
#[derive(Debug, Default)]
struct VcGen {
    fresh: usize,
    side: Vec<Vc>,
}

impl VcGen {
    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("{base}!{}", self.fresh)
    }

    /// Weakest precondition of a statement list w.r.t. `post`.
    fn wp_seq(&mut self, proc: &str, stmts: &[Stmt], post: Formula) -> Formula {
        let mut q = post;
        for s in stmts.iter().rev() {
            q = self.wp(proc, s, q);
        }
        q
    }

    fn wp(&mut self, proc: &str, s: &Stmt, post: Formula) -> Formula {
        match s {
            Stmt::Assign(x, e) => post.subst(x, e),
            Stmt::Assert(f) => Formula::and(f.clone(), post),
            Stmt::Assume(f) => Formula::implies(f.clone(), post),
            Stmt::If(c, t, e) => {
                let wt = self.wp_seq(proc, t, post.clone());
                let we = self.wp_seq(proc, e, post);
                Formula::and(
                    Formula::implies(c.clone(), wt),
                    Formula::implies(Formula::not(c.clone()), we),
                )
            }
            Stmt::While {
                cond,
                invariant,
                body,
            } => {
                // Havoc the modified variables by renaming them to fresh
                // names in the preserved/exit obligations; the fresh names
                // are free, hence universally quantified by validity.
                let mut mods = Vec::new();
                modified_vars(body, &mut mods);
                let rename = |f: &Formula, gen: &mut VcGen| {
                    let mut g = f.clone();
                    for m in &mods {
                        g = g.subst(m, &Term::var(&gen.fresh_name(m)));
                    }
                    g
                };
                // Preservation: inv && cond ==> wp(body, inv), over havoced vars.
                let body_wp = self.wp_seq(proc, body, invariant.clone());
                let preserved =
                    Formula::implies(Formula::and(invariant.clone(), cond.clone()), body_wp);
                // Consistent renaming across the whole preservation formula.
                let mut preserved_rn = preserved;
                let mut snapshot = Vec::new();
                for m in &mods {
                    let fresh = self.fresh_name(m);
                    preserved_rn = preserved_rn.subst(m, &Term::var(&fresh));
                    snapshot.push(fresh);
                }
                self.side.push(Vc {
                    label: format!("{proc}: loop invariant preserved"),
                    formula: preserved_rn,
                });
                // Exit: inv && !cond ==> post, over havoced vars.
                let exit = Formula::implies(
                    Formula::and(invariant.clone(), Formula::not(cond.clone())),
                    post,
                );
                let mut exit_rn = exit;
                for m in &mods {
                    exit_rn = exit_rn.subst(m, &Term::var(&self.fresh_name(m)));
                }
                self.side.push(Vc {
                    label: format!("{proc}: postcondition on loop exit"),
                    formula: exit_rn,
                });
                // Entry obligation flows up as the wp.
                let _ = rename; // renaming helper retained for clarity
                let _ = snapshot;
                invariant.clone()
            }
        }
    }
}

/// Generates the verification conditions for `proc`.
#[must_use]
pub fn generate_vcs(proc: &Procedure) -> Vec<Vc> {
    let mut generator = VcGen::default();
    let wp = generator.wp_seq(&proc.name, &proc.body, proc.ensures.clone());
    let mut vcs = vec![Vc {
        label: format!("{}: requires ==> wp(body, ensures)", proc.name),
        formula: Formula::implies(proc.requires.clone(), wp),
    }];
    vcs.append(&mut generator.side);
    vcs
}

/// Generates and discharges every VC of `proc`.
#[must_use]
pub fn verify_procedure(proc: &Procedure) -> Vec<(Vc, VcOutcome)> {
    generate_vcs(proc)
        .into_iter()
        .map(|vc| {
            let outcome = match check_valid(&vc.formula) {
                Validity::Valid => VcOutcome::Proved,
                Validity::Invalid(m) => VcOutcome::Refuted(m.to_string()),
                Validity::Unknown => VcOutcome::Unknown,
            };
            (vc, outcome)
        })
        .collect()
}

/// True if every VC of `proc` is proved.
#[must_use]
pub fn is_verified(proc: &Procedure) -> bool {
    verify_procedure(proc)
        .iter()
        .all(|(_, o)| *o == VcOutcome::Proved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Cmp;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn plus(a: Term, b: Term) -> Term {
        Term::Add(Box::new(a), Box::new(b))
    }

    #[test]
    fn straight_line_assignment_verifies() {
        // requires x >= 0; y := x + 1; ensures y > 0.
        let p = Procedure {
            name: "inc".into(),
            requires: Formula::cmp(Cmp::Ge, v("x"), Term::Int(0)),
            ensures: Formula::cmp(Cmp::Gt, v("y"), Term::Int(0)),
            body: vec![Stmt::Assign("y".into(), plus(v("x"), Term::Int(1)))],
        };
        assert!(is_verified(&p));
    }

    #[test]
    fn missing_precondition_is_refuted_with_counterexample() {
        // requires true; y := x + 1; ensures y > 0 — fails for x <= -1.
        let p = Procedure {
            name: "inc".into(),
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Gt, v("y"), Term::Int(0)),
            body: vec![Stmt::Assign("y".into(), plus(v("x"), Term::Int(1)))],
        };
        let results = verify_procedure(&p);
        assert!(matches!(results[0].1, VcOutcome::Refuted(_)));
    }

    #[test]
    fn asserts_become_obligations() {
        // requires i < n; assert i + 1 <= n.
        let p = Procedure {
            name: "bound".into(),
            requires: Formula::cmp(Cmp::Lt, v("i"), v("n")),
            ensures: Formula::True,
            body: vec![Stmt::Assert(Formula::cmp(
                Cmp::Le,
                plus(v("i"), Term::Int(1)),
                v("n"),
            ))],
        };
        assert!(is_verified(&p));
    }

    #[test]
    fn failing_assert_is_refuted() {
        let p = Procedure {
            name: "bad".into(),
            requires: Formula::True,
            ensures: Formula::True,
            body: vec![Stmt::Assert(Formula::cmp(Cmp::Lt, v("i"), v("n")))],
        };
        assert!(!is_verified(&p));
    }

    #[test]
    fn conditional_paths_both_checked() {
        // if x >= 0 { y := x } else { y := 0 - x }; ensures y >= 0.
        let p = Procedure {
            name: "abs".into(),
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Ge, v("y"), Term::Int(0)),
            body: vec![Stmt::If(
                Formula::cmp(Cmp::Ge, v("x"), Term::Int(0)),
                vec![Stmt::Assign("y".into(), v("x"))],
                vec![Stmt::Assign(
                    "y".into(),
                    Term::Sub(Box::new(Term::Int(0)), Box::new(v("x"))),
                )],
            )],
        };
        assert!(is_verified(&p));
    }

    #[test]
    fn buggy_conditional_is_caught() {
        // Same but the else branch forgets to negate.
        let p = Procedure {
            name: "abs_bug".into(),
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Ge, v("y"), Term::Int(0)),
            body: vec![Stmt::If(
                Formula::cmp(Cmp::Ge, v("x"), Term::Int(0)),
                vec![Stmt::Assign("y".into(), v("x"))],
                vec![Stmt::Assign("y".into(), v("x"))], // bug
            )],
        };
        assert!(!is_verified(&p));
    }

    fn counting_loop(invariant: Formula) -> Procedure {
        // requires n >= 0; i := 0; while i < n inv { i := i + 1 }; ensures i == n.
        Procedure {
            name: "count".into(),
            requires: Formula::cmp(Cmp::Ge, v("n"), Term::Int(0)),
            ensures: Formula::cmp(Cmp::Eq, v("i"), v("n")),
            body: vec![
                Stmt::Assign("i".into(), Term::Int(0)),
                Stmt::While {
                    cond: Formula::cmp(Cmp::Lt, v("i"), v("n")),
                    invariant,
                    body: vec![Stmt::Assign("i".into(), plus(v("i"), Term::Int(1)))],
                },
            ],
        }
    }

    #[test]
    fn loop_with_correct_invariant_verifies() {
        // Invariant: 0 <= i <= n.
        let inv = Formula::and(
            Formula::cmp(Cmp::Ge, v("i"), Term::Int(0)),
            Formula::cmp(Cmp::Le, v("i"), v("n")),
        );
        assert!(is_verified(&counting_loop(inv)));
    }

    #[test]
    fn loop_with_weak_invariant_fails_at_exit() {
        // Invariant "true" cannot establish i == n on exit.
        let results = verify_procedure(&counting_loop(Formula::True));
        let exit = results
            .iter()
            .find(|(vc, _)| vc.label.contains("postcondition on loop exit"))
            .expect("exit VC exists");
        assert!(matches!(exit.1, VcOutcome::Refuted(_)));
    }

    #[test]
    fn loop_with_non_inductive_invariant_fails_preservation() {
        // Invariant i == 0 is not preserved by i := i + 1.
        let inv = Formula::cmp(Cmp::Eq, v("i"), Term::Int(0));
        let results = verify_procedure(&counting_loop(inv));
        let pres = results
            .iter()
            .find(|(vc, _)| vc.label.contains("invariant preserved"))
            .expect("preservation VC exists");
        assert!(matches!(pres.1, VcOutcome::Refuted(_)));
    }

    #[test]
    fn assume_weakens_obligations() {
        let p = Procedure {
            name: "assume".into(),
            requires: Formula::True,
            ensures: Formula::cmp(Cmp::Gt, v("x"), Term::Int(0)),
            body: vec![Stmt::Assume(Formula::cmp(Cmp::Gt, v("x"), Term::Int(0)))],
        };
        assert!(is_verified(&p));
    }

    #[test]
    fn vc_labels_name_the_procedure() {
        let vcs = generate_vcs(&counting_loop(Formula::True));
        assert!(vcs.iter().all(|vc| vc.label.starts_with("count:")));
        assert_eq!(vcs.len(), 3, "entry + preservation + exit");
    }
}
