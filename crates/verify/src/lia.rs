//! Decision procedure for conjunctions of linear integer constraints:
//! Fourier–Motzkin elimination with integer (gcd) tightening and model
//! extraction by back-substitution.
//!
//! Soundness contract:
//!
//! * `Unsat` is always correct (FM refutations are valid over the rationals,
//!   hence over the integers).
//! * `Sat` is always correct — a concrete integer model is produced and the
//!   caller can (and the tests do) re-evaluate every constraint against it.
//! * When elimination succeeds rationally but no integer model can be
//!   extracted, the procedure answers `Unknown` rather than guessing. This is
//!   the honest version of what a production prover handles with the Omega
//!   test's dark shadows.

use std::collections::BTreeMap;

/// A linear expression `sum(coeff_i * var_i) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Variable coefficients (zero coefficients are never stored).
    pub coeffs: BTreeMap<String, i64>,
    /// Constant offset.
    pub constant: i64,
}

impl LinExpr {
    /// The constant expression `n`.
    #[must_use]
    pub fn constant(n: i64) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: n,
        }
    }

    /// The expression `1 * var`.
    #[must_use]
    pub fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_owned(), 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Adds another expression scaled by `k`.
    #[must_use]
    pub fn add_scaled(mut self, other: &LinExpr, k: i64) -> Self {
        for (v, c) in &other.coeffs {
            let e = self.coeffs.entry(v.clone()).or_insert(0);
            *e += c * k;
            if *e == 0 {
                self.coeffs.remove(v);
            }
        }
        self.constant += other.constant * k;
        self
    }

    /// Evaluates under a (total) assignment.
    #[must_use]
    pub fn eval(&self, model: &BTreeMap<String, i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in &self.coeffs {
            acc = acc.checked_add(c.checked_mul(*model.get(v)?)?)?;
        }
        Some(acc)
    }
}

/// A constraint `expr <= 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The left-hand expression (compared against zero).
    pub expr: LinExpr,
}

impl Constraint {
    /// Builds `expr <= 0`.
    #[must_use]
    pub fn le_zero(expr: LinExpr) -> Self {
        Constraint { expr }
    }

    /// True if the constraint holds under `model`.
    #[must_use]
    pub fn holds(&self, model: &BTreeMap<String, i64>) -> Option<bool> {
        Some(self.expr.eval(model)? <= 0)
    }

    /// Integer tightening: divide by the gcd of the variable coefficients and
    /// floor the bound. For `g | coeffs`, `sum c_i x_i <= -k` iff
    /// `sum (c_i/g) x_i <= floor(-k/g)` over the integers.
    fn tighten(&mut self) {
        let g = self
            .expr
            .coeffs
            .values()
            .fold(0i64, |acc, &c| gcd(acc, c.abs()));
        if g > 1 {
            for c in self.expr.coeffs.values_mut() {
                *c /= g;
            }
            let bound = -self.expr.constant; // sum <= bound
            self.expr.constant = -(bound.div_euclid(g));
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiaResult {
    /// Satisfiable, with a witnessing integer model.
    Sat(BTreeMap<String, i64>),
    /// Definitely unsatisfiable.
    Unsat,
    /// The procedure could not decide (integer-gap or resource cap).
    Unknown,
}

/// Bounds recorded when a variable is eliminated: the variable name, its
/// lower bounds as `(coeff, expr)` pairs (`coeff * var >= expr`), and its
/// upper bounds (`coeff * var <= expr`).
type Elimination = (String, Vec<(i64, LinExpr)>, Vec<(i64, LinExpr)>);

/// Caps the constraint population during elimination; beyond this the
/// procedure answers `Unknown` instead of blowing up (FM is worst-case
/// doubly exponential).
const MAX_CONSTRAINTS: usize = 20_000;

/// Decides satisfiability of a conjunction of constraints over the integers.
#[must_use]
pub fn check(constraints: &[Constraint]) -> LiaResult {
    let mut work: Vec<Constraint> = constraints.to_vec();
    for c in &mut work {
        c.tighten();
    }
    // Elimination record: (var, lower bounds as (coeff, rest), upper bounds).
    // A lower bound `a*x >= e` is stored as (a, e); upper `b*x <= f` as (b, f).
    let mut eliminated: Vec<Elimination> = Vec::new();

    loop {
        // Drop trivially-true constraints; fail on trivially-false ones.
        work.retain(|c| !(c.expr.coeffs.is_empty() && c.expr.constant <= 0));
        if let Some(bad) = work.iter().find(|c| c.expr.coeffs.is_empty()) {
            debug_assert!(bad.expr.constant > 0);
            return LiaResult::Unsat;
        }
        // Pick the variable appearing in the fewest constraints.
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for c in &work {
            for v in c.expr.coeffs.keys() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let Some((&var, _)) = counts.iter().min_by_key(|(_, n)| **n) else {
            // No variables left and no contradictions: rationally feasible.
            break;
        };
        let var = var.to_owned();
        let mut lowers: Vec<(i64, LinExpr)> = Vec::new();
        let mut uppers: Vec<(i64, LinExpr)> = Vec::new();
        let mut rest: Vec<Constraint> = Vec::new();
        for c in work {
            match c.expr.coeffs.get(&var).copied() {
                None => rest.push(c),
                Some(a) if a > 0 => {
                    // a*x + e <= 0  =>  a*x <= -e : upper bound (a, -e).
                    let mut e = c.expr.clone();
                    e.coeffs.remove(&var);
                    let neg = LinExpr::constant(0).add_scaled(&e, -1);
                    uppers.push((a, neg));
                }
                Some(a) => {
                    // a<0: a*x + e <= 0 => (-a)*x >= e : lower bound (-a, e).
                    let mut e = c.expr.clone();
                    e.coeffs.remove(&var);
                    lowers.push((-a, e));
                }
            }
        }
        // Combine every (lower, upper) pair:
        // a*x >= e and b*x <= f  =>  b*e <= a*b*x <= a*f  =>  b*e - a*f <= 0.
        for (a, e) in &lowers {
            for (b, f) in &uppers {
                let combined = LinExpr::constant(0).add_scaled(e, *b).add_scaled(f, -*a);
                let mut c = Constraint::le_zero(combined);
                c.tighten();
                rest.push(c);
            }
        }
        if rest.len() > MAX_CONSTRAINTS {
            return LiaResult::Unknown;
        }
        eliminated.push((var, lowers, uppers));
        work = rest;
    }

    // Back-substitute an integer model in reverse elimination order.
    // Variables whose constraints cancelled during combination are
    // unconstrained in the projection: default them to 0 first, then let the
    // reverse pass overwrite every variable that carries bounds.
    let mut model: BTreeMap<String, i64> = BTreeMap::new();
    for c in constraints {
        for v in c.expr.coeffs.keys() {
            model.entry(v.clone()).or_insert(0);
        }
    }
    for (var, lowers, uppers) in eliminated.iter().rev() {
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for (a, e) in lowers {
            // x >= e/a (a > 0): lower bound ceil(e/a).
            let Some(ev) = e.eval(&model) else {
                return LiaResult::Unknown;
            };
            let bound = div_ceil(ev, *a);
            lo = Some(lo.map_or(bound, |l| l.max(bound)));
        }
        for (b, f) in uppers {
            // x <= f/b (b > 0): upper bound floor(f/b).
            let Some(fv) = f.eval(&model) else {
                return LiaResult::Unknown;
            };
            let bound = fv.div_euclid(*b);
            hi = Some(hi.map_or(bound, |h| h.min(bound)));
        }
        let value = match (lo, hi) {
            (Some(l), Some(h)) if l > h => return LiaResult::Unknown,
            (Some(l), _) => l,
            (None, Some(h)) => h.min(0),
            (None, None) => 0,
        };
        model.insert(var.clone(), value);
    }
    // Final safety net: the model must actually satisfy the inputs.
    for c in constraints {
        match c.holds(&model) {
            Some(true) => {}
            _ => return LiaResult::Unknown,
        }
    }
    LiaResult::Sat(model)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn le(coeffs: &[(&str, i64)], constant: i64) -> Constraint {
        // sum coeffs + constant <= 0
        let mut e = LinExpr::constant(constant);
        for (v, c) in coeffs {
            e = e.add_scaled(&LinExpr::var(v), *c);
        }
        Constraint::le_zero(e)
    }

    #[test]
    fn empty_system_is_sat() {
        assert!(matches!(check(&[]), LiaResult::Sat(_)));
    }

    #[test]
    fn constant_contradiction_is_unsat() {
        // 1 <= 0
        assert_eq!(check(&[le(&[], 1)]), LiaResult::Unsat);
    }

    #[test]
    fn simple_bounds_produce_a_model() {
        // x >= 3 (i.e. -x + 3 <= 0), x <= 7 (x - 7 <= 0)
        let cs = [le(&[("x", -1)], 3), le(&[("x", 1)], -7)];
        match check(&cs) {
            LiaResult::Sat(m) => {
                let x = m["x"];
                assert!((3..=7).contains(&x));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_bounds_are_unsat() {
        // x >= 5 and x <= 4
        let cs = [le(&[("x", -1)], 5), le(&[("x", 1)], -4)];
        assert_eq!(check(&cs), LiaResult::Unsat);
    }

    #[test]
    fn integer_tightening_catches_parity_style_gaps() {
        // 2x >= 1 and 2x <= 1: rationally x = 1/2, integrally unsat.
        // After tightening: x >= 1 and x <= 0.
        let cs = [le(&[("x", -2)], 1), le(&[("x", 2)], -1)];
        assert_eq!(check(&cs), LiaResult::Unsat);
    }

    #[test]
    fn two_variable_chain_is_transitive() {
        // x <= y, y <= z, z <= x - 1  =>  unsat (x <= x - 1).
        let cs = [
            le(&[("x", 1), ("y", -1)], 0),
            le(&[("y", 1), ("z", -1)], 0),
            le(&[("z", 1), ("x", -1)], 1),
        ];
        assert_eq!(check(&cs), LiaResult::Unsat);
    }

    #[test]
    fn model_satisfies_multivariable_system() {
        // x + y <= 10, x >= 2, y >= 3.
        let cs = [
            le(&[("x", 1), ("y", 1)], -10),
            le(&[("x", -1)], 2),
            le(&[("y", -1)], 3),
        ];
        match check(&cs) {
            LiaResult::Sat(m) => {
                assert!(m["x"] >= 2);
                assert!(m["y"] >= 3);
                assert!(m["x"] + m["y"] <= 10);
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_variable_defaults_sanely() {
        // x <= 100 only.
        match check(&[le(&[("x", 1)], -100)]) {
            LiaResult::Sat(m) => assert!(m["x"] <= 100),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn equalities_via_paired_inequalities() {
        // x == 42 encoded as x <= 42 && x >= 42.
        let cs = [le(&[("x", 1)], -42), le(&[("x", -1)], 42)];
        match check(&cs) {
            LiaResult::Sat(m) => assert_eq!(m["x"], 42),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    proptest! {
        /// Agreement with a brute-force oracle over small boxes: for systems
        /// of up to 4 constraints over x,y in [-6,6], FM+extraction must
        /// never contradict exhaustive search (Unknown is allowed).
        #[test]
        fn agrees_with_brute_force(
            specs in proptest::collection::vec(
                (-3i64..=3, -3i64..=3, -8i64..=8), 1..4
            )
        ) {
            // Each spec (a, b, k): a*x + b*y + k <= 0, plus box bounds.
            let mut cs: Vec<Constraint> = specs
                .iter()
                .map(|(a, b, k)| le(&[("x", *a), ("y", *b)], *k))
                .collect();
            // Box: -6 <= x,y <= 6 keeps brute force finite and exercises
            // bound extraction.
            cs.push(le(&[("x", 1)], -6));
            cs.push(le(&[("x", -1)], -6));
            cs.push(le(&[("y", 1)], -6));
            cs.push(le(&[("y", -1)], -6));

            let brute_sat = (-6..=6).any(|x| {
                (-6..=6).any(|y| {
                    let m: BTreeMap<String, i64> =
                        [("x".to_owned(), x), ("y".to_owned(), y)].into();
                    cs.iter().all(|c| c.holds(&m) == Some(true))
                })
            });
            match check(&cs) {
                LiaResult::Sat(m) => {
                    prop_assert!(brute_sat, "solver said Sat but box search disagrees");
                    for c in &cs {
                        prop_assert_eq!(c.holds(&m), Some(true), "model violates constraint");
                    }
                }
                LiaResult::Unsat => prop_assert!(!brute_sat, "solver said Unsat but {:?} exists", brute_sat),
                LiaResult::Unknown => { /* allowed */ }
            }
        }
    }
}
