//! The lazy-SMT solver: a DPLL propositional core consulted against the
//! linear-integer-arithmetic theory, with blocking-clause refinement.
//!
//! Pipeline: [`Formula`] → Tseitin CNF with theory atoms abstracted to
//! propositional variables → [`crate::dpll::solve`] → theory check of the
//! asserted atom conjunction via [`crate::lia::check`] (splitting
//! disequalities) → either a full model, or a blocking clause and another
//! round. This is the standard DPLL(T) architecture in miniature.

use crate::dpll::{self, Cnf, Lit};
use crate::lia::{self, Constraint, LiaResult, LinExpr};
use crate::model::Model;
use crate::term::{Cmp, Formula, Term};
use std::collections::HashMap;

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable with a witnessing model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver gave up (resource cap or integer-arithmetic gap).
    Unknown,
}

/// Result of a validity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds for every assignment.
    Valid,
    /// Falsified by the contained counterexample.
    Invalid(Model),
    /// The solver gave up.
    Unknown,
}

/// Canonical theory atom: a linear expression compared against zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TheoryAtom {
    /// `expr <= 0`.
    LeZero(Vec<(String, i64)>, i64),
    /// `expr == 0`.
    EqZero(Vec<(String, i64)>, i64),
}

fn linearize(t: &Term, out: &mut LinExpr, scale: i64) {
    match t {
        Term::Int(n) => out.constant += n * scale,
        Term::Var(v) => {
            let e = out.coeffs.entry(v.clone()).or_insert(0);
            *e += scale;
            if *e == 0 {
                out.coeffs.remove(v);
            }
        }
        Term::Add(a, b) => {
            linearize(a, out, scale);
            linearize(b, out, scale);
        }
        Term::Sub(a, b) => {
            linearize(a, out, scale);
            linearize(b, out, -scale);
        }
        Term::Scale(k, inner) => linearize(inner, out, scale * k),
    }
}

fn expr_key(e: &LinExpr) -> (Vec<(String, i64)>, i64) {
    (
        e.coeffs.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        e.constant,
    )
}

struct Abstraction {
    cnf: Cnf,
    /// prop var -> theory atom (for vars that stand for atoms).
    atom_of_var: HashMap<usize, TheoryAtom>,
    /// canonical atom -> prop var.
    var_of_atom: HashMap<TheoryAtom, usize>,
    /// bool var name -> prop var.
    bool_vars: HashMap<String, usize>,
    true_var: usize,
}

impl Abstraction {
    fn new() -> Self {
        let mut cnf = Cnf::new(0);
        let true_var = cnf.fresh_var();
        cnf.add_clause(vec![Lit::pos(true_var)]);
        Abstraction {
            cnf,
            atom_of_var: HashMap::new(),
            var_of_atom: HashMap::new(),
            bool_vars: HashMap::new(),
            true_var,
        }
    }

    fn atom_var(&mut self, atom: TheoryAtom) -> usize {
        if let Some(&v) = self.var_of_atom.get(&atom) {
            return v;
        }
        let v = self.cnf.fresh_var();
        self.var_of_atom.insert(atom.clone(), v);
        self.atom_of_var.insert(v, atom);
        v
    }

    fn bool_var(&mut self, name: &str) -> usize {
        if let Some(&v) = self.bool_vars.get(name) {
            return v;
        }
        let v = self.cnf.fresh_var();
        self.bool_vars.insert(name.to_owned(), v);
        v
    }

    /// Tseitin: returns a literal equisatisfiably representing `f`.
    fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::True => Lit::pos(self.true_var),
            Formula::False => Lit::neg(self.true_var),
            Formula::BoolVar(b) => Lit::pos(self.bool_var(b)),
            Formula::Not(g) => self.encode(g).negated(),
            Formula::Implies(a, b) => {
                let not_a = Formula::not((**a).clone());
                self.encode(&Formula::Or(vec![not_a, (**b).clone()]))
            }
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.cnf.fresh_var();
                // v -> each lit
                for &l in &lits {
                    self.cnf.add_clause(vec![Lit::neg(v), l]);
                }
                // all lits -> v
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                clause.push(Lit::pos(v));
                self.cnf.add_clause(clause);
                Lit::pos(v)
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.cnf.fresh_var();
                // each lit -> v
                for &l in &lits {
                    self.cnf.add_clause(vec![l.negated(), Lit::pos(v)]);
                }
                // v -> some lit
                let mut clause = lits;
                clause.insert(0, Lit::neg(v));
                self.cnf.add_clause(clause);
                Lit::pos(v)
            }
            Formula::Atom(op, lhs, rhs) => {
                let mut d = LinExpr::default();
                linearize(lhs, &mut d, 1);
                linearize(rhs, &mut d, -1);
                // Normalize all six comparisons to LeZero / EqZero with an
                // optional outer negation.
                let (atom, negate) = match op {
                    Cmp::Le => (TheoryAtom::LeZero(expr_key(&d).0, expr_key(&d).1), false),
                    Cmp::Lt => {
                        let mut e = d;
                        e.constant += 1;
                        (TheoryAtom::LeZero(expr_key(&e).0, expr_key(&e).1), false)
                    }
                    Cmp::Ge => {
                        let e = LinExpr::constant(0).add_scaled(&d, -1);
                        (TheoryAtom::LeZero(expr_key(&e).0, expr_key(&e).1), false)
                    }
                    Cmp::Gt => {
                        let mut e = LinExpr::constant(0).add_scaled(&d, -1);
                        e.constant += 1;
                        (TheoryAtom::LeZero(expr_key(&e).0, expr_key(&e).1), false)
                    }
                    Cmp::Eq => (TheoryAtom::EqZero(expr_key(&d).0, expr_key(&d).1), false),
                    Cmp::Ne => (TheoryAtom::EqZero(expr_key(&d).0, expr_key(&d).1), true),
                };
                let v = self.atom_var(atom);
                if negate {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                }
            }
        }
    }
}

fn expr_from_key(coeffs: &[(String, i64)], constant: i64) -> LinExpr {
    LinExpr {
        coeffs: coeffs.iter().cloned().collect(),
        constant,
    }
}

/// Maximum disequality case-splits per theory check (2^k branches).
const MAX_DISEQ: usize = 12;
/// Maximum lazy-SMT refinement rounds.
const MAX_ROUNDS: usize = 4_096;

/// Decides satisfiability of `f` over the integers and Booleans.
#[must_use]
pub fn check_sat(f: &Formula) -> SatResult {
    let mut abs = Abstraction::new();
    let root = abs.encode(f);
    abs.cnf.add_clause(vec![root]);

    for _ in 0..MAX_ROUNDS {
        let Some(assignment) = dpll::solve(&abs.cnf) else {
            return SatResult::Unsat;
        };
        // Gather asserted theory literals.
        let mut les: Vec<Constraint> = Vec::new();
        let mut diseqs: Vec<LinExpr> = Vec::new();
        let mut used_lits: Vec<Lit> = Vec::new();
        for (&var, atom) in &abs.atom_of_var {
            let value = assignment[var];
            used_lits.push(if value { Lit::pos(var) } else { Lit::neg(var) });
            match (atom, value) {
                (TheoryAtom::LeZero(c, k), true) => {
                    les.push(Constraint::le_zero(expr_from_key(c, *k)));
                }
                (TheoryAtom::LeZero(c, k), false) => {
                    // !(e <= 0)  <=>  -e + 1 <= 0
                    let mut e = LinExpr::constant(0).add_scaled(&expr_from_key(c, *k), -1);
                    e.constant += 1;
                    les.push(Constraint::le_zero(e));
                }
                (TheoryAtom::EqZero(c, k), true) => {
                    let e = expr_from_key(c, *k);
                    les.push(Constraint::le_zero(e.clone()));
                    les.push(Constraint::le_zero(LinExpr::constant(0).add_scaled(&e, -1)));
                }
                (TheoryAtom::EqZero(c, k), false) => diseqs.push(expr_from_key(c, *k)),
            }
        }
        match check_theory(&les, &diseqs) {
            LiaResult::Sat(ints) => {
                let mut model = Model::new();
                model.ints = ints;
                for (name, &v) in &abs.bool_vars {
                    model.bools.insert(name.clone(), assignment[v]);
                }
                return SatResult::Sat(model);
            }
            LiaResult::Unsat => {
                // Block this theory assignment and refine.
                let clause: Vec<Lit> = used_lits.iter().map(|l| l.negated()).collect();
                abs.cnf.add_clause(clause);
            }
            LiaResult::Unknown => return SatResult::Unknown,
        }
    }
    SatResult::Unknown
}

/// Theory check with disequality case-splitting.
fn check_theory(les: &[Constraint], diseqs: &[LinExpr]) -> LiaResult {
    if diseqs.len() > MAX_DISEQ {
        return LiaResult::Unknown;
    }
    let branches = 1usize << diseqs.len();
    let mut saw_unknown = false;
    for mask in 0..branches {
        let mut cs = les.to_vec();
        for (i, d) in diseqs.iter().enumerate() {
            if mask >> i & 1 == 0 {
                // d < 0  <=>  d + 1 <= 0
                let mut e = d.clone();
                e.constant += 1;
                cs.push(Constraint::le_zero(e));
            } else {
                // d > 0  <=>  -d + 1 <= 0
                let mut e = LinExpr::constant(0).add_scaled(d, -1);
                e.constant += 1;
                cs.push(Constraint::le_zero(e));
            }
        }
        match lia::check(&cs) {
            LiaResult::Sat(m) => return LiaResult::Sat(m),
            LiaResult::Unsat => {}
            LiaResult::Unknown => saw_unknown = true,
        }
    }
    if saw_unknown {
        LiaResult::Unknown
    } else {
        LiaResult::Unsat
    }
}

/// Decides validity of `f`: `Valid` iff `!f` is unsatisfiable.
#[must_use]
pub fn check_valid(f: &Formula) -> Validity {
    match check_sat(&Formula::not(f.clone())) {
        SatResult::Unsat => Validity::Valid,
        SatResult::Sat(m) => Validity::Invalid(m),
        SatResult::Unknown => Validity::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term as T;

    fn v(n: &str) -> T {
        T::var(n)
    }

    #[test]
    fn tautologies_are_valid() {
        // x <= x
        let f = Formula::cmp(Cmp::Le, v("x"), v("x"));
        assert_eq!(check_valid(&f), Validity::Valid);
        // x < x + 1
        let f = Formula::cmp(
            Cmp::Lt,
            v("x"),
            T::Add(Box::new(v("x")), Box::new(T::Int(1))),
        );
        assert_eq!(check_valid(&f), Validity::Valid);
    }

    #[test]
    fn transitivity_is_valid() {
        // x <= y && y <= z ==> x <= z
        let f = Formula::implies(
            Formula::and(
                Formula::cmp(Cmp::Le, v("x"), v("y")),
                Formula::cmp(Cmp::Le, v("y"), v("z")),
            ),
            Formula::cmp(Cmp::Le, v("x"), v("z")),
        );
        assert_eq!(check_valid(&f), Validity::Valid);
    }

    #[test]
    fn invalid_formulas_come_with_counterexamples() {
        // x <= y ==> x < y is falsified by x == y.
        let f = Formula::implies(
            Formula::cmp(Cmp::Le, v("x"), v("y")),
            Formula::cmp(Cmp::Lt, v("x"), v("y")),
        );
        match check_valid(&f) {
            Validity::Invalid(m) => {
                assert_eq!(m.int("x"), m.int("y"), "counterexample must have x == y");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn counterexamples_actually_falsify() {
        let f = Formula::implies(
            Formula::cmp(Cmp::Ge, v("n"), T::Int(0)),
            Formula::cmp(Cmp::Lt, v("i"), v("n")),
        );
        match check_valid(&f) {
            Validity::Invalid(m) => {
                let ie = |s: &str| Some(m.int(s));
                let be = |s: &str| Some(m.bool(s));
                assert_eq!(f.eval(&ie, &be), Some(false));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn boolean_structure_mixes_with_arithmetic() {
        // (p || x > 0) && !p && x <= 0 is unsat.
        let f = Formula::And(vec![
            Formula::or(
                Formula::BoolVar("p".into()),
                Formula::cmp(Cmp::Gt, v("x"), T::Int(0)),
            ),
            Formula::not(Formula::BoolVar("p".into())),
            Formula::cmp(Cmp::Le, v("x"), T::Int(0)),
        ]);
        assert_eq!(check_sat(&f), SatResult::Unsat);
    }

    #[test]
    fn disequality_split_works() {
        // x != 0 && x >= 0 && x <= 0 is unsat.
        let f = Formula::And(vec![
            Formula::cmp(Cmp::Ne, v("x"), T::Int(0)),
            Formula::cmp(Cmp::Ge, v("x"), T::Int(0)),
            Formula::cmp(Cmp::Le, v("x"), T::Int(0)),
        ]);
        assert_eq!(check_sat(&f), SatResult::Unsat);
        // x != 0 && 0 <= x <= 1 forces x == 1.
        let f = Formula::And(vec![
            Formula::cmp(Cmp::Ne, v("x"), T::Int(0)),
            Formula::cmp(Cmp::Ge, v("x"), T::Int(0)),
            Formula::cmp(Cmp::Le, v("x"), T::Int(1)),
        ]);
        match check_sat(&f) {
            SatResult::Sat(m) => assert_eq!(m.int("x"), 1),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn equalities_propagate() {
        // x == y && y == 3 ==> x == 3 is valid.
        let f = Formula::implies(
            Formula::and(
                Formula::cmp(Cmp::Eq, v("x"), v("y")),
                Formula::cmp(Cmp::Eq, v("y"), T::Int(3)),
            ),
            Formula::cmp(Cmp::Eq, v("x"), T::Int(3)),
        );
        assert_eq!(check_valid(&f), Validity::Valid);
    }

    #[test]
    fn scaled_arithmetic_is_handled() {
        // 2x + 3 <= 9 && x >= 3  is unsat over integers (x <= 3, so x == 3,
        // 2*3+3=9 <= 9 ok — actually sat!). Check the sat case precisely.
        let f = Formula::And(vec![
            Formula::cmp(
                Cmp::Le,
                T::Add(Box::new(T::Scale(2, Box::new(v("x")))), Box::new(T::Int(3))),
                T::Int(9),
            ),
            Formula::cmp(Cmp::Ge, v("x"), T::Int(3)),
        ]);
        match check_sat(&f) {
            SatResult::Sat(m) => assert_eq!(m.int("x"), 3),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn pure_boolean_formulas_work() {
        let f = Formula::and(
            Formula::or(Formula::BoolVar("a".into()), Formula::BoolVar("b".into())),
            Formula::not(Formula::BoolVar("a".into())),
        );
        match check_sat(&f) {
            SatResult::Sat(m) => {
                assert!(!m.bool("a"));
                assert!(m.bool("b"));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_formula_is_unsat_not_unknown() {
        let f = Formula::and(Formula::True, Formula::False);
        assert_eq!(check_sat(&f), SatResult::Unsat);
    }
}
