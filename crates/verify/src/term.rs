//! Logical terms and formulas for the constraint checker.
//!
//! The language is quantifier-free linear integer arithmetic plus Boolean
//! structure — deliberately the fragment BitC's prover integration targeted
//! first, because it covers the bread-and-butter systems invariants: index
//! bounds, size accounting, counter monotonicity, capability bits.

use std::collections::BTreeSet;
use std::fmt;

/// An integer-valued term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer literal.
    Int(i64),
    /// Integer variable.
    Var(String),
    /// Sum of two terms.
    Add(Box<Term>, Box<Term>),
    /// Difference of two terms.
    Sub(Box<Term>, Box<Term>),
    /// Product by a literal coefficient (keeps the logic linear).
    Scale(i64, Box<Term>),
}

impl Term {
    /// Convenience: a variable term.
    #[must_use]
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }

    /// Collects variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Int(_) => {}
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Add(a, b) | Term::Sub(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Scale(_, t) => t.collect_vars(out),
        }
    }

    /// Evaluates under an assignment.
    ///
    /// Returns `None` if a variable is unassigned or arithmetic overflows.
    #[must_use]
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            Term::Int(n) => Some(*n),
            Term::Var(v) => env(v),
            Term::Add(a, b) => a.eval(env)?.checked_add(b.eval(env)?),
            Term::Sub(a, b) => a.eval(env)?.checked_sub(b.eval(env)?),
            Term::Scale(k, t) => t.eval(env)?.checked_mul(*k),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Scale(k, t) => write!(f, "{k}*{t}"),
        }
    }
}

impl From<i64> for Term {
    fn from(n: i64) -> Term {
        Term::Int(n)
    }
}

/// Comparison operators over integer terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Le => "<=",
            Cmp::Lt => "<",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// A quantifier-free formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// Boolean variable.
    BoolVar(String),
    /// Arithmetic atom `lhs cmp rhs`.
    Atom(Cmp, Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// `a && b`.
    #[must_use]
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(vec![a, b])
    }

    /// `a || b`.
    #[must_use]
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![a, b])
    }

    /// `a ==> b`.
    #[must_use]
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// `!a`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Formula) -> Formula {
        Formula::Not(Box::new(a))
    }

    /// Atom shorthand.
    #[must_use]
    pub fn cmp(op: Cmp, lhs: Term, rhs: Term) -> Formula {
        Formula::Atom(op, lhs, rhs)
    }

    /// Collects integer and Boolean variable names.
    pub fn collect_vars(&self, ints: &mut BTreeSet<String>, bools: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::BoolVar(b) => {
                bools.insert(b.clone());
            }
            Formula::Atom(_, l, r) => {
                l.collect_vars(ints);
                r.collect_vars(ints);
            }
            Formula::Not(f) => f.collect_vars(ints, bools),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(ints, bools);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_vars(ints, bools);
                b.collect_vars(ints, bools);
            }
        }
    }

    /// Evaluates under full assignments (used by the brute-force test
    /// oracle and counterexample validation).
    #[must_use]
    pub fn eval(
        &self,
        int_env: &dyn Fn(&str) -> Option<i64>,
        bool_env: &dyn Fn(&str) -> Option<bool>,
    ) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::BoolVar(b) => bool_env(b),
            Formula::Atom(op, l, r) => {
                let (a, b) = (l.eval(int_env)?, r.eval(int_env)?);
                Some(match op {
                    Cmp::Le => a <= b,
                    Cmp::Lt => a < b,
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    Cmp::Ge => a >= b,
                    Cmp::Gt => a > b,
                })
            }
            Formula::Not(f) => f.eval(int_env, bool_env).map(|v| !v),
            Formula::And(fs) => {
                let mut acc = true;
                for f in fs {
                    acc &= f.eval(int_env, bool_env)?;
                }
                Some(acc)
            }
            Formula::Or(fs) => {
                let mut acc = false;
                for f in fs {
                    acc |= f.eval(int_env, bool_env)?;
                }
                Some(acc)
            }
            Formula::Implies(a, b) => {
                Some(!a.eval(int_env, bool_env)? || b.eval(int_env, bool_env)?)
            }
        }
    }

    /// Substitutes `term` for every occurrence of integer variable `var`.
    #[must_use]
    pub fn subst(&self, var: &str, term: &Term) -> Formula {
        fn subst_term(t: &Term, var: &str, repl: &Term) -> Term {
            match t {
                Term::Int(n) => Term::Int(*n),
                Term::Var(v) if v == var => repl.clone(),
                Term::Var(v) => Term::Var(v.clone()),
                Term::Add(a, b) => Term::Add(
                    Box::new(subst_term(a, var, repl)),
                    Box::new(subst_term(b, var, repl)),
                ),
                Term::Sub(a, b) => Term::Sub(
                    Box::new(subst_term(a, var, repl)),
                    Box::new(subst_term(b, var, repl)),
                ),
                Term::Scale(k, t) => Term::Scale(*k, Box::new(subst_term(t, var, repl))),
            }
        }
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::BoolVar(b) => Formula::BoolVar(b.clone()),
            Formula::Atom(op, l, r) => {
                Formula::Atom(*op, subst_term(l, var, term), subst_term(r, var, term))
            }
            Formula::Not(f) => Formula::not(f.subst(var, term)),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.subst(var, term)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.subst(var, term)).collect()),
            Formula::Implies(a, b) => Formula::implies(a.subst(var, term), b.subst(var, term)),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::BoolVar(b) => write!(f, "{b}"),
            Formula::Atom(op, l, r) => write!(f, "{l} {op} {r}"),
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} ==> {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_xy(x: i64, y: i64) -> impl Fn(&str) -> Option<i64> {
        move |v| match v {
            "x" => Some(x),
            "y" => Some(y),
            _ => None,
        }
    }

    #[test]
    fn term_evaluation() {
        let t = Term::Add(
            Box::new(Term::Scale(3, Box::new(Term::var("x")))),
            Box::new(Term::Sub(Box::new(Term::var("y")), Box::new(Term::Int(2)))),
        );
        assert_eq!(t.eval(&env_xy(4, 10)), Some(20));
    }

    #[test]
    fn eval_detects_overflow() {
        let t = Term::Scale(i64::MAX, Box::new(Term::Int(2)));
        assert_eq!(t.eval(&|_| None), None);
    }

    #[test]
    fn formula_evaluation_covers_all_ops() {
        let x_le_y = Formula::cmp(Cmp::Le, Term::var("x"), Term::var("y"));
        let be = |_: &str| Some(true);
        assert_eq!(x_le_y.eval(&env_xy(1, 2), &be), Some(true));
        assert_eq!(x_le_y.eval(&env_xy(3, 2), &be), Some(false));
        let f = Formula::implies(
            x_le_y.clone(),
            Formula::cmp(Cmp::Lt, Term::var("x"), Term::var("y")),
        );
        // 2 <= 2 but !(2 < 2): implication false.
        assert_eq!(f.eval(&env_xy(2, 2), &be), Some(false));
    }

    #[test]
    fn collect_vars_finds_everything() {
        let f = Formula::and(
            Formula::cmp(Cmp::Eq, Term::var("a"), Term::Int(1)),
            Formula::or(
                Formula::BoolVar("p".into()),
                Formula::cmp(Cmp::Lt, Term::var("b"), Term::var("a")),
            ),
        );
        let mut ints = BTreeSet::new();
        let mut bools = BTreeSet::new();
        f.collect_vars(&mut ints, &mut bools);
        assert_eq!(ints.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(bools.into_iter().collect::<Vec<_>>(), vec!["p"]);
    }

    #[test]
    fn substitution_replaces_in_atoms() {
        let f = Formula::cmp(Cmp::Le, Term::var("x"), Term::Int(5));
        let g = f.subst(
            "x",
            &Term::Add(Box::new(Term::var("y")), Box::new(Term::Int(1))),
        );
        assert_eq!(g.to_string(), "(y + 1) <= 5");
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::implies(
            Formula::cmp(Cmp::Ge, Term::var("n"), Term::Int(0)),
            Formula::cmp(Cmp::Lt, Term::var("i"), Term::var("n")),
        );
        assert_eq!(f.to_string(), "(n >= 0 ==> i < n)");
    }
}
