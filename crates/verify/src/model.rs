//! Counterexample models returned by the solver.

use std::collections::BTreeMap;
use std::fmt;

/// A concrete assignment to integer and Boolean variables.
///
/// Returned when a formula is satisfiable (or, for validity checks, as the
/// counterexample that falsifies the property) — the artifact that makes a
/// constraint checker *usable*: "here are inputs that break your invariant".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    /// Integer variable values.
    pub ints: BTreeMap<String, i64>,
    /// Boolean variable values.
    pub bools: BTreeMap<String, bool>,
}

impl Model {
    /// An empty model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an integer variable, defaulting to 0 for variables the
    /// solver never needed to constrain.
    #[must_use]
    pub fn int(&self, name: &str) -> i64 {
        self.ints.get(name).copied().unwrap_or(0)
    }

    /// Looks up a Boolean variable, defaulting to `false`.
    #[must_use]
    pub fn bool(&self, name: &str) -> bool {
        self.bools.get(name).copied().unwrap_or(false)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.ints {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
            first = false;
        }
        for (k, v) in &self.bools {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
            first = false;
        }
        if first {
            write!(f, "(empty model)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero_and_false() {
        let m = Model::new();
        assert_eq!(m.int("x"), 0);
        assert!(!m.bool("p"));
    }

    #[test]
    fn display_lists_assignments() {
        let mut m = Model::new();
        m.ints.insert("x".into(), 3);
        m.bools.insert("p".into(), true);
        assert_eq!(m.to_string(), "x = 3, p = true");
    }

    #[test]
    fn empty_model_displays_placeholder() {
        assert_eq!(Model::new().to_string(), "(empty model)");
    }
}
