//! syscheck models of the balancer's ejection path against the cross-shard
//! conntrack gauge.
//!
//! A backend death verdict makes a shard walk its slab and remove every
//! flow assigned to the dead backend — each removal `uncharge`s the shared
//! [`ConntrackShared`] gauge while sibling shards are still `try_charge`ing
//! new assignments into the freed headroom. NAT pairs make the boundary
//! sharper than plain flows: one assignment charges *two* slots (flow +
//! twin) with a rollback path when only one fits. The obligations: the
//! gauge never overshoots its cap or underflows on any interleaving, a
//! failed pair insert never leaks a half-charge, and a full teardown
//! zeroes the gauge exactly.

use std::sync::Arc;
use syscheck::shim::spawn_named;
use syscheck::Config;
use sysnet::conntrack::{ConntrackConfig, EvictCause, FlowState, NatRewrite};
use sysnet::{Conntrack, ConntrackShared, FlowKey};

const VIP: u32 = 0x0AC8_0001; // 10.200.0.1

fn backend_ip(b: u16) -> u32 {
    0x0A32_000A + u32::from(b) // 10.50.0.10 + b
}

/// The twin keys and rewrite tuple of one balanced flow, distinct per
/// (shard, flow) so the two workers never collide on a canonical key.
fn assignment(shard: u32, flow: u32, b: u16) -> (FlowKey, FlowKey, NatRewrite) {
    let client = 0x0A09_0000 | shard << 8 | flow;
    let cport = 40_000 + flow as u16;
    let orig = FlowKey::canonical(client, VIP, cport, 80, 6);
    let reply = FlowKey::canonical(client, backend_ip(b), cport, 8_080, 6);
    let nat = NatRewrite {
        client_ip: client,
        client_port: cport,
        vip: VIP,
        vport: 80,
        backend_ip: backend_ip(b),
        backend_port: 8_080,
        backend: b,
    };
    (orig, reply, nat)
}

/// Two shards assign NAT pairs into a cap-4 gauge (demand exceeds supply,
/// so pair-insert rollbacks race sibling charges at the boundary), then
/// each takes a backend-1 death verdict and reassigns into the freed
/// headroom, then tears everything down by sweep. Every schedule must keep
/// the gauge capped, whole-pair, and zero-sum.
fn eject_model() -> u64 {
    let shared = Arc::new(ConntrackShared::new(4));
    let cfg = ConntrackConfig {
        max_flows: 8,
        syn_backlog: 4,
        sweep_batch: 16,
        ..ConntrackConfig::default()
    };
    let handles: Vec<_> = (0..2u32)
        .map(|t| {
            let s = Arc::clone(&shared);
            spawn_named(&format!("worker-{t}"), move || {
                let mut ct = Conntrack::new(cfg).with_shared(Arc::clone(&s));
                // Three assignments alternating backends 0, 1, 0: six slots
                // wanted against a cap of four. Shed (FlowTableFull) is a
                // legal answer; a leaked half-charge is not.
                for f in 0..3u32 {
                    let (orig, reply, nat) = assignment(t, f, (f % 2) as u16);
                    let _ = ct.insert_nat(&orig, &reply, nat, FlowState::Established, 1_000);
                    assert!(s.live() <= s.limit(), "gauge overshot its cap");
                    ct.check_invariants().expect("audit after assign");
                }
                // The health prober's death verdict on backend 1: eject
                // every flow assigned to it, twins included, releasing
                // headroom sibling shards may claim mid-walk.
                let freed = ct.eject_backend(1, EvictCause::BackendDead);
                assert_eq!(freed % 2, 0, "ejection removes whole pairs");
                ct.check_invariants().expect("audit after ejection");
                // A retrying client reassigns onto the surviving backend.
                let (orig, reply, nat) = assignment(t, 7, 0);
                let _ = ct.insert_nat(&orig, &reply, nat, FlowState::Established, 2_000);
                assert!(s.live() <= s.limit(), "gauge overshot after ejection");
                // Teardown: reap everything by timeout.
                ct.sweep(u64::MAX / 2);
                assert_eq!(ct.len(), 0, "sweep must reap every entry");
                ct.check_invariants().expect("audit after sweep");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(
        shared.live(),
        0,
        "ejected and swept shards must zero the gauge"
    );
    shared.live() * 10 + shared.limit()
}

#[test]
fn checker_ejection_conserves_the_gauge_under_random_schedules() {
    let cfg = Config {
        max_schedules: 300,
        ..Config::default()
    };
    let ex = syscheck::explore_random(&cfg, 0x1B_E7EC7, eject_model);
    assert!(
        ex.failure.is_none(),
        "a schedule broke the ejection/charge protocol: {:?}",
        ex.failure
    );
    assert_eq!(ex.schedules, 300);
    assert_eq!(ex.distinct_states, 1, "terminal digest must not vary");
}

#[test]
fn checker_ejection_dfs_prefix_finds_no_failure() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, eject_model);
    assert!(
        ex.failure.is_none(),
        "DFS prefix broke the ejection path: {:?}",
        ex.failure
    );
    assert!(ex.schedules > 0);
}
