//! Differential property tests: the binary trie against the linear-scan
//! reference.
//!
//! The [`sysnet::LinearTable`] is correct by inspection — every lookup
//! filters all routes and keeps the longest match. Any divergence between
//! it and the trie on the same operation sequence is a trie bug. The
//! generated tables deliberately pile up overlapping prefixes (nested /8 →
//! /16 → /24 ladders, duplicate canonical keys from unmasked spellings,
//! the /0 default route) because those are exactly the shapes the trie's
//! best-match tracking and canonicalization can get wrong.

use proptest::prelude::*;
use sysnet::{LinearTable, TrieTable};

/// One route-table operation, chosen by proptest.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a (possibly unmasked, possibly duplicate-canonical) route.
    Insert { prefix: u32, len: u8, hop: u16 },
    /// Remove by a (possibly unmasked) spelling.
    Remove { prefix: u32, len: u8 },
}

/// Prefix lengths concentrated on realistic values but covering 0..=32.
fn arb_len() -> impl Strategy<Value = u8> {
    prop_oneof![
        4 => prop_oneof![Just(8u8), Just(16u8), Just(24u8), Just(32u8)],
        2 => 0u8..=32,
    ]
}

/// Addresses and prefixes drawn from a small pool of high octets so that
/// routes overlap and lookups actually hit nested prefixes, plus a stream
/// of fully arbitrary values.
fn arb_addr() -> impl Strategy<Value = u32> {
    prop_oneof![
        4 => (0u32..4, any::<u32>())
            .prop_map(|(hi, lo)| ((10 + hi) << 24) | (lo & 0x00FF_FFFF)),
        1 => any::<u32>(),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_addr(), arb_len(), any::<u16>())
            .prop_map(|(prefix, len, hop)| Op::Insert { prefix, len, hop }),
        1 => (arb_addr(), arb_len()).prop_map(|(prefix, len)| Op::Remove { prefix, len }),
    ]
}

/// Applies the same op sequence to both tables, asserting that every
/// operation's return value agrees.
fn build_both(ops: &[Op]) -> (TrieTable<u16>, LinearTable<u16>) {
    let mut trie = TrieTable::new();
    let mut linear = LinearTable::new();
    for op in ops {
        match *op {
            Op::Insert { prefix, len, hop } => {
                let a = trie.insert(prefix, len, hop);
                let b = linear.insert(prefix, len, hop);
                assert_eq!(a, b, "insert {prefix:#010x}/{len} disagreed");
            }
            Op::Remove { prefix, len } => {
                let a = trie.remove(prefix, len);
                let b = linear.remove(prefix, len);
                assert_eq!(a, b, "remove {prefix:#010x}/{len} disagreed");
            }
        }
    }
    (trie, linear)
}

proptest! {
    /// The headline property: after an arbitrary insert/remove history,
    /// both tables give the same answer for arbitrary addresses — including
    /// addresses derived from the installed prefixes themselves (prefix
    /// base, broadcast-end, and a mutated-host-bits probe for each route).
    #[test]
    fn trie_agrees_with_linear_reference(
        ops in proptest::collection::vec(arb_op(), 1..60),
        probes in proptest::collection::vec(arb_addr(), 1..40),
    ) {
        let (trie, linear) = build_both(&ops);
        prop_assert_eq!(trie.len(), linear.len());
        for &addr in &probes {
            prop_assert_eq!(trie.lookup(addr), linear.lookup(addr));
        }
        for op in &ops {
            let Op::Insert { prefix, len, .. } = *op else { continue };
            let m = sysnet::lpm::mask(len);
            for addr in [prefix & m, prefix | !m, (prefix & m) ^ 1] {
                prop_assert_eq!(trie.lookup(addr), linear.lookup(addr));
            }
        }
    }

    /// A dense overlapping ladder: every address under 10/8 must resolve to
    /// the deepest installed covering prefix, in both tables.
    #[test]
    fn nested_ladders_resolve_to_deepest_cover(
        host in any::<u32>(),
        default_route in any::<bool>(),
    ) {
        let mut trie = TrieTable::new();
        let mut linear = LinearTable::new();
        let ladder: [(u32, u8, u16); 4] = [
            (10 << 24, 8, 1),
            ((10 << 24) | (1 << 16), 16, 2),
            ((10 << 24) | (1 << 16) | (2 << 8), 24, 3),
            ((10 << 24) | (1 << 16) | (2 << 8) | 9, 32, 4),
        ];
        for (prefix, len, hop) in ladder {
            trie.insert(prefix, len, hop).unwrap();
            linear.insert(prefix, len, hop).unwrap();
        }
        if default_route {
            trie.insert(0, 0, 99).unwrap();
            linear.insert(0, 0, 99).unwrap();
        }
        let addr = (10 << 24) | (host & 0x00FF_FFFF);
        let got = trie.lookup(addr);
        prop_assert_eq!(got, linear.lookup(addr));
        prop_assert!(got.is_some(), "everything under 10/8 is covered");
        let outside = host | 0x8000_0000; // 128.0.0.0/1: never under 10/8
        prop_assert_eq!(trie.lookup(outside), linear.lookup(outside));
        prop_assert_eq!(trie.lookup(outside).is_some(), default_route);
    }

    /// Removing every inserted route (by an arbitrary, possibly unmasked
    /// spelling) leaves both tables empty and answering `None`.
    #[test]
    fn removal_drains_both_tables(
        routes in proptest::collection::vec((arb_addr(), arb_len(), any::<u16>()), 1..40),
        probe in any::<u32>(),
    ) {
        let ops: Vec<Op> =
            routes.iter().map(|&(prefix, len, hop)| Op::Insert { prefix, len, hop }).collect();
        let (mut trie, mut linear) = build_both(&ops);
        for &(prefix, len, _) in &routes {
            // Remove via a different unmasked spelling of the same route.
            let spelling = prefix | (!sysnet::lpm::mask(len) & 0x0055_5555);
            let a = trie.remove(spelling, len);
            let b = linear.remove(spelling, len);
            prop_assert_eq!(a, b);
        }
        prop_assert!(trie.is_empty());
        prop_assert!(linear.is_empty());
        prop_assert_eq!(trie.lookup(probe), None);
    }
}
