//! syscheck models of copy-on-write route publication.
//!
//! The sequential story ("a COW table behaves exactly like the exclusive
//! trie") is the proptest in `cache_properties.rs`. These models check the
//! concurrent half on the cooperative scheduler, where every shim atomic —
//! the root swap, the publication counter, the epoch pins under the reads —
//! is a scheduling decision point:
//!
//! * **publication visibility** — the satellite obligation verbatim: a
//!   published update is visible to the *next* pinned read. The writer
//!   publishes and then raises a shim flag; any reader that observes the
//!   flag and pins afterwards must see the new route, because the root
//!   store is sequenced before the flag store and the pin's root load after
//!   the flag load. No schedule may show the stale hop past the flag.
//! * **snapshot isolation** — the dual: a view pinned *before* doing any
//!   lookups observes exactly one table version across multiple reads, even
//!   mid-publication. Readers never see a half-built spine.
//!
//! Routes use one-bit prefixes so the spine is two nodes deep and the DFS
//! tree stays small enough for a meaningful bounded search.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use syscheck::shim::AtomicBool;
use syscheck::Config;
use sysnet::{CowRouteTable, Routes};

/// `0.0.0.0/1` — matches any address with the top bit clear.
const PREFIX: u32 = 0;
const LEN: u8 = 1;
const ADDR: u32 = 0x0BAD_CAFE & 0x7FFF_FFFF;

/// Writer re-points the /1 route from hop 1 to hop 2 and raises the flag;
/// the main thread samples the flag, then pins. Flag observed ⇒ the new
/// hop is the only acceptable answer.
fn visibility_model() -> u64 {
    let table: Arc<CowRouteTable<u16>> = Arc::new(CowRouteTable::new());
    table.insert(PREFIX, LEN, 1).unwrap();
    let reader = table.reader();
    let published = Arc::new(AtomicBool::new(false));

    let (t, p) = (Arc::clone(&table), Arc::clone(&published));
    let writer = syscheck::shim::spawn(move || {
        t.insert(PREFIX, LEN, 2).unwrap();
        p.store(true, Ordering::SeqCst);
    });

    let saw_publication = published.load(Ordering::SeqCst);
    let view = reader.pin();
    let hop = view.lookup(ADDR);
    if saw_publication {
        assert_eq!(
            hop,
            Some(2),
            "published update invisible to the next pinned read"
        );
    } else {
        assert!(
            hop == Some(1) || hop == Some(2),
            "reader saw a torn table: {hop:?}"
        );
    }
    drop(view);
    writer.join().unwrap();

    assert_eq!(table.publications(), 2, "exactly two publications");
    u64::from(saw_publication) << 8 | u64::from(hop.unwrap_or(0))
}

/// A view pinned before its first lookup reads the same version twice,
/// no matter where the concurrent publication lands between the reads.
fn snapshot_model() -> u64 {
    let table: Arc<CowRouteTable<u16>> = Arc::new(CowRouteTable::new());
    table.insert(PREFIX, LEN, 1).unwrap();
    let reader = table.reader();

    let t = Arc::clone(&table);
    let writer = syscheck::shim::spawn(move || {
        t.insert(PREFIX, LEN, 2).unwrap();
    });

    let view = reader.pin();
    let first = view.lookup(ADDR);
    let second = view.lookup(ADDR);
    assert_eq!(
        first, second,
        "a pinned view changed versions between lookups"
    );
    assert!(
        first == Some(1) || first == Some(2),
        "torn table: {first:?}"
    );
    drop(view);
    writer.join().unwrap();
    u64::from(first.unwrap_or(0))
}

#[test]
fn checker_published_update_visible_to_next_pinned_read() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, visibility_model);
    assert!(
        ex.failure.is_none(),
        "a schedule hid a published route from a later pin: {:?}",
        ex.failure
    );
    assert!(
        ex.complete,
        "visibility model must be exhaustive at preemption bound 2 \
         ({} schedules ran)",
        ex.schedules
    );
}

#[test]
fn checker_visibility_holds_under_random_schedules() {
    let cfg = Config {
        max_schedules: 500,
        ..Config::default()
    };
    let ex = syscheck::explore_random(&cfg, 0xC0DE_0E15, visibility_model);
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert_eq!(ex.schedules, 500);
}

#[test]
fn checker_pinned_view_is_a_frozen_snapshot() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, snapshot_model);
    assert!(
        ex.failure.is_none(),
        "a pinned view tore mid-publication: {:?}",
        ex.failure
    );
    assert!(ex.complete, "snapshot model must be exhaustive");
    // Both hops are legitimate terminal states (pin before vs after the
    // publication); more than two would mean a third, torn, version.
    assert!(
        ex.distinct_states <= 2,
        "torn state: {}",
        ex.distinct_states
    );
}
