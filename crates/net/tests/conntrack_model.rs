//! syscheck models of the conntrack cross-shard charge protocol.
//!
//! Every worker shard charges one [`ConntrackShared`] gauge before
//! inserting and uncharges on every removal. The protocol obligations are
//! small and sharp: the gauge never exceeds its cap — not even transiently,
//! which is why `try_charge` is a CAS loop and not a blind
//! `fetch_add`-then-undo — it never underflows, and when every shard has
//! torn down its entries the gauge reads exactly zero. The gauge runs on
//! the `syscheck` shim atomics, so these models explore real interleavings
//! of charge / evict-uncharge / teardown races at the cap boundary.

use std::sync::Arc;
use syscheck::shim::spawn_named;
use syscheck::Config;
use sysnet::conntrack::{ConntrackConfig, TcpSummary};
use sysnet::{Conntrack, ConntrackShared, FlowKey};

/// Two shards hammer a cap-3 gauge with more demand than supply. Each
/// failed charge is answered the way a shard answers it — release one of
/// your own (evict) and retry — and the run ends with a full teardown.
/// The cap and zero-sum properties must hold on every schedule.
fn gauge_model() -> u64 {
    let shared = Arc::new(ConntrackShared::new(3));
    let handles: Vec<_> = (0..2)
        .map(|t| {
            let s = Arc::clone(&shared);
            spawn_named(&format!("shard-{t}"), move || {
                let mut held = 0u64;
                for _ in 0..4 {
                    if s.try_charge() {
                        held += 1;
                    } else if held > 0 {
                        // The shard-side response to a spent gauge: evict
                        // one of your own entries, then retry the charge.
                        s.uncharge();
                        held -= 1;
                        if s.try_charge() {
                            held += 1;
                        }
                    }
                    // The CAS loop's contract: a successful charge can
                    // never be observed above the cap, even mid-race.
                    assert!(s.live() <= s.limit(), "gauge overshot its cap");
                }
                // Cookie-mode entry/exit must balance across any schedule.
                s.set_cookie_shard(true);
                s.set_cookie_shard(false);
                // Teardown: release everything this shard still holds.
                while held > 0 {
                    s.uncharge();
                    held -= 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("shard panicked");
    }
    assert_eq!(shared.live(), 0, "teardown must zero the gauge");
    assert_eq!(shared.cookie_shards(), 0, "cookie gauge must balance");
    shared.live() * 100 + shared.cookie_shards() * 10 + shared.limit()
}

/// The same protocol driven through real [`Conntrack`] shards: two workers
/// admit more flows than the shared cap allows, then reap everything by
/// timeout sweep. Structure audits and the zero-sum gauge must survive
/// every interleaving of the insert/evict/uncharge traffic.
fn shard_model() -> u64 {
    let shared = Arc::new(ConntrackShared::new(3));
    let cfg = ConntrackConfig {
        max_flows: 4,
        syn_backlog: 2,
        sweep_batch: 16,
        ..ConntrackConfig::default()
    };
    let handles: Vec<_> = (0..2)
        .map(|t| {
            let s = Arc::clone(&shared);
            spawn_named(&format!("worker-{t}"), move || {
                let mut ct = Conntrack::new(cfg).with_shared(s);
                let syn = TcpSummary {
                    syn: true,
                    ..TcpSummary::default()
                };
                for f in 0..4u32 {
                    let key = FlowKey::canonical(
                        0xAC10_0000 | (t as u32) << 8 | f,
                        0x0A00_0001,
                        40_000,
                        443,
                        6,
                    );
                    // Shed (FlowTableFull) is a legal answer; corruption
                    // is not.
                    let _ = ct.admit_tcp(&key, syn, 1_000);
                    ct.check_invariants().expect("audit after admit");
                }
                // Reap everything by timeout, however much was admitted.
                ct.sweep(u64::MAX / 2);
                ct.check_invariants().expect("audit after sweep");
                assert_eq!(ct.len(), 0, "sweep must reap every entry");
                ct.stats().flows_created
            })
        })
        .collect();
    let created: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .sum();
    assert_eq!(shared.live(), 0, "reaped shards must zero the gauge");
    assert!(created <= 8, "more creations than SYNs offered");
    // The digest folds only schedule-independent facts: the gauge zeroes
    // out and at least cap-many creations succeeded in total (the gauge
    // admits 3 concurrently; eviction-retry can admit more over time).
    assert!(created >= 3, "the cap's worth of flows must get in");
    shared.live() * 10 + shared.cookie_shards()
}

#[test]
fn checker_gauge_holds_cap_under_random_schedules() {
    let cfg = Config {
        max_schedules: 400,
        ..Config::default()
    };
    let ex = syscheck::explore_random(&cfg, 0xC7_C4A6E, gauge_model);
    assert!(
        ex.failure.is_none(),
        "a schedule broke the charge protocol: {:?}",
        ex.failure
    );
    assert_eq!(ex.schedules, 400);
    assert_eq!(ex.distinct_states, 1, "terminal digest must not vary");
}

#[test]
fn checker_gauge_dfs_prefix_finds_no_failure() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 300,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, gauge_model);
    assert!(
        ex.failure.is_none(),
        "DFS prefix broke the gauge: {:?}",
        ex.failure
    );
    assert!(ex.schedules > 0);
}

#[test]
fn checker_shards_conserve_the_gauge_under_random_schedules() {
    let cfg = Config {
        max_schedules: 200,
        ..Config::default()
    };
    let ex = syscheck::explore_random(&cfg, 0x005E_EDC7, shard_model);
    assert!(
        ex.failure.is_none(),
        "a schedule corrupted a shard or the gauge: {:?}",
        ex.failure
    );
    assert_eq!(ex.distinct_states, 1, "terminal digest must not vary");
}

#[test]
fn checker_shard_failures_replay_by_seed() {
    let cfg = Config::default();
    let a = syscheck::replay_seed(&cfg, 0xD16E57, shard_model);
    let b = syscheck::replay_seed(&cfg, 0xD16E57, shard_model);
    assert!(a.failure.is_none() && b.failure.is_none());
    assert_eq!(a.digest, b.digest);
    assert!(a.digest.is_some());
}
