//! Adversarial property tests for the conntrack flow table.
//!
//! The table's intrusive structure (slab + per-state recency lists + hash
//! chains + free list) has exactly the pointer-soup shape the paper says
//! systems code cannot avoid — so it gets the LangSec treatment: arbitrary
//! segment sequences, hostile flag combinations, time jumps past every
//! timeout, and sweeps at random moments, with [`Conntrack::check_invariants`]
//! auditing the whole structure along the way. A differential property
//! pins the zero-copy frame path ([`route_frame_tracked`]) to the direct
//! [`Conntrack::admit_tcp`] summary path: same inputs, same verdicts, same
//! final table.

use proptest::prelude::*;
use sysnet::conntrack::{EvictCause, FlowState, NatRewrite, TcpSummary};
use sysnet::lpm::TrieTable;
use sysnet::pipeline::route_frame_tracked;
use sysnet::{Conntrack, ConntrackConfig, FlowKey};
use sysrepr::packet::{PacketBuilder, IPPROTO_TCP, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN};

/// One adversarial step against the table.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a segment for the keyed flow.
    Segment {
        /// Index into the small endpoint pool (collisions guaranteed).
        flow: usize,
        /// Reverse the direction (same canonical key, swapped endpoints).
        reverse: bool,
        flags: u8,
        /// `None` = echo the shard's cookie + 1 (a well-behaved client);
        /// `Some(n)` = an arbitrary, usually wrong, acknowledgment.
        ack_no: Option<u32>,
    },
    /// Advance virtual time.
    Tick { ns: u64 },
    /// Run the watchdog sweep now.
    Sweep,
}

/// A small endpoint pool: collisions, bidirectional traffic, and enough
/// distinct flows to overflow an 8-entry table.
fn endpoints(flow: usize) -> (u32, u32, u16, u16) {
    let f = flow % 24;
    let src = u32::from_be_bytes([172, 16, 0, (f % 6) as u8]);
    let dst = u32::from_be_bytes([10, 0, 0, (f / 6) as u8]);
    (src, dst, 40_000 + (f % 4) as u16, 443)
}

fn key_of(flow: usize) -> FlowKey {
    let (src, dst, sport, dport) = endpoints(flow);
    FlowKey::canonical(src, dst, sport, dport, IPPROTO_TCP)
}

fn arb_flags() -> impl Strategy<Value = u8> {
    prop_oneof![
        3 => Just(TCP_SYN),
        3 => Just(TCP_ACK),
        2 => Just(TCP_SYN | TCP_ACK),
        1 => Just(TCP_FIN | TCP_ACK),
        1 => Just(TCP_RST),
        1 => Just(TCP_FIN),
        1 => any::<u8>(),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0usize..24, any::<bool>(), arb_flags(), prop_oneof![
                2 => Just(None),
                1 => any::<u32>().prop_map(Some),
            ])
            .prop_map(|(flow, reverse, flags, ack_no)| Op::Segment { flow, reverse, flags, ack_no }),
        2 => (0u64..3_000_000_000).prop_map(|ns| Op::Tick { ns }),
        1 => Just(Op::Sweep),
    ]
}

fn tiny_config(defense: bool) -> ConntrackConfig {
    ConntrackConfig {
        max_flows: 8,
        syn_backlog: 3,
        sweep_batch: 4,
        overload_defense: defense,
        ..ConntrackConfig::default()
    }
}

fn summary_of(flags: u8, ack_no: u32) -> TcpSummary {
    TcpSummary {
        syn: flags & TCP_SYN != 0,
        ack: flags & TCP_ACK != 0,
        fin: flags & TCP_FIN != 0,
        rst: flags & TCP_RST != 0,
        ack_no,
    }
}

proptest! {
    /// Any op sequence leaves the intrusive structure sound: no panics,
    /// bounds hold after every step, and the full structural audit passes
    /// at every sweep and at the end. Runs with the defense both on and
    /// off, since the two modes take disjoint eviction paths.
    #[test]
    fn hostile_segments_never_break_the_structure(
        ops in proptest::collection::vec(arb_op(), 1..200),
        defense in any::<bool>(),
    ) {
        let cfg = tiny_config(defense);
        let mut ct = Conntrack::new(cfg);
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Segment { flow, reverse, flags, ack_no } => {
                    let key = key_of(flow);
                    let ack = ack_no.unwrap_or_else(|| ct.cookie(&key).wrapping_add(1));
                    // reverse shares the canonical key by construction.
                    let _ = reverse;
                    let _ = ct.admit_tcp(&key, summary_of(flags, ack), now);
                }
                Op::Tick { ns } => now += ns,
                Op::Sweep => {
                    ct.sweep(now);
                    ct.check_invariants().expect("audit after sweep");
                }
            }
            prop_assert!(ct.len() <= cfg.max_flows, "len {} > cap", ct.len());
            prop_assert!(ct.half_open_len() <= ct.len());
            if defense {
                prop_assert!(
                    ct.half_open_len() <= cfg.syn_backlog,
                    "backlog breached: {} > {}",
                    ct.half_open_len(),
                    cfg.syn_backlog
                );
            }
        }
        ct.check_invariants().expect("final audit");
        // Stats conservation: everything created (cookie establishments
        // included — `insert` counts them too) was either removed or is
        // still live.
        let s = ct.stats();
        prop_assert_eq!(s.flows_created, s.removed_total() + ct.len() as u64);
        prop_assert!(s.cookie_established <= s.flows_created);
    }

    /// With the defense on, overload never cannibalizes established flows:
    /// the naive-LRU eviction cause stays at zero no matter the traffic.
    #[test]
    fn defense_never_evicts_established_flows(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut ct = Conntrack::new(tiny_config(true));
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Segment { flow, flags, ack_no, .. } => {
                    let key = key_of(flow);
                    let ack = ack_no.unwrap_or_else(|| ct.cookie(&key).wrapping_add(1));
                    let _ = ct.admit_tcp(&key, summary_of(flags, ack), now);
                }
                Op::Tick { ns } => now += ns,
                Op::Sweep => { ct.sweep(now); }
            }
            prop_assert_eq!(
                ct.stats().removed[EvictCause::Lru as usize], 0,
                "defense-on run took the naive-LRU eviction path"
            );
        }
    }

    /// Differential: the zero-copy frame path and the direct summary path
    /// agree packet by packet — same admit/shed verdicts, same live set,
    /// same counters. Catches key-canonicalization or parse drift between
    /// `route_frame_tracked` and `admit_tcp`.
    #[test]
    fn frame_path_matches_summary_path(
        ops in proptest::collection::vec(arb_op(), 1..120),
        defense in any::<bool>(),
    ) {
        let cfg = tiny_config(defense);
        let mut by_frame = Conntrack::new(cfg);
        let mut by_summary = Conntrack::new(cfg);
        let mut table = TrieTable::new();
        table.insert(0, 0, 1u16).unwrap();
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Segment { flow, reverse, flags, ack_no } => {
                    let (mut src, mut dst, mut sport, mut dport) = endpoints(flow);
                    if reverse {
                        std::mem::swap(&mut src, &mut dst);
                        std::mem::swap(&mut sport, &mut dport);
                    }
                    let key = FlowKey::canonical(src, dst, sport, dport, IPPROTO_TCP);
                    let ack = ack_no.unwrap_or_else(|| by_frame.cookie(&key).wrapping_add(1));
                    let mut frame = PacketBuilder::tcp()
                        .src_ip(src.to_be_bytes())
                        .dst_ip(dst.to_be_bytes())
                        .src_port(sport)
                        .dst_port(dport)
                        .tcp_flags(flags)
                        .ack_no(ack)
                        .build();
                    let via_frame =
                        route_frame_tracked(&mut frame, &table, None, &mut by_frame, now)
                            .map(|_| ());
                    let via_summary = by_summary.admit_tcp(&key, summary_of(flags, ack), now);
                    prop_assert_eq!(via_frame, via_summary, "paths disagree on a packet");
                }
                Op::Tick { ns } => now += ns,
                Op::Sweep => {
                    by_frame.sweep(now);
                    by_summary.sweep(now);
                }
            }
        }
        prop_assert_eq!(by_frame.len(), by_summary.len());
        prop_assert_eq!(by_frame.half_open_len(), by_summary.half_open_len());
        prop_assert_eq!(by_frame.cookie_mode(), by_summary.cookie_mode());
        prop_assert_eq!(by_frame.stats(), by_summary.stats());
        by_frame.check_invariants().expect("frame-path audit");
        by_summary.check_invariants().expect("summary-path audit");
    }
}

/// One adversarial step against a hairpinned NAT pair.
#[derive(Debug, Clone, Copy)]
enum HairpinOp {
    /// A segment arriving under the client↔VIP key (`false`) or the
    /// self-loop client↔backend key (`true`).
    Segment {
        by_reply: bool,
        flags: u8,
        ack_no: u32,
    },
    /// Advance virtual time.
    Tick { ns: u64 },
    /// Run the watchdog sweep now.
    Sweep,
    /// Re-install the pair if a teardown removed it (the balancer would on
    /// the client's next VIP SYN).
    Reinsert,
    /// The balancer's eject path for the assigned backend.
    Eject,
}

fn arb_hairpin_op() -> impl Strategy<Value = HairpinOp> {
    prop_oneof![
        6 => (any::<bool>(), arb_flags(), any::<u32>()).prop_map(|(by_reply, flags, ack_no)| {
            HairpinOp::Segment { by_reply, flags, ack_no }
        }),
        2 => (1u64..30_000_000_000).prop_map(|ns| HairpinOp::Tick { ns }),
        1 => Just(HairpinOp::Sweep),
        1 => Just(HairpinOp::Reinsert),
        1 => Just(HairpinOp::Eject),
    ]
}

proptest! {
    /// Hairpin: the backend host dials its own VIP, so the post-rewrite
    /// (reply) tuple is a self-loop on one host and shares its endpoints
    /// with the pre-rewrite key's client half. Under arbitrary segments by
    /// either key, time jumps, sweeps, teardowns, and backend ejections,
    /// the twins live and die strictly together — never a half-pair — and
    /// the rewrite tuple reads identically through both keys.
    #[test]
    fn hairpin_twins_stay_in_lockstep(
        ops in proptest::collection::vec(arb_hairpin_op(), 1..120),
        defense in any::<bool>(),
    ) {
        let backend_host = u32::from_be_bytes([10, 50, 0, 2]);
        let vip = u32::from_be_bytes([10, 200, 0, 1]);
        let orig = FlowKey::canonical(backend_host, vip, 7_777, 80, IPPROTO_TCP);
        let reply =
            FlowKey::canonical(backend_host, backend_host, 7_777, 8_080, IPPROTO_TCP);
        let nat = NatRewrite {
            client_ip: backend_host,
            client_port: 7_777,
            vip,
            vport: 80,
            backend_ip: backend_host,
            backend_port: 8_080,
            backend: 7,
        };
        let mut ct = Conntrack::new(tiny_config(defense));
        ct.insert_nat(&orig, &reply, nat, FlowState::Established, 0)
            .expect("pair fits an empty table");
        let mut now = 0u64;
        for op in &ops {
            match *op {
                HairpinOp::Segment { by_reply, flags, ack_no } => {
                    let key = if by_reply { reply } else { orig };
                    // create=false is the balancer's shed semantics: only a
                    // VIP assignment may create flows on this path.
                    if let Ok(got) = ct.admit_tcp_nat(&key, summary_of(flags, ack_no), now, false) {
                        prop_assert_eq!(got, Some(nat), "rewrite tuple drifted");
                    }
                }
                HairpinOp::Tick { ns } => now += ns,
                HairpinOp::Sweep => {
                    ct.sweep(now);
                    ct.check_invariants().expect("audit after sweep");
                }
                HairpinOp::Reinsert => {
                    if !ct.contains(&orig) {
                        ct.insert_nat(&orig, &reply, nat, FlowState::Established, now)
                            .expect("both keys are free after a paired removal");
                    }
                }
                HairpinOp::Eject => {
                    let present = ct.contains(&orig);
                    let freed = ct.eject_backend(nat.backend, EvictCause::BackendDead);
                    prop_assert_eq!(freed, if present { 2 } else { 0 });
                }
            }
            prop_assert_eq!(ct.contains(&orig), ct.contains(&reply), "twin lockstep broken");
            if ct.contains(&orig) {
                prop_assert_eq!(ct.nat_of(&orig), Some(nat));
                prop_assert_eq!(ct.nat_of(&reply), Some(nat));
            }
        }
        ct.check_invariants().expect("final audit");
    }
}
