//! syscheck models of the router's dispatch/recycle hot path.
//!
//! The full router is far too large to explore exhaustively, but the
//! protocol obligations are small: every submitted frame is forwarded or
//! dropped exactly once (conservation), no schedule deadlocks the
//! dispatcher ↔ worker ↔ recycle cycle, and shutdown joins every worker.
//! These models run a tiny configuration (2 workers, batch 1, queue
//! depth 1 — the same worst case as `tiny_queue_and_batch_still_conserve`,
//! which maximizes try_send failures and requeue traffic) under seeded
//! random schedules plus a budgeted DFS prefix.

use syscheck::Config;
use sysnet::lpm::TrieTable;
use sysnet::router::{PortId, RouteMode, RouterConfig, ShardedRouter};
use sysrepr::packet::PacketBuilder;

fn table() -> TrieTable<PortId> {
    let mut t = TrieTable::new();
    t.insert(u32::from_be_bytes([10, 0, 0, 0]), 8, 0).unwrap();
    t.insert(0, 0, 1).unwrap();
    t
}

fn frames() -> Vec<Vec<u8>> {
    (0..4u8)
        .map(|i| {
            let mut b = PacketBuilder::udp()
                .src_ip([172, 16, 0, i])
                .dst_ip([10, i % 2, i, 1])
                .payload(&[0xAB; 16]);
            if i == 3 {
                b = b.corrupt_checksum();
            }
            b.build()
        })
        .collect()
}

/// One full dispatch → process → recycle → shutdown cycle on the
/// cooperative scheduler; the digest encodes the conservation counts, so
/// every terminal state must collapse to one digest no matter the schedule.
fn route_model() -> u64 {
    let cfg = RouterConfig {
        workers: 2,
        batch_size: 1,
        queue_depth: 1,
        cache_slots: 0,
        instrument: false,
        conntrack: None,
        lb: None,
        fault_plan: None,
        // The default mode on purpose: the model then also exercises the
        // per-batch epoch pin against the copy-on-write root.
        route_mode: RouteMode::CowEpoch,
    };
    let mut router = ShardedRouter::start(table(), 2, cfg);
    for frame in frames() {
        router.submit(&frame);
    }
    let report = router.finish();
    let t = &report.stats.totals;
    assert_eq!(t.total_frames(), 4, "router lost or duplicated frames");
    t.forwarded * 100 + t.dropped_total() * 10 + t.per_port.iter().sum::<u64>()
}

#[test]
fn checker_router_conserves_frames_under_random_schedules() {
    let cfg = Config {
        max_schedules: 300,
        ..Config::default()
    };
    let ex = syscheck::explore_random(&cfg, 0xD15BA7C4, route_model);
    assert!(
        ex.failure.is_none(),
        "schedule broke the dispatch/recycle protocol: {:?}",
        ex.failure
    );
    assert_eq!(ex.schedules, 300);
    // Counts are schedule-independent: one terminal state, always.
    assert_eq!(ex.distinct_states, 1, "conservation digest must not vary");
}

#[test]
fn checker_router_dfs_prefix_finds_no_failure() {
    // The state space dwarfs any exhaustive budget; a bounded DFS prefix
    // still covers the preemption-free schedule and its near neighbours,
    // which is where dispatcher-side protocol bugs (lost requeues, recycle
    // deadlocks) would surface first.
    let cfg = Config {
        preemption_bound: 1,
        max_schedules: 200,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, route_model);
    assert!(
        ex.failure.is_none(),
        "DFS prefix broke the router: {:?}",
        ex.failure
    );
    assert!(ex.schedules > 0);
}

#[test]
fn checker_router_failures_replay_by_seed() {
    // The replay contract matters even for passing models: any seed must
    // reproduce its schedule's terminal digest exactly.
    let cfg = Config::default();
    let a = syscheck::replay_seed(&cfg, 0xE13, route_model);
    let b = syscheck::replay_seed(&cfg, 0xE13, route_model);
    assert!(a.failure.is_none() && b.failure.is_none());
    assert_eq!(a.digest, b.digest);
    assert!(a.digest.is_some());
}
