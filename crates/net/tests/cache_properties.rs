//! Differential property tests for the flow cache and the frame pool.
//!
//! The flow cache is an *optimization*: by construction it must never
//! change a routing decision, only skip the trie walk. The differential
//! oracle is therefore the trie itself — for any interleaving of route
//! inserts, removes, and traffic, `FlowCache::lookup_or_route` must return
//! exactly what a direct `TrieTable::lookup` returns at that moment. The
//! generated interleavings concentrate traffic on a small flow pool so
//! cached entries get *hit* after the table changes underneath them —
//! the case the generation counter exists for — and use a tiny cache so
//! direct-mapped collisions and evictions happen constantly.
//!
//! The pool-poisoning tests attack the other new reuse path: recycled
//! frame buffers. A frame written into a recycled buffer must behave
//! identically to one written into a fresh allocation — no stale bytes
//! from the previous tenant may leak into parsing or routing.

use proptest::prelude::*;
use std::sync::Arc;
use sysnet::pipeline::DropReason;
use sysnet::router::{run_stream, RouterConfig, RouterStats};
use sysnet::{CowRouteTable, FlowCache, Routes, TrieTable};
use sysrepr::packet::PacketBuilder;

/// One step of an interleaved table-mutation / traffic history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a route (possibly shadowing or duplicating an earlier one).
    Insert { prefix: u32, len: u8, hop: u16 },
    /// Remove a route by a (possibly unmasked) spelling.
    Remove { prefix: u32, len: u8 },
    /// Route one packet of a flow through the cache.
    Traffic { src: u32, dst: u32 },
}

/// Prefixes drawn from a handful of high octets so routes overlap and
/// traffic actually lands under them.
fn arb_prefix() -> impl Strategy<Value = u32> {
    (0u32..4, any::<u32>()).prop_map(|(hi, lo)| ((10 + hi) << 24) | (lo & 0x00FF_FFFF))
}

fn arb_len() -> impl Strategy<Value = u8> {
    prop_oneof![
        4 => prop_oneof![Just(8u8), Just(16u8), Just(24u8)],
        1 => 0u8..=32,
    ]
}

/// Traffic concentrated on a small flow pool (so the same cache entries
/// are probed again after mutations), with an arbitrary-destination tail.
fn arb_traffic() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u32..8, 0u32..16).prop_map(|(s, d)| Op::Traffic {
            src: 0xAC10_0000 | s,
            dst: (10 << 24) | (d << 16) | 0x99,
        }),
        1 => (any::<u32>(), any::<u32>()).prop_map(|(src, dst)| Op::Traffic { src, dst }),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (arb_prefix(), arb_len(), any::<u16>())
            .prop_map(|(prefix, len, hop)| Op::Insert { prefix, len, hop }),
        1 => (arb_prefix(), arb_len()).prop_map(|(prefix, len)| Op::Remove { prefix, len }),
        5 => arb_traffic(),
    ]
}

proptest! {
    /// The headline property: across arbitrary insert/remove/traffic
    /// interleavings, the cached lookup and the direct trie lookup agree
    /// on every single packet. A stale cache entry surviving a table
    /// mutation, a collision routing to the wrong flow's hop, or a missed
    /// negative-entry invalidation all break this equality.
    #[test]
    fn cached_routing_agrees_with_direct_trie(
        ops in proptest::collection::vec(arb_op(), 1..150),
    ) {
        let mut trie: TrieTable<u16> = TrieTable::new();
        // 8 slots: with 128 possible hot flows, collisions are guaranteed.
        let mut cache = FlowCache::new(8);
        for op in &ops {
            match *op {
                Op::Insert { prefix, len, hop } => { let _ = trie.insert(prefix, len, hop); }
                Op::Remove { prefix, len } => { let _ = trie.remove(prefix, len); }
                Op::Traffic { src, dst } => {
                    prop_assert_eq!(
                        cache.lookup_or_route(&trie, src, dst),
                        trie.lookup(dst),
                        "cache diverged at src {:#010x} dst {:#010x}", src, dst
                    );
                }
            }
        }
    }

    /// Re-probing the same flows after every mutation: each traffic step
    /// probes the *whole* flow pool, so entries cached before a mutation
    /// are guaranteed to be consulted after it.
    #[test]
    fn every_cached_flow_survives_every_mutation(
        mutations in proptest::collection::vec(
            (arb_prefix(), arb_len(), any::<u16>(), any::<bool>()), 1..40),
    ) {
        let mut trie: TrieTable<u16> = TrieTable::new();
        let mut cache = FlowCache::new(16);
        let flows: Vec<(u32, u32)> = (0..24u32)
            .map(|f| (0xAC10_0000 | f, (10 << 24) | ((f % 6) << 16) | f))
            .collect();
        for &(prefix, len, hop, insert) in &mutations {
            if insert {
                let _ = trie.insert(prefix, len, hop);
            } else {
                let _ = trie.remove(prefix, len);
            }
            for &(src, dst) in &flows {
                prop_assert_eq!(cache.lookup_or_route(&trie, src, dst), trie.lookup(dst));
            }
        }
    }

    /// The copy-on-write table is sequentially equivalent to the exclusive
    /// trie: the same op history produces the same lookups for every probed
    /// address, the same canonical route set, and the same change count
    /// (publications == generation — so the cache invalidates identically
    /// over either source). The concurrent half of the story — that a
    /// *pinned* view stays frozen while these mutations land — is the
    /// `syscheck` model in `cowtrie_model.rs`; this property pins down the
    /// functional half with full LPM generality.
    #[test]
    fn cow_publication_is_sequentially_equivalent_to_the_trie(
        ops in proptest::collection::vec(arb_op(), 1..150),
    ) {
        let mut trie: TrieTable<u16> = TrieTable::new();
        let cow: Arc<CowRouteTable<u16>> = Arc::new(CowRouteTable::new());
        let reader = cow.reader();
        let mut cache = FlowCache::new(8);
        for op in &ops {
            match *op {
                Op::Insert { prefix, len, hop } => {
                    prop_assert_eq!(
                        trie.insert(prefix, len, hop).ok(),
                        cow.insert(prefix, len, hop).ok()
                    );
                }
                Op::Remove { prefix, len } => {
                    prop_assert_eq!(
                        trie.remove(prefix, len).ok(),
                        cow.remove(prefix, len).ok()
                    );
                }
                Op::Traffic { src, dst } => {
                    let view = reader.pin();
                    prop_assert_eq!(view.lookup(dst), trie.lookup(dst));
                    // The cache fronting a pinned view agrees with the
                    // bare trie too — the whole-pipeline equivalence.
                    prop_assert_eq!(
                        cache.lookup_or_route(&view, src, dst),
                        trie.lookup(dst),
                        "cow-backed cache diverged at src {:#010x} dst {:#010x}", src, dst
                    );
                }
            }
            prop_assert_eq!(cow.publications(), trie.generation());
            prop_assert_eq!(cow.len(), trie.len());
        }
        let mut a = trie.routes();
        let mut b = cow.routes();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "route sets diverged after the full history");
    }
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

fn table() -> TrieTable<u16> {
    let mut t = TrieTable::new();
    t.insert(ip(10, 0, 0, 0), 8, 0).unwrap();
    t.insert(ip(10, 1, 0, 0), 16, 1).unwrap();
    t.insert(ip(192, 168, 0, 0), 16, 2).unwrap();
    t
}

fn frame(dst: [u8; 4], payload_len: usize) -> Vec<u8> {
    PacketBuilder::udp()
        .src_ip([172, 16, 0, 1])
        .dst_ip(dst)
        .dst_port(4789)
        .payload(&vec![0xEE; payload_len])
        .build()
}

fn run(frames: &[Vec<u8>]) -> RouterStats {
    let config = RouterConfig {
        workers: 2,
        batch_size: 8,
        queue_depth: 2,
        ..RouterConfig::default()
    };
    let (report, _) = run_stream(table(), 3, config, frames);
    report.stats
}

/// Recycled buffers never leak stale bytes: a stream of large routable
/// frames warms the pool with big dirty buffers, then 3-byte runts ride
/// through the same (recycled) buffers. If recycling failed to truncate —
/// leaving the old frame's tail after the runt's bytes — the runts would
/// parse as their buffers' previous tenants and be *forwarded*; instead
/// every one must drop as Malformed.
#[test]
fn recycled_buffers_do_not_resurrect_previous_frames() {
    let mut frames = Vec::new();
    for i in 0..=255u8 {
        frames.push(frame([10, 1, i, 1], 256));
    }
    for _ in 0..256 {
        frames.push(vec![0xAB; 3]); // runt: shorter than any header chain
    }
    let stats = run(&frames);
    assert_eq!(stats.totals.forwarded, 256, "only the valid frames forward");
    assert_eq!(
        stats.totals.dropped[DropReason::Malformed as usize],
        256,
        "every runt drops as malformed — none may parse as a stale buffer"
    );
    assert_eq!(stats.totals.total_frames(), 512);
}

/// Phase additivity: routing a mixed stream through a pool warmed by a
/// *different* stream gives byte-identical per-port and per-drop-reason
/// counts to routing it through a fresh router. Any cross-contamination
/// between a buffer's previous tenant and its current frame breaks the
/// equality `stats(warm ++ mixed) == stats(warm) + stats(mixed)`.
#[test]
fn pool_history_never_changes_routing_outcomes() {
    // Warm stream: big frames, all to one port, some corrupted.
    let mut warm = Vec::new();
    for i in 0..=255u8 {
        let mut b = PacketBuilder::udp()
            .src_ip([172, 16, 1, 1])
            .dst_ip([192, 168, i, 9])
            .dst_port(4789)
            .payload(&[0x55; 300]);
        if i % 7 == 0 {
            b = b.corrupt_checksum();
        }
        warm.push(b.build());
    }
    // Mixed stream: small frames across ports, runts, and no-route dsts.
    let mut mixed = Vec::new();
    for i in 0..=255u8 {
        mixed.push(match i % 4 {
            0 => frame([10, 0, 1, i], 16),
            1 => frame([10, 1, 2, i], 16),
            2 => frame([8, 8, 8, i], 16), // no route
            _ => vec![0xCD; 5],           // runt
        });
    }
    let combined: Vec<Vec<u8>> = warm.iter().chain(mixed.iter()).cloned().collect();

    let (a, b, ab) = (run(&warm), run(&mixed), run(&combined));
    assert_eq!(ab.totals.forwarded, a.totals.forwarded + b.totals.forwarded);
    for r in 0..a.totals.dropped.len() {
        assert_eq!(
            ab.totals.dropped[r],
            a.totals.dropped[r] + b.totals.dropped[r],
            "drop reason {r} not additive across pool reuse"
        );
    }
    for p in 0..a.totals.per_port.len() {
        assert_eq!(
            ab.totals.per_port[p],
            a.totals.per_port[p] + b.totals.per_port[p],
            "port {p} counts not additive across pool reuse"
        );
    }
}
