//! The sharded multi-worker router.
//!
//! Flows hash-partition across `std::thread` workers, each fed batches
//! through its own bounded [`sysconc::channel`] (backpressure: a slow
//! worker stalls its dispatcher instead of growing an unbounded queue).
//! Sharding by flow hash keeps any one flow on one worker, so per-flow
//! packet order survives parallelism — the classic RSS design.
//!
//! Shared state is confined to per-worker atomic counters (aggregated into
//! a router-wide [`RouterStats`] snapshot on demand) and the immutable
//! routing table behind an `Arc`; the packets themselves are *moved*
//! through channels, never shared — Challenge 4 answered with ownership
//! plus message passing rather than locks.

use crate::lpm::TrieTable;
use crate::pipeline::{self, BatchStats, DROP_METRICS, DROP_REASONS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysconc::channel::{bounded, Receiver, Sender};
use sysobs::LogHistogram;

/// A next-hop port: an index into the router's port table.
pub type PortId = u16;

/// Sizing knobs for [`ShardedRouter`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Worker threads (≥ 1). Flows are hash-partitioned across them.
    pub workers: usize,
    /// Frames per batch handed to a worker (≥ 1).
    pub batch_size: usize,
    /// Bounded-channel capacity, in batches, per worker (≥ 1).
    pub queue_depth: usize,
    /// When false, workers run a monomorphized fast path with *no*
    /// observability code compiled in — not even the disabled-mode atomic
    /// check. This is the true baseline experiment E11 measures
    /// instrumentation overhead against; production configs leave it true
    /// and control cost via [`sysobs::set_mode`].
    pub instrument: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 1,
            batch_size: 64,
            queue_depth: 8,
            instrument: true,
        }
    }
}

/// One worker's batch: owned frames plus the submission timestamp the
/// per-packet latency measurement starts from.
struct Batch {
    frames: Vec<Vec<u8>>,
    submitted: Instant,
}

/// Per-worker live counters (atomics, so [`ShardedRouter::snapshot`] can
/// read them while the workers run).
#[derive(Debug)]
struct Counters {
    parsed: AtomicU64,
    forwarded: AtomicU64,
    dropped: [AtomicU64; DROP_REASONS],
    batches: AtomicU64,
    occupancy_sum: AtomicU64,
    per_port: Vec<AtomicU64>,
}

impl Counters {
    fn new(ports: usize) -> Self {
        Counters {
            parsed: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            dropped: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            occupancy_sum: AtomicU64::new(0),
            per_port: (0..ports).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn apply(&self, stats: &BatchStats, occupancy: usize) {
        self.parsed.fetch_add(stats.parsed, Ordering::Relaxed);
        self.forwarded.fetch_add(stats.forwarded, Ordering::Relaxed);
        for (cell, n) in self.dropped.iter().zip(stats.dropped.iter()) {
            cell.fetch_add(*n, Ordering::Relaxed);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            parsed: self.parsed.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: std::array::from_fn(|i| self.dropped[i].load(Ordering::Relaxed)),
            batches: self.batches.load(Ordering::Relaxed),
            occupancy_sum: self.occupancy_sum.load(Ordering::Relaxed),
            per_port: self
                .per_port
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// One worker's counters, snapshot as plain numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Frames whose header chain validated.
    pub parsed: u64,
    /// Frames forwarded to a port.
    pub forwarded: u64,
    /// Frames dropped, indexed by [`pipeline::DropReason`].
    pub dropped: [u64; DROP_REASONS],
    /// Batches processed.
    pub batches: u64,
    /// Sum of batch occupancies (frames per batch actually seen).
    pub occupancy_sum: u64,
    /// Forwards per port id.
    pub per_port: Vec<u64>,
}

impl WorkerStats {
    /// Total drops across all reasons.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Mean frames per batch this worker saw (batch occupancy).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.batches as f64
        }
    }

    fn merge(&mut self, other: &WorkerStats) {
        self.parsed += other.parsed;
        self.forwarded += other.forwarded;
        for (a, b) in self.dropped.iter_mut().zip(other.dropped.iter()) {
            *a += b;
        }
        self.batches += other.batches;
        self.occupancy_sum += other.occupancy_sum;
        if self.per_port.len() < other.per_port.len() {
            self.per_port.resize(other.per_port.len(), 0);
        }
        for (a, b) in self.per_port.iter_mut().zip(other.per_port.iter()) {
            *a += b;
        }
    }
}

/// Router-wide aggregate of every worker's counters.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Per-worker snapshots, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Sum over workers.
    pub totals: WorkerStats,
}

/// Final report returned by [`ShardedRouter::finish`]: the aggregate
/// counters plus the per-packet latency distribution.
#[derive(Debug, Clone)]
pub struct RouterReport {
    /// Aggregated counters.
    pub stats: RouterStats,
    /// Per-packet submit-to-batch-completion latency (queueing plus
    /// processing), log-bucketed. Replaces the old hand-rolled weighted
    /// `(ns, packets)` quantile list with the shared [`LogHistogram`].
    latencies: LogHistogram,
}

impl RouterReport {
    /// Latency quantile in nanoseconds (`0.5` = p50, `0.99` = p99),
    /// resolved to log-bucket precision. Returns 0 when no packets were
    /// processed.
    #[must_use]
    pub fn latency_ns(&self, quantile: f64) -> u64 {
        self.latencies.percentile(quantile)
    }

    /// The full latency distribution.
    #[must_use]
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latencies
    }

    /// Total packets the report covers.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.stats.totals.total_frames()
    }

    /// Renders the report as a [`sysobs::Snapshot`]: `net.*` counters per
    /// drop reason plus the latency histogram — the router's slice of the
    /// unified observability surface.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let t = &self.stats.totals;
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("net.parsed", t.parsed);
        snap.set_counter("net.forwarded", t.forwarded);
        snap.set_counter("net.batches", t.batches);
        for (name, &n) in DROP_METRICS.iter().zip(t.dropped.iter()) {
            snap.set_counter(*name, n);
        }
        snap.set_hist("net.latency_ns", self.latencies.clone());
        snap
    }
}

impl WorkerStats {
    /// Total frames seen (forwarded + dropped).
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.forwarded + self.dropped_total()
    }
}

/// FNV-1a over the IPv4 src/dst addresses (bytes 26..34 of a minimal
/// Ethernet+IPv4 frame); shorter or odd frames hash whole. Same flow, same
/// worker — without parsing (the worker does the real validation). The hash
/// itself is the shared [`sysobs::fnv1a`] (one FNV implementation for flow
/// hashing, fault digests, and trace digests), which preserves the exact
/// sharding this router has always produced.
#[must_use]
fn flow_hash(frame: &[u8]) -> u64 {
    sysobs::fnv1a(frame.get(26..34).unwrap_or(frame))
}

/// One worker's receive-process loop, monomorphized on `OBS` so the
/// `instrument: false` configuration compiles a fast path containing zero
/// observability code — the E11 baseline — while the instrumented variant
/// routes through [`pipeline::process_batch`] (registry counters, spans).
fn worker_loop<const OBS: bool>(
    rx: &Receiver<Batch>,
    table: &TrieTable<PortId>,
    shared: &Counters,
) -> LogHistogram {
    let mut latencies = LogHistogram::new();
    while let Ok(batch) = rx.recv() {
        let occupancy = batch.frames.len();
        let forward = |port: PortId| {
            if let Some(cell) = shared.per_port.get(usize::from(port)) {
                cell.fetch_add(1, Ordering::Relaxed);
            }
        };
        let stats = if OBS {
            pipeline::process_batch(&batch.frames, table, forward)
        } else {
            pipeline::process_batch_uninstrumented(&batch.frames, table, forward)
        };
        shared.apply(&stats, occupancy);
        let ns = u64::try_from(batch.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Every frame in the batch shares the batch's completion latency.
        latencies.record_n(ns, occupancy as u64);
        if OBS {
            sysobs::obs_hist!("net.batch_latency_ns", ns);
        }
    }
    latencies
}

/// The sharded router: dispatcher-side handle. Create with
/// [`ShardedRouter::start`], feed with [`ShardedRouter::submit`], and close
/// with [`ShardedRouter::finish`].
pub struct ShardedRouter {
    senders: Vec<Sender<Batch>>,
    handles: Vec<JoinHandle<LogHistogram>>,
    counters: Vec<Arc<Counters>>,
    pending: Vec<Vec<Vec<u8>>>,
    batch_size: usize,
}

impl ShardedRouter {
    /// Spawns `config.workers` worker threads over the given routing table
    /// and port count, each consuming from its own bounded channel.
    ///
    /// # Panics
    ///
    /// Panics if any config knob is zero or a worker thread cannot spawn.
    #[must_use]
    pub fn start(table: TrieTable<PortId>, ports: usize, config: RouterConfig) -> Self {
        assert!(config.workers >= 1, "router needs at least one worker");
        assert!(config.batch_size >= 1, "batch size must be nonzero");
        assert!(config.queue_depth >= 1, "queue depth must be nonzero");
        let table = Arc::new(table);
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        let mut counters = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = bounded::<Batch>(config.queue_depth);
            let worker_table = Arc::clone(&table);
            let worker_counters = Arc::new(Counters::new(ports));
            let shared = Arc::clone(&worker_counters);
            let builder = std::thread::Builder::new().name(format!("sysnet-worker-{i}"));
            let handle = if config.instrument {
                builder.spawn(move || worker_loop::<true>(&rx, &worker_table, &shared))
            } else {
                builder.spawn(move || worker_loop::<false>(&rx, &worker_table, &shared))
            }
            .expect("spawn router worker");
            senders.push(tx);
            handles.push(handle);
            counters.push(worker_counters);
        }
        ShardedRouter {
            senders,
            handles,
            counters,
            pending: vec![Vec::new(); config.workers],
            batch_size: config.batch_size,
        }
    }

    /// Queues one frame, dispatching a batch to its worker when full.
    pub fn submit(&mut self, frame: Vec<u8>) {
        #[allow(clippy::cast_possible_truncation)]
        let w = (flow_hash(&frame) % self.senders.len() as u64) as usize;
        self.pending[w].push(frame);
        if self.pending[w].len() >= self.batch_size {
            self.dispatch(w);
        }
    }

    /// Flushes all partially filled batches to their workers.
    pub fn flush(&mut self) {
        for w in 0..self.pending.len() {
            self.dispatch(w);
        }
    }

    fn dispatch(&mut self, w: usize) {
        if self.pending[w].is_empty() {
            return;
        }
        let frames = std::mem::take(&mut self.pending[w]);
        let batch = Batch {
            frames,
            submitted: Instant::now(),
        };
        assert!(
            self.senders[w].send(batch).is_ok(),
            "router worker {w} exited early"
        );
    }

    /// Live aggregate of every worker's counters (racy between workers —
    /// for monitoring; the authoritative totals come from
    /// [`ShardedRouter::finish`]).
    #[must_use]
    pub fn snapshot(&self) -> RouterStats {
        let per_worker: Vec<WorkerStats> = self.counters.iter().map(|c| c.snapshot()).collect();
        let mut totals = WorkerStats::default();
        for w in &per_worker {
            totals.merge(w);
        }
        RouterStats { per_worker, totals }
    }

    /// Flushes pending batches, shuts the workers down, and returns the
    /// final report (counters + latency distribution).
    #[must_use]
    pub fn finish(mut self) -> RouterReport {
        self.flush();
        drop(std::mem::take(&mut self.senders)); // workers exit on disconnect
        let mut latencies = LogHistogram::new();
        for handle in std::mem::take(&mut self.handles) {
            latencies.merge(&handle.join().expect("router worker panicked"));
        }
        let stats = {
            let per_worker: Vec<WorkerStats> = self.counters.iter().map(|c| c.snapshot()).collect();
            let mut totals = WorkerStats::default();
            for w in &per_worker {
                totals.merge(w);
            }
            RouterStats { per_worker, totals }
        };
        RouterReport { stats, latencies }
    }
}

/// Convenience driver: starts a router, feeds it the whole stream, and
/// returns the report plus the wall-clock duration (for throughput math).
#[must_use]
pub fn run_stream(
    table: TrieTable<PortId>,
    ports: usize,
    config: RouterConfig,
    frames: Vec<Vec<u8>>,
) -> (RouterReport, Duration) {
    let t0 = Instant::now();
    let mut router = ShardedRouter::start(table, ports, config);
    for frame in frames {
        router.submit(frame);
    }
    let report = router.finish();
    (report, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DropReason;
    use sysrepr::packet::PacketBuilder;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn table() -> TrieTable<PortId> {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, 0).unwrap();
        t.insert(ip(10, 1, 0, 0), 16, 1).unwrap();
        t.insert(0, 0, 2).unwrap();
        t
    }

    fn stream(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                let flow = (i % 61) as u8;
                let mut b = PacketBuilder::udp()
                    .src_ip([172, 16, 0, flow])
                    .dst_ip([10, flow % 3, flow, 1])
                    .payload(&[0xAB; 48]);
                if i % 50 == 0 {
                    b = b.corrupt_checksum();
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn single_worker_conserves_and_counts() {
        let frames = stream(500);
        let (report, _) = run_stream(table(), 3, RouterConfig::default(), frames);
        let t = &report.stats.totals;
        assert_eq!(t.total_frames(), 500);
        assert_eq!(t.dropped[DropReason::BadChecksum as usize], 10);
        assert_eq!(t.forwarded, 490);
        assert_eq!(t.per_port.iter().sum::<u64>(), 490);
        assert!(report.latency_ns(0.5) > 0);
        assert!(report.latency_ns(0.99) >= report.latency_ns(0.5));
    }

    #[test]
    fn sharded_workers_agree_with_single_worker() {
        let frames = stream(1200);
        let single = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 1,
                ..RouterConfig::default()
            },
            frames.clone(),
        )
        .0;
        let sharded = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 4,
                ..RouterConfig::default()
            },
            frames,
        )
        .0;
        // Same totals no matter how the flows shard.
        assert_eq!(
            single.stats.totals.forwarded,
            sharded.stats.totals.forwarded
        );
        assert_eq!(single.stats.totals.dropped, sharded.stats.totals.dropped);
        assert_eq!(single.stats.totals.per_port, sharded.stats.totals.per_port);
        assert_eq!(sharded.stats.per_worker.len(), 4);
        // More than one worker actually saw traffic.
        let active = sharded
            .stats
            .per_worker
            .iter()
            .filter(|w| w.total_frames() > 0)
            .count();
        assert!(active > 1, "flow hashing must spread flows across workers");
    }

    #[test]
    fn batch_occupancy_is_tracked() {
        let frames = stream(256);
        let cfg = RouterConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 4,
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, frames);
        let w = &report.stats.per_worker[0];
        assert_eq!(w.occupancy_sum, 256);
        assert!(w.mean_occupancy() > 0.0 && w.mean_occupancy() <= 32.0);
    }

    #[test]
    fn uninstrumented_baseline_agrees_with_instrumented() {
        let frames = stream(800);
        let on = run_stream(table(), 3, RouterConfig::default(), frames.clone()).0;
        let off = run_stream(
            table(),
            3,
            RouterConfig {
                instrument: false,
                ..RouterConfig::default()
            },
            frames,
        )
        .0;
        assert_eq!(on.stats.totals.forwarded, off.stats.totals.forwarded);
        assert_eq!(on.stats.totals.dropped, off.stats.totals.dropped);
        assert_eq!(on.stats.totals.per_port, off.stats.totals.per_port);
    }

    #[test]
    fn report_snapshot_conserves_frames() {
        let frames = stream(600);
        let n = frames.len() as u64;
        let (report, _) = run_stream(table(), 3, RouterConfig::default(), frames);
        let snap = report.to_snapshot();
        assert_eq!(
            snap.counter("net.forwarded") + snap.counter_sum("net.drop."),
            n,
            "snapshot loses or double-counts frames: {snap}"
        );
        let hist = snap
            .hist("net.latency_ns")
            .expect("latency histogram present");
        assert_eq!(hist.count(), n, "every frame carries a latency sample");
    }

    #[test]
    fn snapshot_is_readable_mid_run() {
        let mut router = ShardedRouter::start(table(), 3, RouterConfig::default());
        for frame in stream(200) {
            router.submit(frame);
        }
        router.flush();
        // Not a synchronization point — just must not panic or tear.
        let snap = router.snapshot();
        assert!(snap.totals.total_frames() <= 200);
        let report = router.finish();
        assert_eq!(report.stats.totals.total_frames(), 200);
    }
}
