//! The sharded multi-worker router.
//!
//! Flows hash-partition across `std::thread` workers, each fed batches
//! through its own bounded [`sysconc::channel`]. Sharding by flow hash
//! keeps any one flow on one worker, so per-flow packet order survives
//! parallelism — the classic RSS design.
//!
//! Three properties define the steady state:
//!
//! * **Zero allocation.** Workers return drained [`Batch`] buffers to the
//!   dispatcher over per-worker recycle channels; the dispatcher refills
//!   frame buffers with `clear()` + `extend_from_slice` (length governs —
//!   recycled bytes can never leak into a later frame) and reuses batch
//!   containers the same way. After warm-up no `Vec` is allocated per
//!   packet or per batch — Challenge 2's region-style reuse, measured as
//!   `steady_allocs_per_packet` in the bench rather than asserted.
//! * **Cached routing.** Each worker fronts the route source with its own
//!   [`FlowCache`]: repeated flows resolve in one hash-and-compare instead
//!   of a 32-level trie walk, and a generation counter on the source
//!   invalidates the cache before any post-mutation packet is routed.
//! * **Live route updates.** The routing table is no longer frozen at
//!   startup: [`ShardedRouter::updater`] hands out a clonable control-plane
//!   handle whose inserts and removes reach running workers. Under the
//!   default [`RouteMode::CowEpoch`] an update is one copy-on-write spine
//!   clone plus an atomic root swap ([`crate::cowtrie`]); workers pin an
//!   epoch-protected snapshot per batch and pay zero synchronization per
//!   packet. [`RouteMode::LockedGenerationClear`] keeps the baseline — a
//!   mutex around the exclusive trie, locked per batch — for the E15 A/B.
//! * **Non-blocking dispatch.** Batch size adapts to queue occupancy (deep
//!   batches only under backlog) and dispatch uses `try_send` with a
//!   bounded per-worker requeue, so one slow worker no longer
//!   head-of-line-blocks every other worker's feed.
//!
//! Shared state is confined to per-worker atomic counters (aggregated into
//! a router-wide [`RouterStats`] snapshot on demand) and the published
//! route state behind an `Arc`; the packets themselves are *moved* through
//! channels, never shared — Challenge 4 answered with ownership plus
//! message passing rather than locks.
//!
//! The dispatch/recycle protocol itself is model-checkable: workers spawn
//! through [`syscheck::shim::spawn_named`] and every channel hand-off rides
//! the (shimmed) `sysconc` channels, so under a `syscheck` runtime the
//! whole dispatcher → worker → recycle cycle runs on the cooperative
//! scheduler (see `tests/router_model.rs`). The per-worker *counters* stay
//! plain `std` atomics on purpose: they are observability, not protocol —
//! no control flow in the dispatch path depends on racing counter reads
//! beyond the monotone in-flight estimate, and shimming them would bury
//! the protocol's real decision points under thousands of counter
//! interleavings (the same split `sysconc::stm` makes for its stats).

use crate::cache::FlowCache;
use crate::conntrack::{Conntrack, ConntrackConfig, ConntrackShared, ConntrackStats, EvictCause};
use crate::cowtrie::{CowRouteTable, RouteReader};
use crate::lb::{BackendPool, LbConfig, LbStats};
use crate::lpm::{RouteError, Routes, TrieTable};
use crate::pipeline::{self, BatchStats, DROP_METRICS, DROP_REASONS};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use syscheck::shim::{spawn_named, JoinHandle, Mutex as ShimMutex};
use sysconc::channel::{bounded, channel, Receiver, Sender, TrySendError};
use sysfault::{FaultInjector, FaultPlan};
use sysobs::LogHistogram;

/// A next-hop port: an index into the router's port table.
pub type PortId = u16;

/// Fault site: the dispatcher silently drops a submitted frame (NIC-edge
/// loss) before it reaches any worker.
pub const SITE_NET_FRAME_DROP: &str = "net.dispatch.frame_drop";
/// Fault site: a worker stalls briefly before processing a batch (the slow
/// peer the non-blocking dispatch and requeue path must absorb).
pub const SITE_NET_WORKER_STALL: &str = "net.worker.stall";
/// Fault site: a batch returning on the recycle channel is lost, so its
/// buffers leave the pool forever and the dispatcher must re-allocate.
pub const SITE_NET_RECYCLE_LOSS: &str = "net.recycle.loss";

/// How route updates reach running workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Copy-on-write publication over epoch-based reclamation (the
    /// default): a [`RouteUpdater`] insert clones the O(depth) spine and
    /// swaps one atomic root pointer; workers pin a frozen snapshot per
    /// batch and pay zero synchronization per packet lookup.
    #[default]
    CowEpoch,
    /// The pre-epoch baseline: the exclusive [`TrieTable`] behind one
    /// mutex, locked by every worker for every batch (and by the updater
    /// for every change). Kept as experiment E15's A/B comparison arm.
    LockedGenerationClear,
}

/// Sizing knobs for [`ShardedRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker threads (≥ 1). Flows are hash-partitioned across them.
    pub workers: usize,
    /// Maximum frames per batch handed to a worker (≥ 1). The dispatcher
    /// sizes actual batches adaptively from queue occupancy, up to this.
    pub batch_size: usize,
    /// Bounded-channel capacity, in batches, per worker (≥ 1).
    pub queue_depth: usize,
    /// Per-worker flow-cache slots (rounded up to a power of two).
    /// `0` disables the cache: every packet walks the trie — the A/B
    /// baseline experiment E12 measures the cache against.
    pub cache_slots: usize,
    /// When false, workers run a monomorphized fast path with *no*
    /// observability code compiled in — not even the disabled-mode atomic
    /// check. This is the true baseline experiment E11 measures
    /// instrumentation overhead against; production configs leave it true
    /// and control cost via [`sysobs::set_mode`].
    pub instrument: bool,
    /// Per-worker connection-tracking shard config. `None` (the default)
    /// runs the classic stateless pipeline; `Some` routes every batch
    /// through [`pipeline::process_batch_tracked`] and sweeps each shard
    /// watchdog-style between batches. `max_flows` is the **router-wide**
    /// capacity: every shard charges the same [`ConntrackShared`] gauge,
    /// so the live-entry total never exceeds it no matter how flows shard.
    pub conntrack: Option<ConntrackConfig>,
    /// L4 load-balancer config. Requires `conntrack` (rewrite state lives
    /// in the flow entries); each worker gets its own [`BackendPool`] with
    /// an injector derived like the conntrack one, probing between batches.
    pub lb: Option<LbConfig>,
    /// Seeded fault plan for the `net.*` injection sites. The dispatcher
    /// keeps an injector for [`SITE_NET_FRAME_DROP`] and
    /// [`SITE_NET_RECYCLE_LOSS`]; each worker derives its own (seed XORed
    /// with the FNV of the worker name) for [`SITE_NET_WORKER_STALL`] and
    /// the `net.conntrack.*` sites, so campaigns replay per worker.
    pub fault_plan: Option<FaultPlan>,
    /// How route updates reach the workers (see [`RouteMode`]).
    pub route_mode: RouteMode,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 1,
            batch_size: 64,
            queue_depth: 8,
            cache_slots: 4096,
            instrument: true,
            conntrack: None,
            lb: None,
            fault_plan: None,
            route_mode: RouteMode::default(),
        }
    }
}

/// Requeued batches a worker may accumulate before the dispatcher falls
/// back to a blocking send (bounding dispatcher-side memory), as a multiple
/// of the queue depth.
const STALL_CAP_FACTOR: usize = 2;

/// One worker's batch: owned frames plus the dispatch timestamp the
/// per-packet latency measurement starts from. The same buffers cycle
/// dispatcher → worker → recycle channel → dispatcher for the router's
/// lifetime.
struct Batch {
    frames: Vec<Vec<u8>>,
    submitted: Instant,
    /// Packed causal trace context ([`sysobs::context`] carrier form)
    /// stamped by the dispatcher when this batch won the sampling draw;
    /// 0 = untraced. Workers adopt it before processing, so the spans a
    /// sampled packet opens on a worker thread join the dispatcher's trace.
    ctx: u64,
}

/// Per-worker live counters (atomics, so [`ShardedRouter::snapshot`] can
/// read them while the workers run).
#[derive(Debug)]
struct Counters {
    parsed: AtomicU64,
    forwarded: AtomicU64,
    dropped: [AtomicU64; DROP_REASONS],
    batches: AtomicU64,
    occupancy_sum: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidations: AtomicU64,
    cache_invalidation_misses: AtomicU64,
    injected_stalls: AtomicU64,
    per_port: Vec<AtomicU64>,
}

impl Counters {
    fn new(ports: usize) -> Self {
        Counters {
            parsed: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            dropped: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            occupancy_sum: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_invalidations: AtomicU64::new(0),
            cache_invalidation_misses: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            per_port: (0..ports).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn apply(&self, stats: &BatchStats, occupancy: usize) {
        self.parsed.fetch_add(stats.parsed, Ordering::Relaxed);
        self.forwarded.fetch_add(stats.forwarded, Ordering::Relaxed);
        for (cell, n) in self.dropped.iter().zip(stats.dropped.iter()) {
            cell.fetch_add(*n, Ordering::Relaxed);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
    }

    /// Publishes the worker's cache totals (single writer: plain stores).
    fn store_cache(&self, cache: &FlowCache<PortId>) {
        self.cache_hits.store(cache.hits(), Ordering::Relaxed);
        self.cache_misses.store(cache.misses(), Ordering::Relaxed);
        self.cache_invalidations
            .store(cache.invalidations(), Ordering::Relaxed);
        self.cache_invalidation_misses
            .store(cache.invalidation_misses(), Ordering::Relaxed);
    }

    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            parsed: self.parsed.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: std::array::from_fn(|i| self.dropped[i].load(Ordering::Relaxed)),
            batches: self.batches.load(Ordering::Relaxed),
            occupancy_sum: self.occupancy_sum.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            cache_invalidation_misses: self.cache_invalidation_misses.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            per_port: self
                .per_port
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// One worker's counters, snapshot as plain numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Frames whose header chain validated.
    pub parsed: u64,
    /// Frames forwarded to a port.
    pub forwarded: u64,
    /// Frames dropped, indexed by [`pipeline::DropReason`].
    pub dropped: [u64; DROP_REASONS],
    /// Batches processed.
    pub batches: u64,
    /// Sum of batch occupancies (frames per batch actually seen).
    pub occupancy_sum: u64,
    /// Flow-cache hits (0 when the cache is disabled).
    pub cache_hits: u64,
    /// Flow-cache misses (each one walked the trie).
    pub cache_misses: u64,
    /// Flow-cache wholesale invalidations (table-generation changes seen).
    pub cache_invalidations: u64,
    /// The subset of [`WorkerStats::cache_misses`] forced by those
    /// invalidations (refills of slots a route change emptied) — route
    /// churn's direct cost, separable from capacity pressure.
    pub cache_invalidation_misses: u64,
    /// Injected worker stalls served ([`SITE_NET_WORKER_STALL`]).
    pub injected_stalls: u64,
    /// Forwards per port id.
    pub per_port: Vec<u64>,
}

impl WorkerStats {
    /// Total drops across all reasons.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Mean frames per batch this worker saw (batch occupancy).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.batches as f64
        }
    }

    /// Flow-cache hit rate (0.0 when the cache was never consulted).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &WorkerStats) {
        self.parsed += other.parsed;
        self.forwarded += other.forwarded;
        for (a, b) in self.dropped.iter_mut().zip(other.dropped.iter()) {
            *a += b;
        }
        self.batches += other.batches;
        self.occupancy_sum += other.occupancy_sum;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.cache_invalidation_misses += other.cache_invalidation_misses;
        self.injected_stalls += other.injected_stalls;
        if self.per_port.len() < other.per_port.len() {
            self.per_port.resize(other.per_port.len(), 0);
        }
        for (a, b) in self.per_port.iter_mut().zip(other.per_port.iter()) {
            *a += b;
        }
    }
}

/// Router-wide aggregate of every worker's counters.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Per-worker snapshots, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Sum over workers.
    pub totals: WorkerStats,
}

/// Dispatcher-side buffer-pool counters: how many frame buffers and batch
/// containers were served from the recycle pool vs freshly allocated, plus
/// how often dispatch had to requeue a batch for a busy worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame buffers reused from the pool.
    pub frames_reused: u64,
    /// Frame buffers freshly allocated (warm-up, or pool exhaustion).
    pub frames_allocated: u64,
    /// Batch containers reused from the pool.
    pub batches_reused: u64,
    /// Batch containers freshly allocated.
    pub batches_allocated: u64,
    /// Batches requeued because a worker's queue was full at dispatch.
    pub stalled_requeues: u64,
}

impl PoolStats {
    /// Fraction of frame buffers served from the pool (1.0 = all reuse).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn frame_reuse_rate(&self) -> f64 {
        let total = self.frames_reused + self.frames_allocated;
        if total == 0 {
            0.0
        } else {
            self.frames_reused as f64 / total as f64
        }
    }
}

/// What the seeded `net.*` fault campaign did to one router run: injection
/// counts plus the replayable digests (same plan + same stream → same
/// digests, which is how campaigns prove they reproduced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Frames dropped at the dispatcher ([`SITE_NET_FRAME_DROP`]).
    pub injected_frame_drops: u64,
    /// Recycle batches lost ([`SITE_NET_RECYCLE_LOSS`]).
    pub recycle_losses: u64,
    /// Frame buffers those lost batches carried away.
    pub frames_lost: u64,
    /// Worker stalls served ([`SITE_NET_WORKER_STALL`]).
    pub injected_stalls: u64,
    /// Dispatcher injector's fault-log digest (0 when no plan).
    pub dispatch_digest: u64,
    /// Per-worker digests (stall + conntrack sites) folded in worker
    /// order: `d ← rotl(d, 1) ^ worker_digest`.
    pub worker_digest: u64,
}

impl NetFaultStats {
    /// Total injected events across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected_frame_drops + self.recycle_losses + self.injected_stalls
    }
}

/// Copy-on-write route-table and epoch-domain counters, captured at
/// [`ShardedRouter::finish`] when the router ran under
/// [`RouteMode::CowEpoch`] — the reclamation story's observability surface
/// (how many snapshots were published, how many spine nodes came back
/// through the pool, and whether epoch advancement ever stalled behind a
/// pinned reader).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowEpochStats {
    /// Route-table publications (successful inserts/removes).
    pub publications: u64,
    /// Retired spine nodes recycled back into the writer's node pool.
    pub spine_recycled: u64,
    /// Retired nodes still awaiting their grace period at shutdown.
    pub pending_reclaim: u64,
    /// Readers still inside a pinned critical section at shutdown (0 after
    /// a clean worker join — nonzero means a leaked pin).
    pub pinned_readers: u64,
    /// Epoch-advance attempts a lagging pinned reader blocked.
    pub advance_stalls: u64,
}

/// Final report returned by [`ShardedRouter::finish`]: the aggregate
/// counters plus the per-packet latency distribution.
#[derive(Debug, Clone)]
pub struct RouterReport {
    /// Aggregated counters.
    pub stats: RouterStats,
    /// Dispatcher-side buffer-pool counters.
    pub pool: PoolStats,
    /// Merged connection-tracking counters across workers (`None` when
    /// tracking was disabled).
    pub conntrack: Option<ConntrackStats>,
    /// Merged load-balancer counters across workers (`None` when balancing
    /// was disabled).
    pub lb: Option<LbStats>,
    /// Fault-injection campaign summary (all zeros when no plan was set).
    pub faults: NetFaultStats,
    /// CoW-trie / epoch-reclamation counters (`None` under the locked
    /// baseline, which has no epoch machinery to observe).
    pub cow: Option<CowEpochStats>,
    /// Per-packet submit-to-batch-completion latency (queueing plus
    /// processing), log-bucketed. Replaces the old hand-rolled weighted
    /// `(ns, packets)` quantile list with the shared [`LogHistogram`].
    latencies: LogHistogram,
}

impl RouterReport {
    /// Latency quantile in nanoseconds (`0.5` = p50, `0.99` = p99),
    /// resolved to interpolated log-bucket precision. Returns 0 when no
    /// packets were processed.
    #[must_use]
    pub fn latency_ns(&self, quantile: f64) -> u64 {
        self.latencies.percentile(quantile)
    }

    /// The full latency distribution.
    #[must_use]
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latencies
    }

    /// Total packets the report covers.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.stats.totals.total_frames()
    }

    /// Flow-cache hit rate across all workers.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.totals.cache_hit_rate()
    }

    /// Renders the report as a [`sysobs::Snapshot`]: `net.*` counters per
    /// drop reason, the cache and pool counters, and the latency histogram
    /// — the router's slice of the unified observability surface.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let t = &self.stats.totals;
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("net.parsed", t.parsed);
        snap.set_counter("net.forwarded", t.forwarded);
        snap.set_counter("net.batches", t.batches);
        snap.set_counter("net.cache.hits", t.cache_hits);
        snap.set_counter("net.cache.misses", t.cache_misses);
        snap.set_counter("net.cache.invalidations", t.cache_invalidations);
        snap.set_counter("net.cache.invalidation_misses", t.cache_invalidation_misses);
        snap.set_counter("net.pool.frames_reused", self.pool.frames_reused);
        snap.set_counter("net.pool.frames_allocated", self.pool.frames_allocated);
        snap.set_counter("net.pool.batches_reused", self.pool.batches_reused);
        snap.set_counter("net.pool.batches_allocated", self.pool.batches_allocated);
        snap.set_counter("net.pool.stalled_requeues", self.pool.stalled_requeues);
        for (name, &n) in DROP_METRICS.iter().zip(t.dropped.iter()) {
            snap.set_counter(*name, n);
        }
        if let Some(ct) = &self.conntrack {
            let ct_snap = ct.to_snapshot();
            for (name, v) in ct_snap.counters() {
                snap.set_counter(name.to_owned(), v);
            }
        }
        if let Some(lb) = &self.lb {
            let lb_snap = lb.to_snapshot();
            for (name, v) in lb_snap.counters() {
                snap.set_counter(name.to_owned(), v);
            }
        }
        if self.faults != NetFaultStats::default() {
            snap.set_counter("net.fault.frame_drops", self.faults.injected_frame_drops);
            snap.set_counter("net.fault.recycle_losses", self.faults.recycle_losses);
            snap.set_counter("net.fault.frames_lost", self.faults.frames_lost);
            snap.set_counter("net.fault.worker_stalls", self.faults.injected_stalls);
        }
        if let Some(cow) = &self.cow {
            snap.set_counter("net.cowtrie.publications", cow.publications);
            snap.set_counter("net.cowtrie.spine_recycled", cow.spine_recycled);
            snap.set_counter("mem.epoch.advance_stalls", cow.advance_stalls);
            #[allow(clippy::cast_possible_wrap)]
            {
                snap.set_gauge("mem.epoch.pinned_readers", cow.pinned_readers as i64);
                snap.set_gauge("mem.epoch.pending_retire", cow.pending_reclaim as i64);
            }
        }
        snap.set_hist("net.latency_ns", self.latencies.clone());
        snap
    }
}

impl WorkerStats {
    /// Total frames seen (forwarded + dropped).
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.forwarded + self.dropped_total()
    }
}

/// FNV-1a over the IPv4 src/dst addresses (bytes 26..34 of a minimal
/// Ethernet+IPv4 frame); shorter or odd frames hash whole. Same flow, same
/// worker — without parsing (the worker does the real validation). The hash
/// itself is the shared [`sysobs::fnv1a`] (one FNV implementation for flow
/// hashing, fault digests, and trace digests), which preserves the exact
/// sharding this router has always produced.
#[must_use]
fn flow_hash(frame: &[u8]) -> u64 {
    sysobs::fnv1a(frame.get(26..34).unwrap_or(frame))
}

/// Sizes one worker's conntrack slab from the router-wide config: flows
/// hash-partition roughly evenly, so each shard needs about
/// `max_flows / workers` slots plus 25% headroom for partition skew and a
/// full SYN backlog — not the whole router-wide slab each. The shared
/// gauge still enforces the router-wide cap exactly; this only bounds
/// per-shard memory, which is what lets the E14 scale sweep push toward
/// millions of flows without allocating `workers × max_flows` slots.
fn shard_conntrack_config(mut cfg: ConntrackConfig, workers: usize) -> ConntrackConfig {
    if workers > 1 {
        let per = cfg.max_flows / workers;
        cfg.max_flows = (per + per / 4 + cfg.syn_backlog).clamp(1, cfg.max_flows);
        cfg.syn_backlog = cfg.syn_backlog.min(cfg.max_flows);
    }
    cfg
}

/// What one worker thread hands back at shutdown.
struct WorkerExit {
    latencies: LogHistogram,
    /// Final conntrack counters (post-audit), when tracking ran.
    ct_stats: Option<ConntrackStats>,
    /// Final load-balancer counters, when balancing ran.
    lb_stats: Option<LbStats>,
    /// Combined fault-log digest: the worker's stall injector folded with
    /// its conntrack shard's injector.
    fault_digest: u64,
}

/// The route source one worker routes against: a registered epoch reader
/// (pin a frozen snapshot per batch) or the locked-trie baseline (lock the
/// shared mutex per batch).
enum WorkerRoutes {
    Cow(RouteReader<PortId>),
    Locked(Arc<ShimMutex<TrieTable<PortId>>>),
}

/// Routes one batch against whatever [`Routes`] source the worker holds —
/// the shared middle of [`worker_loop`], monomorphized per source and per
/// `OBS` so both the pinned-view fast path and the locked baseline compile
/// tight. With a conntrack shard the batch goes through the tracked
/// pipeline, and the shard's watchdog sweep runs after the batch, never
/// inside it (bounded extra work per batch, zero fast-path contention).
fn run_batch<const OBS: bool, R: Routes<PortId>>(
    frames: &mut [Vec<u8>],
    table: &R,
    cache: Option<&mut FlowCache<PortId>>,
    ct: Option<&mut Conntrack>,
    lb: Option<&mut BackendPool>,
    now_ns: u64,
    shared: &Counters,
) -> BatchStats {
    let forward = |port: PortId| {
        if let Some(cell) = shared.per_port.get(usize::from(port)) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    };
    if let Some(ct) = ct {
        let s = if let Some(pool) = lb {
            if OBS {
                crate::lb::process_batch_lb(frames, table, cache, ct, pool, now_ns, forward)
            } else {
                crate::lb::process_batch_lb_uninstrumented(
                    frames, table, cache, ct, pool, now_ns, forward,
                )
            }
        } else if OBS {
            pipeline::process_batch_tracked(frames, table, cache, ct, now_ns, forward)
        } else {
            pipeline::process_batch_tracked_uninstrumented(
                frames, table, cache, ct, now_ns, forward,
            )
        };
        if ct.due_sweep(now_ns) {
            ct.sweep(now_ns);
        }
        s
    } else {
        match (cache, OBS) {
            (Some(c), true) => pipeline::process_batch_cached(frames, table, c, forward),
            (Some(c), false) => {
                pipeline::process_batch_cached_uninstrumented(frames, table, c, forward)
            }
            (None, true) => pipeline::process_batch(frames, table, forward),
            (None, false) => pipeline::process_batch_uninstrumented(frames, table, forward),
        }
    }
}

/// One worker's receive-process loop, monomorphized on `OBS` so the
/// `instrument: false` configuration compiles a fast path containing zero
/// observability code — the E11 baseline — while the instrumented variant
/// routes through [`pipeline::process_batch_cached`] (registry counters,
/// spans). Each batch routes against one consistent route state: a pinned
/// copy-on-write snapshot ([`RouteMode::CowEpoch`]) or the mutex-held trie
/// ([`RouteMode::LockedGenerationClear`]) — see [`run_batch`] for the
/// shared pipeline dispatch. Drained batches go back to the dispatcher
/// through `recycle`; the send is best-effort because at shutdown the
/// dispatcher drops its receiver first.
#[allow(clippy::too_many_arguments)]
fn worker_loop<const OBS: bool>(
    rx: &Receiver<Batch>,
    recycle: &Sender<Batch>,
    routes: &WorkerRoutes,
    shared: &Counters,
    cache_slots: usize,
    mut ct: Option<Conntrack>,
    mut lb: Option<BackendPool>,
    mut injector: Option<FaultInjector>,
) -> WorkerExit {
    let mut cache = (cache_slots > 0).then(|| FlowCache::new(cache_slots));
    let mut latencies = LogHistogram::new();
    let t0 = Instant::now();
    while let Ok(mut batch) = rx.recv() {
        if let Some(inj) = &mut injector {
            if inj.should_fail(SITE_NET_WORKER_STALL) {
                shared.injected_stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let occupancy = batch.frames.len();
        let now_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Adopt the dispatcher's causal context (no-op for untraced
        // batches): the pipeline's staged spans record under it.
        let _ctx = if OBS {
            Some(sysobs::context::enter_packed(batch.ctx))
        } else {
            None
        };
        let stats = match routes {
            WorkerRoutes::Cow(reader) => {
                // Pin once per batch: two SeqCst loads, then every lookup
                // in the batch walks the frozen snapshot lock-free.
                let view = reader.pin();
                run_batch::<OBS, _>(
                    &mut batch.frames,
                    &view,
                    cache.as_mut(),
                    ct.as_mut(),
                    lb.as_mut(),
                    now_ns,
                    shared,
                )
            }
            WorkerRoutes::Locked(table) => {
                let guard = table.lock().expect("route table poisoned");
                run_batch::<OBS, _>(
                    &mut batch.frames,
                    &*guard,
                    cache.as_mut(),
                    ct.as_mut(),
                    lb.as_mut(),
                    now_ns,
                    shared,
                )
            }
        };
        // Health probes ride between batches, like the conntrack sweep:
        // bounded control-plane work, never inside the per-packet loop. A
        // death verdict ejects the backend's flows so retries re-select.
        if let (Some(pool), Some(ct)) = (lb.as_mut(), ct.as_mut()) {
            let mut freed = 0usize;
            for &b in pool.maybe_probe(now_ns) {
                freed += ct.eject_backend(b, EvictCause::BackendDead);
            }
            if freed > 0 {
                pool.note_flows_ejected(freed);
            }
        }
        shared.apply(&stats, occupancy);
        if let Some(c) = &cache {
            shared.store_cache(c);
        }
        let ns = u64::try_from(batch.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Every frame in the batch shares the batch's completion latency.
        latencies.record_n(ns, occupancy as u64);
        if OBS {
            sysobs::obs_hist!("net.batch_latency_ns", ns);
        }
        let _ = recycle.send(batch);
    }
    let mut fault_digest = injector.map_or(0, |inj| inj.log().digest());
    let ct_stats = ct.map(|mut ct| {
        // Shutdown audit: campaigns read invariant_violations out of the
        // merged stats, so a corrupted shard cannot exit silently.
        ct.audit();
        fault_digest = fault_digest.rotate_left(1) ^ ct.fault_digest();
        *ct.stats()
    });
    let lb_stats = lb.map(|pool| *pool.stats());
    WorkerExit {
        latencies,
        ct_stats,
        lb_stats,
        fault_digest,
    }
}

/// The live route state, shaped by [`RouteMode`]. Shared between the
/// router (which hands workers their per-worker view) and every
/// [`RouteUpdater`] cloned off it.
#[derive(Clone)]
enum RouteBackend {
    Cow(Arc<CowRouteTable<PortId>>),
    Locked(Arc<ShimMutex<TrieTable<PortId>>>),
}

/// A clonable control-plane handle for live route updates, from
/// [`ShardedRouter::updater`]. Inserts and removes reach running workers:
/// under [`RouteMode::CowEpoch`] an update is visible to every batch pinned
/// after the call returns, without stopping or locking the data plane;
/// under [`RouteMode::LockedGenerationClear`] the update takes the same
/// mutex the workers take per batch.
#[derive(Clone)]
pub struct RouteUpdater {
    backend: RouteBackend,
}

impl RouteUpdater {
    /// Installs `prefix/len → next_hop` in the live table, returning the
    /// replaced next hop. Value-preserving re-inserts are generation-
    /// neutral in both modes: no publication, no worker cache is nuked.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    ///
    /// # Panics
    ///
    /// Panics if the route mutex is poisoned (a panicked updater).
    pub fn insert(
        &self,
        prefix: u32,
        len: u8,
        next_hop: PortId,
    ) -> Result<Option<PortId>, RouteError> {
        match &self.backend {
            RouteBackend::Cow(t) => t.insert(prefix, len, next_hop),
            RouteBackend::Locked(m) => m
                .lock()
                .expect("route table poisoned")
                .insert(prefix, len, next_hop),
        }
    }

    /// Removes the route `prefix/len`, returning its next hop if present.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    ///
    /// # Panics
    ///
    /// Panics if the route mutex is poisoned.
    pub fn remove(&self, prefix: u32, len: u8) -> Result<Option<PortId>, RouteError> {
        match &self.backend {
            RouteBackend::Cow(t) => t.remove(prefix, len),
            RouteBackend::Locked(m) => m.lock().expect("route table poisoned").remove(prefix, len),
        }
    }

    /// Routing-visible changes published so far (the generation worker
    /// caches invalidate against).
    ///
    /// # Panics
    ///
    /// Panics if the route mutex is poisoned.
    #[must_use]
    pub fn publications(&self) -> u64 {
        match &self.backend {
            RouteBackend::Cow(t) => t.publications(),
            RouteBackend::Locked(m) => m.lock().expect("route table poisoned").generation(),
        }
    }
}

impl std::fmt::Debug for RouteUpdater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.backend {
            RouteBackend::Cow(_) => "cow-epoch",
            RouteBackend::Locked(_) => "locked",
        };
        f.debug_struct("RouteUpdater")
            .field("mode", &mode)
            .finish_non_exhaustive()
    }
}

/// The sharded router: dispatcher-side handle. Create with
/// [`ShardedRouter::start`], feed with [`ShardedRouter::submit`], and close
/// with [`ShardedRouter::finish`].
pub struct ShardedRouter {
    backend: RouteBackend,
    senders: Vec<Sender<Batch>>,
    recycle_rx: Vec<Receiver<Batch>>,
    handles: Vec<JoinHandle<WorkerExit>>,
    counters: Vec<Arc<Counters>>,
    /// Dispatcher-side injector (frame-drop and recycle-loss sites).
    dispatch_injector: Option<FaultInjector>,
    /// Injection counts accumulated dispatcher-side.
    fault: NetFaultStats,
    pending: Vec<Vec<Vec<u8>>>,
    /// Batches dispatched per worker (for the queue-occupancy estimate).
    dispatched: Vec<u64>,
    /// Cached adaptive batch target, refreshed at each dispatch (so the
    /// per-frame submit path does no arithmetic beyond one compare).
    target: usize,
    /// Batches that bounced off a full worker queue, awaiting retry in
    /// dispatch order.
    stalled: Vec<VecDeque<Batch>>,
    /// Recycled frame buffers ready for refill.
    free_frames: Vec<Vec<u8>>,
    /// Recycled (empty) batch containers ready for refill.
    free_batches: Vec<Vec<Vec<u8>>>,
    pool: PoolStats,
    batch_size: usize,
    queue_depth: usize,
    /// Total frame buffers the dispatcher will create before it waits for
    /// workers to recycle instead — the pool's region bound. Backpressure
    /// flows through the pool: an exhausted budget blocks the feed until a
    /// worker returns a batch, which also keeps memory flat.
    frame_budget: u64,
    /// Mirrors [`RouterConfig::instrument`]: gates the dispatcher-side
    /// trace-root draw so the `instrument: false` baseline stays free of
    /// observability calls on the dispatch path too.
    instrument: bool,
}

impl ShardedRouter {
    /// Spawns `config.workers` worker threads over the given routing table
    /// and port count, each consuming from its own bounded channel.
    ///
    /// # Panics
    ///
    /// Panics if any config knob is zero (`cache_slots` may be zero) or a
    /// worker thread cannot spawn.
    #[must_use]
    pub fn start(table: TrieTable<PortId>, ports: usize, config: RouterConfig) -> Self {
        assert!(config.workers >= 1, "router needs at least one worker");
        assert!(config.batch_size >= 1, "batch size must be nonzero");
        assert!(config.queue_depth >= 1, "queue depth must be nonzero");
        assert!(
            config.lb.is_none() || config.conntrack.is_some(),
            "lb requires conntrack: rewrite state lives in the flow entries"
        );
        let backend = match config.route_mode {
            RouteMode::CowEpoch => RouteBackend::Cow(Arc::new(CowRouteTable::from_trie(&table))),
            RouteMode::LockedGenerationClear => {
                RouteBackend::Locked(Arc::new(ShimMutex::new(table)))
            }
        };
        // One cross-shard gauge caps the router-wide live-entry count at
        // `max_flows`; each worker shard charges it before inserting.
        let ct_shared = config
            .conntrack
            .as_ref()
            .map(|c| Arc::new(ConntrackShared::new(c.max_flows as u64)));
        let mut senders = Vec::with_capacity(config.workers);
        let mut recycle_rx = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        let mut counters = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = bounded::<Batch>(config.queue_depth);
            // Unbounded: the worker must never block returning a buffer.
            // In-flight batches (≤ queue_depth + stalled cap) bound it.
            let (back_tx, back_rx) = channel::<Batch>();
            let worker_routes = match &backend {
                RouteBackend::Cow(cow) => WorkerRoutes::Cow(cow.reader()),
                RouteBackend::Locked(m) => WorkerRoutes::Locked(Arc::clone(m)),
            };
            let worker_counters = Arc::new(Counters::new(ports));
            let shared = Arc::clone(&worker_counters);
            let slots = config.cache_slots;
            let name = format!("sysnet-worker-{i}");
            // Per-worker injector seeds derive from the worker name, so a
            // campaign replays per worker no matter how flows shard.
            let derived_plan = config.fault_plan.as_ref().map(|p| {
                let mut plan = p.clone();
                plan.seed ^= sysobs::fnv1a(name.as_bytes());
                plan
            });
            let worker_ct = config.conntrack.map(|c| {
                let mut ct = Conntrack::new(shard_conntrack_config(c, config.workers));
                if let Some(shared) = &ct_shared {
                    ct = ct.with_shared(Arc::clone(shared));
                }
                match &derived_plan {
                    Some(plan) => ct.with_injector(FaultInjector::new(plan.clone())),
                    None => ct,
                }
            });
            let worker_lb = config.lb.clone().map(|c| {
                let pool = BackendPool::new(c);
                match &derived_plan {
                    Some(plan) => pool.with_injector(FaultInjector::new(plan.clone())),
                    None => pool,
                }
            });
            let worker_injector = derived_plan.map(FaultInjector::new);
            let handle = if config.instrument {
                spawn_named(&name, move || {
                    worker_loop::<true>(
                        &rx,
                        &back_tx,
                        &worker_routes,
                        &shared,
                        slots,
                        worker_ct,
                        worker_lb,
                        worker_injector,
                    )
                })
            } else {
                spawn_named(&name, move || {
                    worker_loop::<false>(
                        &rx,
                        &back_tx,
                        &worker_routes,
                        &shared,
                        slots,
                        worker_ct,
                        worker_lb,
                        worker_injector,
                    )
                })
            };
            senders.push(tx);
            recycle_rx.push(back_rx);
            handles.push(handle);
            counters.push(worker_counters);
        }
        ShardedRouter {
            backend,
            senders,
            recycle_rx,
            handles,
            counters,
            dispatch_injector: config.fault_plan.clone().map(FaultInjector::new),
            fault: NetFaultStats::default(),
            pending: vec![Vec::new(); config.workers],
            dispatched: vec![0; config.workers],
            target: (config.batch_size / 8).max(1),
            stalled: (0..config.workers).map(|_| VecDeque::new()).collect(),
            free_frames: Vec::new(),
            free_batches: Vec::new(),
            pool: PoolStats::default(),
            batch_size: config.batch_size,
            queue_depth: config.queue_depth,
            // Enough for every queue slot, one batch in flight per worker,
            // and one being filled — beyond that, recycle, don't allocate.
            frame_budget: (config.workers * (config.queue_depth + 2) * config.batch_size) as u64,
            instrument: config.instrument,
        }
    }

    /// Dispatcher-side buffer-pool counters so far.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool
    }

    /// A control-plane handle whose route changes reach the running
    /// workers (clonable; safe to move to an updater thread). See
    /// [`RouteUpdater`] for the visibility contract per [`RouteMode`].
    #[must_use]
    pub fn updater(&self) -> RouteUpdater {
        RouteUpdater {
            backend: self.backend.clone(),
        }
    }

    /// Queues one frame (copied into a pooled buffer), dispatching a batch
    /// to its worker when the adaptive threshold fills.
    pub fn submit(&mut self, frame: &[u8]) {
        if let Some(inj) = &mut self.dispatch_injector {
            if inj.should_fail(SITE_NET_FRAME_DROP) {
                self.fault.injected_frame_drops += 1;
                return;
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        let w = (flow_hash(frame) % self.senders.len() as u64) as usize;
        let mut buf = self.take_frame_buf();
        buf.clear();
        buf.extend_from_slice(frame);
        self.pending[w].push(buf);
        if self.pending[w].len() >= self.target {
            self.dispatch(w);
        }
    }

    /// Flushes all partially filled batches and every requeued batch to
    /// their workers (blocking on full queues — flush is a barrier, not a
    /// fast path).
    pub fn flush(&mut self) {
        for w in 0..self.pending.len() {
            self.dispatch(w);
            self.pump_stalled(w, true);
        }
    }

    /// A frame buffer from the pool; allocates fresh only while under the
    /// frame budget (warm-up). At the budget with an empty pool, every
    /// missing buffer is inside a worker, so the dispatcher blocks on the
    /// busiest worker's recycle channel — backpressure through the pool.
    fn take_frame_buf(&mut self) -> Vec<u8> {
        loop {
            if let Some(buf) = self.free_frames.pop() {
                self.pool.frames_reused += 1;
                return buf;
            }
            self.drain_recycled();
            if !self.free_frames.is_empty() {
                continue;
            }
            if self.pool.frames_allocated < self.frame_budget {
                self.pool.frames_allocated += 1;
                return Vec::new();
            }
            // Budget spent and nothing recycled yet: every missing buffer
            // is inside a worker, so wait for batches to come back. The
            // hysteresis (recover half the budget, not one batch) matters
            // on few-core hosts: one long sleep amortizes a context switch
            // over many batches where a per-batch wake would pay it every
            // time.
            let target = (self.frame_budget / 2).max(self.batch_size as u64);
            while (self.free_frames.len() as u64) < target {
                let Some(w) = self.max_in_flight_worker() else {
                    break;
                };
                let Ok(batch) = self.recycle_rx[w].recv() else {
                    break;
                };
                self.absorb_recycled(batch);
                self.drain_recycled();
            }
            if self.free_frames.is_empty() {
                // No worker holds a batch (the rest are dispatcher-held,
                // pending or requeued): allocation is the only way forward.
                self.pool.frames_allocated += 1;
                return Vec::new();
            }
        }
    }

    /// The worker with the most dispatched-but-unprocessed batches (those
    /// are guaranteed to come back on its recycle channel), if any.
    fn max_in_flight_worker(&self) -> Option<usize> {
        let mut best = None;
        let mut best_depth = 0u64;
        for w in 0..self.senders.len() {
            let done = self.counters[w].batches.load(Ordering::Relaxed);
            let depth = self.dispatched[w].saturating_sub(done);
            if depth > best_depth {
                best_depth = depth;
                best = Some(w);
            }
        }
        best
    }

    /// An empty batch container from the pool, or a fresh one.
    fn take_batch_buf(&mut self) -> Vec<Vec<u8>> {
        if let Some(buf) = self.free_batches.pop() {
            self.pool.batches_reused += 1;
            buf
        } else {
            self.pool.batches_allocated += 1;
            Vec::new()
        }
    }

    /// Folds one returned batch into the pools — unless the recycle-loss
    /// site eats it, in which case the buffers leave the budget's books too
    /// (so replacements can be allocated and backpressure stays live).
    fn absorb_recycled(&mut self, mut batch: Batch) {
        if let Some(inj) = &mut self.dispatch_injector {
            if inj.should_fail(SITE_NET_RECYCLE_LOSS) {
                self.fault.recycle_losses += 1;
                self.fault.frames_lost += batch.frames.len() as u64;
                self.pool.frames_allocated = self
                    .pool
                    .frames_allocated
                    .saturating_sub(batch.frames.len() as u64);
                return;
            }
        }
        self.free_frames.append(&mut batch.frames);
        self.free_batches.push(batch.frames);
    }

    /// Pulls every batch the workers have returned back into the pools.
    fn drain_recycled(&mut self) {
        for w in 0..self.recycle_rx.len() {
            while let Ok(batch) = self.recycle_rx[w].try_recv() {
                self.absorb_recycled(batch);
            }
        }
    }

    /// The batch size the next dispatch should aim for, from the pool's
    /// occupancy: `outstanding` counts every frame currently downstream of
    /// `submit` (pending, queued, processing, requeued), which is the
    /// router-wide backlog. A lightly loaded router gets shallow batches so
    /// the first packets of a burst don't wait for a full one (latency); a
    /// backlogged one gets full batches (throughput — shallow batches under
    /// backlog just multiply channel hand-offs).
    fn target_batch_size(&self) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        let outstanding =
            (self.pool.frames_allocated as usize).saturating_sub(self.free_frames.len());
        // Two batches per worker of backlog is already saturation: batches
        // should be full from there on. Below it, scale down linearly.
        let saturated = (2 * self.senders.len() * self.batch_size).max(1);
        let scaled = self.batch_size * outstanding / saturated;
        scaled.clamp((self.batch_size / 8).max(1), self.batch_size)
    }

    fn dispatch(&mut self, w: usize) {
        // Retry requeued batches first so per-worker dispatch order holds.
        self.pump_stalled(w, false);
        if self.pending[w].is_empty() {
            return;
        }
        let replacement = self.take_batch_buf();
        let frames = std::mem::replace(&mut self.pending[w], replacement);
        // Root a sampled causal trace here, at the earliest point a batch
        // exists: the 1-in-N draw happens once per batch, and a winning
        // batch carries the packed context across the channel so the
        // worker's parse→route→egress spans join this dispatch span.
        let mut ctx = 0u64;
        if self.instrument {
            let _root = sysobs::obs_trace_root!("net.dispatch");
            sysobs::obs_span_hot!("net.dispatch");
            ctx = sysobs::context::current_packed();
        }
        let batch = Batch {
            frames,
            submitted: Instant::now(),
            ctx,
        };
        self.offer(w, batch);
        self.target = self.target_batch_size();
    }

    /// Hands a batch to worker `w` without blocking: a full queue requeues
    /// the batch (bounded; overflow falls back to one blocking send so
    /// dispatcher memory cannot grow without limit).
    fn offer(&mut self, w: usize, batch: Batch) {
        if self.stalled[w].is_empty() {
            match self.senders[w].try_send(batch) {
                Ok(()) => {
                    self.dispatched[w] += 1;
                    return;
                }
                Err(TrySendError::Full(b)) => {
                    self.stalled[w].push_back(b);
                    self.pool.stalled_requeues += 1;
                    sysobs::obs_count!("net.dispatch.requeues", 1);
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("router worker {w} exited early");
                }
            }
        } else {
            self.stalled[w].push_back(batch);
            self.pool.stalled_requeues += 1;
            sysobs::obs_count!("net.dispatch.requeues", 1);
        }
        if self.stalled[w].len() > STALL_CAP_FACTOR * self.queue_depth {
            let b = self.stalled[w].pop_front().expect("nonempty requeue");
            assert!(
                self.senders[w].send(b).is_ok(),
                "router worker {w} exited early"
            );
            self.dispatched[w] += 1;
        }
    }

    /// Re-dispatches worker `w`'s requeued batches in order; when `block`
    /// is set the send waits on a full queue instead of giving up.
    fn pump_stalled(&mut self, w: usize, block: bool) {
        while let Some(batch) = self.stalled[w].pop_front() {
            match self.senders[w].try_send(batch) {
                Ok(()) => self.dispatched[w] += 1,
                Err(TrySendError::Full(b)) => {
                    if block {
                        assert!(
                            self.senders[w].send(b).is_ok(),
                            "router worker {w} exited early"
                        );
                        self.dispatched[w] += 1;
                    } else {
                        self.stalled[w].push_front(b);
                        return;
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("router worker {w} exited early");
                }
            }
        }
    }

    /// Live aggregate of every worker's counters (racy between workers —
    /// for monitoring; the authoritative totals come from
    /// [`ShardedRouter::finish`]).
    #[must_use]
    pub fn snapshot(&self) -> RouterStats {
        let per_worker: Vec<WorkerStats> = self.counters.iter().map(|c| c.snapshot()).collect();
        let mut totals = WorkerStats::default();
        for w in &per_worker {
            totals.merge(w);
        }
        RouterStats { per_worker, totals }
    }

    /// Flushes pending batches, shuts the workers down, and returns the
    /// final report (counters + latency distribution + pool counters).
    #[must_use]
    pub fn finish(mut self) -> RouterReport {
        self.flush();
        drop(std::mem::take(&mut self.senders)); // workers exit on disconnect
        let mut latencies = LogHistogram::new();
        let mut conntrack: Option<ConntrackStats> = None;
        let mut lb: Option<LbStats> = None;
        let mut faults = self.fault;
        for handle in std::mem::take(&mut self.handles) {
            let exit = handle.join().expect("router worker panicked");
            latencies.merge(&exit.latencies);
            if let Some(ct) = &exit.ct_stats {
                conntrack
                    .get_or_insert_with(ConntrackStats::default)
                    .merge(ct);
            }
            if let Some(l) = &exit.lb_stats {
                lb.get_or_insert_with(LbStats::default).merge(l);
            }
            faults.worker_digest = faults.worker_digest.rotate_left(1) ^ exit.fault_digest;
        }
        let stats = {
            let per_worker: Vec<WorkerStats> = self.counters.iter().map(|c| c.snapshot()).collect();
            let mut totals = WorkerStats::default();
            for w in &per_worker {
                totals.merge(w);
            }
            RouterStats { per_worker, totals }
        };
        faults.injected_stalls = stats.totals.injected_stalls;
        faults.dispatch_digest = self
            .dispatch_injector
            .as_ref()
            .map_or(0, |inj| inj.log().digest());
        let cow = match &self.backend {
            RouteBackend::Cow(t) => Some(CowEpochStats {
                publications: t.publications(),
                spine_recycled: t.spine_recycled(),
                pending_reclaim: t.pending_reclaim() as u64,
                pinned_readers: t.pinned_readers() as u64,
                advance_stalls: t.advance_stalls(),
            }),
            RouteBackend::Locked(_) => None,
        };
        RouterReport {
            stats,
            pool: self.pool,
            conntrack,
            lb,
            faults,
            cow,
            latencies,
        }
    }
}

/// Convenience driver: starts a router, feeds it the whole stream, and
/// returns the report plus the wall-clock duration (for throughput math).
/// Frames are borrowed — the router copies each into its pooled buffers,
/// so the caller's stream can be reused across runs without cloning.
#[must_use]
pub fn run_stream(
    table: TrieTable<PortId>,
    ports: usize,
    config: RouterConfig,
    frames: &[Vec<u8>],
) -> (RouterReport, Duration) {
    let t0 = Instant::now();
    let mut router = ShardedRouter::start(table, ports, config);
    for frame in frames {
        router.submit(frame);
    }
    let report = router.finish();
    (report, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DropReason;
    use sysrepr::packet::PacketBuilder;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn table() -> TrieTable<PortId> {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, 0).unwrap();
        t.insert(ip(10, 1, 0, 0), 16, 1).unwrap();
        t.insert(0, 0, 2).unwrap();
        t
    }

    fn stream(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                let flow = (i % 61) as u8;
                let mut b = PacketBuilder::udp()
                    .src_ip([172, 16, 0, flow])
                    .dst_ip([10, flow % 3, flow, 1])
                    .payload(&[0xAB; 48]);
                if i % 50 == 0 {
                    b = b.corrupt_checksum();
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn single_worker_conserves_and_counts() {
        let frames = stream(500);
        let (report, _) = run_stream(table(), 3, RouterConfig::default(), &frames);
        let t = &report.stats.totals;
        assert_eq!(t.total_frames(), 500);
        assert_eq!(t.dropped[DropReason::BadChecksum as usize], 10);
        assert_eq!(t.forwarded, 490);
        assert_eq!(t.per_port.iter().sum::<u64>(), 490);
        assert!(report.latency_ns(0.5) > 0);
        assert!(report.latency_ns(0.99) >= report.latency_ns(0.5));
        // 61 flows over 500 packets: the cache must be doing real work.
        assert!(t.cache_hits > 0, "repeated flows must hit the cache");
        assert!(report.cache_hit_rate() > 0.5, "{}", report.cache_hit_rate());
    }

    #[test]
    fn sharded_workers_agree_with_single_worker() {
        let frames = stream(1200);
        let single = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 1,
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        let sharded = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 4,
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        // Same totals no matter how the flows shard.
        assert_eq!(
            single.stats.totals.forwarded,
            sharded.stats.totals.forwarded
        );
        assert_eq!(single.stats.totals.dropped, sharded.stats.totals.dropped);
        assert_eq!(single.stats.totals.per_port, sharded.stats.totals.per_port);
        assert_eq!(sharded.stats.per_worker.len(), 4);
        // More than one worker actually saw traffic.
        let active = sharded
            .stats
            .per_worker
            .iter()
            .filter(|w| w.total_frames() > 0)
            .count();
        assert!(active > 1, "flow hashing must spread flows across workers");
    }

    #[test]
    fn cache_disabled_config_agrees_with_cached() {
        let frames = stream(800);
        let cached = run_stream(table(), 3, RouterConfig::default(), &frames).0;
        let uncached = run_stream(
            table(),
            3,
            RouterConfig {
                cache_slots: 0,
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        assert_eq!(
            cached.stats.totals.forwarded,
            uncached.stats.totals.forwarded
        );
        assert_eq!(cached.stats.totals.per_port, uncached.stats.totals.per_port);
        assert_eq!(uncached.stats.totals.cache_hits, 0);
        assert_eq!(uncached.stats.totals.cache_misses, 0);
    }

    #[test]
    fn buffers_recycle_after_warmup() {
        let frames = stream(4096);
        let (report, _) = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 1,
                batch_size: 32,
                ..RouterConfig::default()
            },
            &frames,
        );
        let pool = report.pool;
        assert!(
            pool.frames_reused > pool.frames_allocated * 2,
            "steady state must reuse, not allocate: {pool:?}"
        );
        assert!(
            pool.batches_reused > 0,
            "batch containers must recycle: {pool:?}"
        );
        // Allocation is bounded by what can be in flight at once, not by
        // stream length.
        assert!(
            pool.frames_allocated <= 4 * 8 * 32 + 64,
            "frame allocations must be bounded by in-flight capacity: {pool:?}"
        );
    }

    #[test]
    fn batch_occupancy_is_tracked() {
        let frames = stream(256);
        let cfg = RouterConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 4,
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, &frames);
        let w = &report.stats.per_worker[0];
        assert_eq!(w.occupancy_sum, 256);
        assert!(w.mean_occupancy() > 0.0 && w.mean_occupancy() <= 32.0);
    }

    #[test]
    fn uninstrumented_baseline_agrees_with_instrumented() {
        let frames = stream(800);
        let on = run_stream(table(), 3, RouterConfig::default(), &frames).0;
        let off = run_stream(
            table(),
            3,
            RouterConfig {
                instrument: false,
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        assert_eq!(on.stats.totals.forwarded, off.stats.totals.forwarded);
        assert_eq!(on.stats.totals.dropped, off.stats.totals.dropped);
        assert_eq!(on.stats.totals.per_port, off.stats.totals.per_port);
    }

    #[test]
    fn report_snapshot_conserves_frames() {
        let frames = stream(600);
        let n = frames.len() as u64;
        let (report, _) = run_stream(table(), 3, RouterConfig::default(), &frames);
        let snap = report.to_snapshot();
        assert_eq!(
            snap.counter("net.forwarded") + snap.counter_sum("net.drop."),
            n,
            "snapshot loses or double-counts frames: {snap}"
        );
        let hist = snap
            .hist("net.latency_ns")
            .expect("latency histogram present");
        assert_eq!(hist.count(), n, "every frame carries a latency sample");
        // Cache and pool counters ride along in the same snapshot.
        assert_eq!(
            snap.counter("net.cache.hits") + snap.counter("net.cache.misses"),
            snap.counter("net.forwarded") + snap.counter("net.drop.no-route"),
            "every routed decision is a cache hit or miss"
        );
        assert!(
            snap.counter("net.pool.frames_reused") + snap.counter("net.pool.frames_allocated") >= n
        );
    }

    #[test]
    fn snapshot_is_readable_mid_run() {
        let mut router = ShardedRouter::start(table(), 3, RouterConfig::default());
        for frame in stream(200) {
            router.submit(&frame);
        }
        router.flush();
        // Not a synchronization point — just must not panic or tear.
        let snap = router.snapshot();
        assert!(snap.totals.total_frames() <= 200);
        let report = router.finish();
        assert_eq!(report.stats.totals.total_frames(), 200);
    }

    fn tcp_stream(flows: usize, data_per_flow: usize) -> Vec<Vec<u8>> {
        use sysrepr::packet::{TCP_ACK, TCP_SYN};
        let mut frames = Vec::new();
        for f in 0..flows {
            #[allow(clippy::cast_possible_truncation)]
            let (hi, lo) = ((f >> 8) as u8, (f & 0xFF) as u8);
            let mk = |flags: u8| {
                PacketBuilder::tcp()
                    .src_ip([172, 16, hi, lo])
                    .dst_ip([10, lo % 3, hi, 1])
                    .src_port(20_000)
                    .dst_port(443)
                    .tcp_flags(flags)
                    .payload(&[0x5A; 32])
                    .build()
            };
            frames.push(mk(TCP_SYN));
            for _ in 0..data_per_flow {
                frames.push(mk(TCP_ACK));
            }
        }
        frames
    }

    #[test]
    fn tracked_router_admits_handshaked_flows_and_sheds_strays() {
        use crate::conntrack::ConntrackConfig;
        let flows = 40;
        let data = 4;
        let mut frames = tcp_stream(flows, data);
        // Stray bare ACKs on flows that never sent a SYN: must be shed
        // with NoFlow, per worker, without disturbing tracked flows.
        for s in 0..10u8 {
            frames.push(
                PacketBuilder::tcp()
                    .src_ip([9, 9, 9, s])
                    .dst_ip([10, 0, s, 1])
                    .build(),
            );
        }
        let cfg = RouterConfig {
            workers: 4,
            conntrack: Some(ConntrackConfig::default()),
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, &frames);
        let t = &report.stats.totals;
        assert_eq!(t.total_frames(), frames.len() as u64);
        assert_eq!(t.forwarded, (flows * (1 + data)) as u64);
        assert_eq!(t.dropped[DropReason::NoFlow as usize], 10);
        let ct = report.conntrack.expect("tracking ran");
        assert_eq!(ct.flows_created, flows as u64);
        assert_eq!(ct.flows_promoted, flows as u64);
        assert_eq!(ct.invariant_violations, 0);
        // Flow sharding keeps each flow's packets on one worker, so the
        // tracked totals agree with a single-worker run.
        let single = run_stream(
            table(),
            3,
            RouterConfig {
                workers: 1,
                conntrack: Some(ConntrackConfig::default()),
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        assert_eq!(single.stats.totals.forwarded, t.forwarded);
        assert_eq!(single.stats.totals.dropped, t.dropped);
    }

    #[test]
    fn untracked_router_reports_no_conntrack() {
        let frames = stream(100);
        let (report, _) = run_stream(table(), 3, RouterConfig::default(), &frames);
        assert!(report.conntrack.is_none());
        assert_eq!(report.faults, NetFaultStats::default());
    }

    #[test]
    fn injected_frame_drops_are_counted_not_lost() {
        use sysfault::{FaultPlan, Schedule};
        let frames = stream(400);
        let cfg = RouterConfig {
            fault_plan: Some(
                FaultPlan::new(0xD0_D0).with_site(SITE_NET_FRAME_DROP, Schedule::EveryNth(10)),
            ),
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, &frames);
        assert_eq!(report.faults.injected_frame_drops, 40);
        // Conservation including the injected drops: nothing vanishes
        // unaccounted.
        assert_eq!(
            report.stats.totals.total_frames() + report.faults.injected_frame_drops,
            frames.len() as u64
        );
    }

    #[test]
    fn injected_stalls_and_recycle_loss_degrade_gracefully() {
        use crate::conntrack::ConntrackConfig;
        use sysfault::{FaultPlan, Schedule};
        let frames = tcp_stream(60, 30);
        let plan = FaultPlan::new(0xBEEF)
            .with_site(SITE_NET_WORKER_STALL, Schedule::EveryNth(7))
            .with_site(SITE_NET_RECYCLE_LOSS, Schedule::EveryNth(5));
        let cfg = RouterConfig {
            workers: 2,
            batch_size: 16,
            conntrack: Some(ConntrackConfig::default()),
            fault_plan: Some(plan),
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, &frames);
        // Every frame still forwarded or attributed despite stalls and
        // lost buffers — the campaign degrades service, never correctness.
        assert_eq!(report.stats.totals.total_frames(), frames.len() as u64);
        assert!(report.faults.injected_stalls > 0, "{:?}", report.faults);
        assert!(report.faults.recycle_losses > 0, "{:?}", report.faults);
        let ct = report.conntrack.expect("tracking ran");
        assert_eq!(ct.invariant_violations, 0);
    }

    #[test]
    fn fault_campaigns_replay_identically_from_their_seed() {
        use crate::conntrack::ConntrackConfig;
        use sysfault::{FaultPlan, Schedule};
        let frames = tcp_stream(50, 10);
        let mk = |seed: u64| RouterConfig {
            workers: 2,
            conntrack: Some(ConntrackConfig::default()),
            fault_plan: Some(
                FaultPlan::new(seed)
                    .with_site(SITE_NET_FRAME_DROP, Schedule::Probability(0.02))
                    .with_site(crate::conntrack::SITE_CT_TABLE_FULL, Schedule::EveryNth(40)),
            ),
            ..RouterConfig::default()
        };
        let a = run_stream(table(), 3, mk(77), &frames).0;
        let b = run_stream(table(), 3, mk(77), &frames).0;
        assert_eq!(a.faults.dispatch_digest, b.faults.dispatch_digest);
        assert_eq!(a.faults.worker_digest, b.faults.worker_digest);
        assert_eq!(a.faults.injected_frame_drops, b.faults.injected_frame_drops);
        let c = run_stream(table(), 3, mk(78), &frames).0;
        assert_ne!(
            (a.faults.dispatch_digest, a.faults.worker_digest),
            (c.faults.dispatch_digest, c.faults.worker_digest),
            "different seed, different campaign"
        );
    }

    #[test]
    fn route_modes_agree_on_a_static_stream() {
        let frames = stream(800);
        let cow = run_stream(table(), 3, RouterConfig::default(), &frames).0;
        let locked = run_stream(
            table(),
            3,
            RouterConfig {
                route_mode: RouteMode::LockedGenerationClear,
                ..RouterConfig::default()
            },
            &frames,
        )
        .0;
        assert_eq!(cow.stats.totals.forwarded, locked.stats.totals.forwarded);
        assert_eq!(cow.stats.totals.dropped, locked.stats.totals.dropped);
        assert_eq!(cow.stats.totals.per_port, locked.stats.totals.per_port);
    }

    #[test]
    fn live_updates_reach_workers_in_both_modes() {
        for mode in [RouteMode::CowEpoch, RouteMode::LockedGenerationClear] {
            let cfg = RouterConfig {
                workers: 2,
                route_mode: mode,
                ..RouterConfig::default()
            };
            let mut router = ShardedRouter::start(table(), 4, cfg);
            let updater = router.updater();
            let dst = [10u8, 200, 7, 7]; // matches only the 10/8 → port 0
            let mk = |s: u8| {
                PacketBuilder::udp()
                    .src_ip([172, 16, 1, s])
                    .dst_ip(dst)
                    .build()
            };
            for s in 0..50u8 {
                router.submit(&mk(s));
            }
            router.flush();
            // Flush dispatches but does not wait; the update below must not
            // overtake in-flight batches or the port split is ambiguous.
            while router.snapshot().totals.total_frames() < 50 {
                std::thread::yield_now();
            }
            let before = updater.publications();
            // Redirect 10.200/16 to port 3; every batch pinned (or locked)
            // after this call returns must route dst to port 3.
            assert_eq!(
                updater.insert(ip(10, 200, 0, 0), 16, 3).unwrap(),
                None,
                "{mode:?}"
            );
            assert_eq!(updater.publications(), before + 1, "{mode:?}");
            // A value-preserving re-insert publishes nothing: the workers'
            // caches are not nuked a second time.
            assert_eq!(
                updater.insert(ip(10, 200, 0, 0), 16, 3).unwrap(),
                Some(3),
                "{mode:?}"
            );
            assert_eq!(updater.publications(), before + 1, "{mode:?}");
            for s in 0..50u8 {
                router.submit(&mk(s));
            }
            let report = router.finish();
            let t = &report.stats.totals;
            assert_eq!(t.total_frames(), 100, "{mode:?}");
            assert_eq!(t.per_port[0], 50, "pre-update frames → /8 ({mode:?})");
            assert_eq!(t.per_port[3], 50, "post-update frames → new /16 ({mode:?})");
            assert!(
                t.cache_invalidations >= 1,
                "the publication must invalidate worker caches ({mode:?})"
            );
        }
    }

    #[test]
    fn cow_mode_attributes_churn_misses() {
        // One worker, repeated flows, then a route flap: the refill misses
        // after the flap must be attributed to invalidation.
        let cfg = RouterConfig {
            workers: 1,
            ..RouterConfig::default()
        };
        let mut router = ShardedRouter::start(table(), 4, cfg);
        let updater = router.updater();
        let frames = stream(400);
        for f in &frames {
            router.submit(f);
        }
        router.flush();
        updater.insert(ip(10, 250, 0, 0), 16, 3).unwrap();
        for f in &frames {
            router.submit(f);
        }
        let report = router.finish();
        let t = &report.stats.totals;
        assert!(
            t.cache_invalidation_misses > 0,
            "post-flap refills must be attributed: {t:?}"
        );
        assert!(t.cache_invalidation_misses <= t.cache_misses);
    }

    #[test]
    fn tiny_queue_and_batch_still_conserve() {
        // Worst case for the requeue path: 4 workers, queue depth 1,
        // batch 1 — every dispatch races a full queue.
        let frames = stream(300);
        let cfg = RouterConfig {
            workers: 4,
            batch_size: 1,
            queue_depth: 1,
            ..RouterConfig::default()
        };
        let (report, _) = run_stream(table(), 3, cfg, &frames);
        assert_eq!(report.stats.totals.total_frames(), 300);
        assert!(
            report.pool.stalled_requeues > 0,
            "depth-1 queues must exercise the requeue path: {:?}",
            report.pool
        );
    }
}
