//! L4 load balancing over the conntrack layer.
//!
//! A virtual endpoint (VIP) fronts a weighted pool of backends. The first
//! packet of a flow picks a backend by **weighted rendezvous hashing** over
//! the flow's canonical [`FlowKey::hash`] — stable under pool changes (only
//! flows whose backend left move), no per-flow ring state. The chosen
//! rewrite is stored in the flow's conntrack entry ([`NatRewrite`], twin
//! slots for both tuple directions), so every later packet rewrites from
//! one lookup: destination NAT toward the backend on the forward path,
//! source NAT back to the VIP on the reply path, both via the mutable
//! [`sysrepr::packet`] views with RFC 1624 incremental checksum fixup —
//! zero copies, zero allocations in steady state.
//!
//! Health is active: a seeded probe schedule (the [`SITE_LB_PROBE_FAIL`]
//! fault site) drives per-backend up/down verdicts with `fall`/`rise`
//! hysteresis, so backend death — and the failover after it — replays
//! exactly from a [`sysfault::FaultPlan`]. A dead backend's flows are
//! ejected from conntrack ([`Conntrack::eject_backend`]) so client retries
//! re-select immediately; a draining backend takes no new flows but keeps
//! serving established ones — drain never strands a connection.

use crate::cache::FlowCache;
use crate::conntrack::{Conntrack, FlowKey, FlowState, NatRewrite, TcpSummary};
use crate::lpm::Routes;
use crate::pipeline::{self, BatchStats, DropReason};
use sysfault::FaultInjector;
use sysobs::fnv1a;
use sysrepr::packet::{EthernetViewMut, IPPROTO_TCP, IPPROTO_UDP};

/// Fault site: one backend's health probe fails (the backend looks dead to
/// the prober). Schedule it per-plan to script backend death and recovery.
pub const SITE_LB_PROBE_FAIL: &str = "net.lb.probe_fail";

/// One backend's static identity: where rewritten flows go, and its
/// rendezvous weight (relative share of new flows; must be ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Backend address.
    pub ip: u32,
    /// Backend port.
    pub port: u16,
    /// Rendezvous weight (share of new flows relative to the pool).
    pub weight: u32,
}

/// A backend's health/assignment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Healthy: takes new flows.
    Up = 0,
    /// Administratively draining: serves established flows, takes no new
    /// ones. Probes still run (a draining backend can still die).
    Draining = 1,
    /// Failed `fall` consecutive probes: takes nothing; its flows were
    /// ejected so retries re-select.
    Down = 2,
}

/// Sizing and policy knobs for one [`BackendPool`].
#[derive(Debug, Clone)]
pub struct LbConfig {
    /// The advertised virtual address flows dial.
    pub vip: u32,
    /// The advertised virtual port.
    pub vport: u16,
    /// The backend set (≥ 1 entry, weights ≥ 1).
    pub backends: Vec<BackendConfig>,
    /// Interval between health-probe rounds, ns.
    pub probe_interval_ns: u64,
    /// Consecutive probe failures before a backend is marked [`BackendState::Down`].
    pub fall: u32,
    /// Consecutive probe successes before a down backend returns to
    /// [`BackendState::Up`].
    pub rise: u32,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            vip: u32::from_be_bytes([10, 200, 0, 1]),
            vport: 80,
            backends: Vec::new(),
            probe_interval_ns: 50_000_000,
            fall: 3,
            rise: 2,
        }
    }
}

/// One backend's live record: config plus probe hysteresis counters.
#[derive(Debug, Clone, Copy)]
struct Backend {
    cfg: BackendConfig,
    state: BackendState,
    /// Consecutive probe failures (reset by any success).
    fails: u32,
    /// Consecutive probe successes (reset by any failure).
    oks: u32,
}

/// Counters one pool accumulates (single-owner plain integers, merged
/// across workers like [`crate::conntrack::ConntrackStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LbStats {
    /// New flows assigned a backend.
    pub assigned: u64,
    /// Forward-path rewrites (client → VIP rewritten to backend).
    pub rewrites_to_backend: u64,
    /// Reply-path rewrites (backend → client rewritten to VIP).
    pub rewrites_to_client: u64,
    /// Tracked packets that matched a NAT entry but needed no rewrite
    /// (hairpin: the client addressed the backend directly).
    pub hairpin_passthrough: u64,
    /// VIP flows shed because no backend was up.
    pub no_backend: u64,
    /// Individual backend probes run.
    pub probes: u64,
    /// Probes that failed.
    pub probe_failures: u64,
    /// Up/Draining → Down transitions.
    pub ejections: u64,
    /// Down → Up transitions.
    pub recoveries: u64,
    /// Conntrack entries freed by backend-death ejection.
    pub flows_ejected: u64,
}

impl LbStats {
    /// Accumulates another pool's counters.
    pub fn merge(&mut self, other: &LbStats) {
        self.assigned += other.assigned;
        self.rewrites_to_backend += other.rewrites_to_backend;
        self.rewrites_to_client += other.rewrites_to_client;
        self.hairpin_passthrough += other.hairpin_passthrough;
        self.no_backend += other.no_backend;
        self.probes += other.probes;
        self.probe_failures += other.probe_failures;
        self.ejections += other.ejections;
        self.recoveries += other.recoveries;
        self.flows_ejected += other.flows_ejected;
    }

    /// Renders the counters under `net.lb.*` for the unified snapshot.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("net.lb.assigned", self.assigned);
        snap.set_counter("net.lb.rewrites_to_backend", self.rewrites_to_backend);
        snap.set_counter("net.lb.rewrites_to_client", self.rewrites_to_client);
        snap.set_counter("net.lb.hairpin_passthrough", self.hairpin_passthrough);
        snap.set_counter("net.lb.no_backend", self.no_backend);
        snap.set_counter("net.lb.probes", self.probes);
        snap.set_counter("net.lb.probe_failures", self.probe_failures);
        snap.set_counter("net.lb.ejections", self.ejections);
        snap.set_counter("net.lb.recoveries", self.recoveries);
        snap.set_counter("net.lb.flows_ejected", self.flows_ejected);
        snap
    }
}

/// One worker's backend pool: selection, health, and rewrite bookkeeping.
/// Single-owner, like the worker's [`Conntrack`] shard; per-worker pools
/// probe independently off derived injector seeds, so a scripted death
/// replays per worker.
#[derive(Debug)]
pub struct BackendPool {
    cfg: LbConfig,
    backends: Vec<Backend>,
    next_probe_ns: u64,
    injector: Option<FaultInjector>,
    stats: LbStats,
    /// Backends downed by the most recent probe round (scratch, reused).
    downed: Vec<u16>,
}

impl BackendPool {
    /// Builds a pool over `cfg.backends`.
    ///
    /// # Panics
    ///
    /// Panics if the backend set is empty or any weight is zero.
    #[must_use]
    pub fn new(cfg: LbConfig) -> Self {
        assert!(
            !cfg.backends.is_empty(),
            "lb pool needs at least one backend"
        );
        assert!(
            cfg.backends.iter().all(|b| b.weight >= 1),
            "backend weights must be >= 1"
        );
        assert!(
            u16::try_from(cfg.backends.len()).is_ok(),
            "backend index must fit u16"
        );
        let backends = cfg
            .backends
            .iter()
            .map(|&cfg| Backend {
                cfg,
                state: BackendState::Up,
                fails: 0,
                oks: 0,
            })
            .collect();
        BackendPool {
            cfg,
            backends,
            next_probe_ns: 0,
            injector: None,
            stats: LbStats::default(),
            downed: Vec::new(),
        }
    }

    /// Attaches a seeded injector for [`SITE_LB_PROBE_FAIL`].
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The pool's configuration.
    #[must_use]
    pub fn config(&self) -> &LbConfig {
        &self.cfg
    }

    /// The pool's counters so far.
    #[must_use]
    pub fn stats(&self) -> &LbStats {
        &self.stats
    }

    /// Number of configured backends.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backends are configured (never, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Backends currently [`BackendState::Up`].
    #[must_use]
    pub fn healthy(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.state == BackendState::Up)
            .count()
    }

    /// A backend's current state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn state(&self, idx: u16) -> BackendState {
        self.backends[usize::from(idx)].state
    }

    /// A backend's static config.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn backend(&self, idx: u16) -> BackendConfig {
        self.backends[usize::from(idx)].cfg
    }

    /// Starts draining a backend: established flows keep flowing, no new
    /// flows are assigned. No-op unless the backend is up.
    pub fn drain(&mut self, idx: u16) {
        let b = &mut self.backends[usize::from(idx)];
        if b.state == BackendState::Up {
            b.state = BackendState::Draining;
        }
    }

    /// Administratively forces a backend [`BackendState::Down`] — the
    /// scenario engine's scripted kill, bypassing probe hysteresis. As
    /// with a probe-driven death, ejecting the backend's flows
    /// ([`Conntrack::eject_backend`]) is the caller's job. Returns `true`
    /// if the backend transitioned (it was not already down). Note that
    /// passing probes will still resurrect it after `rise` successes;
    /// scenarios that need a permanent death set `rise` to `u32::MAX`.
    pub fn force_down(&mut self, idx: u16) -> bool {
        let b = &mut self.backends[usize::from(idx)];
        if b.state == BackendState::Down {
            return false;
        }
        b.state = BackendState::Down;
        b.fails = 0;
        b.oks = 0;
        self.stats.ejections += 1;
        sysobs::obs_count!("net.lb.ejections", 1);
        true
    }

    /// Administratively returns a down or draining backend to
    /// [`BackendState::Up`] with cleared hysteresis counters. Returns
    /// `true` if the backend transitioned.
    pub fn revive(&mut self, idx: u16) -> bool {
        let b = &mut self.backends[usize::from(idx)];
        if b.state == BackendState::Up {
            return false;
        }
        if b.state == BackendState::Down {
            self.stats.recoveries += 1;
        }
        b.state = BackendState::Up;
        b.fails = 0;
        b.oks = 0;
        true
    }

    /// Digest of the probe-site fault log so far (0 with no injector
    /// attached): the pool's contribution to a scenario's replay digest.
    #[must_use]
    pub fn fault_digest(&self) -> u64 {
        self.injector.as_ref().map_or(0, |inj| inj.log().digest())
    }

    /// Weighted rendezvous selection for a flow: each up backend scores
    /// `weight / -ln(u)` with `u` drawn from FNV-1a over `(flow_hash,
    /// backend identity)`, highest score wins. The standard weighted-HRW
    /// construction: per-flow-deterministic, proportional to weight, and
    /// minimally disruptive — flows only move when *their* backend leaves
    /// the up set.
    #[must_use]
    pub fn select(&self, flow_hash: u64) -> Option<u16> {
        let mut best: Option<(f64, u16)> = None;
        for (i, b) in self.backends.iter().enumerate() {
            if b.state != BackendState::Up {
                continue;
            }
            let mut seed = [0u8; 16];
            seed[..8].copy_from_slice(&flow_hash.to_le_bytes());
            seed[8..12].copy_from_slice(&b.cfg.ip.to_be_bytes());
            seed[12..14].copy_from_slice(&b.cfg.port.to_be_bytes());
            seed[14..].copy_from_slice(&u16::try_from(i).expect("len checked").to_le_bytes());
            // 53 high bits -> u in (0, 1]; nudge off exact zero so ln(u)
            // stays finite.
            #[allow(clippy::cast_precision_loss)]
            let u = ((fnv1a(&seed) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            let score = f64::from(b.cfg.weight) / -u.ln();
            #[allow(clippy::cast_possible_truncation)]
            let idx = i as u16;
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, idx));
            }
        }
        best.map(|(_, i)| i)
    }

    /// True when a probe round is due.
    #[must_use]
    pub fn probe_due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_probe_ns
    }

    /// Runs a probe round if one is due, returning the backends that just
    /// went down (empty otherwise). Each backend's verdict comes from the
    /// seeded [`SITE_LB_PROBE_FAIL`] site — no injector means every probe
    /// succeeds — with `fall`/`rise` consecutive-count hysteresis, so a
    /// single flaky probe neither kills nor resurrects a backend.
    pub fn maybe_probe(&mut self, now_ns: u64) -> &[u16] {
        self.downed.clear();
        if now_ns < self.next_probe_ns {
            return &self.downed;
        }
        self.next_probe_ns = now_ns.saturating_add(self.cfg.probe_interval_ns);
        for i in 0..self.backends.len() {
            self.stats.probes += 1;
            let failed = self
                .injector
                .as_mut()
                .is_some_and(|inj| inj.should_fail(SITE_LB_PROBE_FAIL));
            let b = &mut self.backends[i];
            if failed {
                self.stats.probe_failures += 1;
                b.oks = 0;
                b.fails += 1;
                if b.fails >= self.cfg.fall && b.state != BackendState::Down {
                    b.state = BackendState::Down;
                    self.stats.ejections += 1;
                    sysobs::obs_count!("net.lb.ejections", 1);
                    self.downed
                        .push(u16::try_from(i).expect("backend index fits u16"));
                }
            } else {
                b.fails = 0;
                b.oks += 1;
                if b.state == BackendState::Down && b.oks >= self.cfg.rise {
                    b.state = BackendState::Up;
                    self.stats.recoveries += 1;
                }
            }
        }
        &self.downed
    }

    /// Records conntrack entries freed by a backend-death ejection.
    pub fn note_flows_ejected(&mut self, n: usize) {
        self.stats.flows_ejected += n as u64;
    }
}

/// Which direction a NAT'd packet rewrites in, decided by comparing its
/// endpoints against the stored [`NatRewrite`] — never by the canonical
/// key, which a hairpinned flow can collide with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NatDir {
    /// Client → VIP: rewrite the destination to the backend.
    ToBackend,
    /// Backend → client: rewrite the source back to the VIP.
    ToClient,
    /// Tracked, but already addressed correctly (hairpin) — forward as-is.
    Passthrough,
}

/// Classifies a packet against its flow's rewrite tuple. Reply direction is
/// checked first: on a degenerate hairpin (client == backend host) the
/// reply's endpoints also match "client dialing the backend", and replies
/// must win that tie or the VIP source rewrite never happens.
fn nat_dir(nat: &NatRewrite, src: u32, sport: u16, dst: u32, dport: u16) -> NatDir {
    if src == nat.backend_ip
        && sport == nat.backend_port
        && dst == nat.client_ip
        && dport == nat.client_port
    {
        NatDir::ToClient
    } else if dst == nat.vip && dport == nat.vport {
        NatDir::ToBackend
    } else {
        NatDir::Passthrough
    }
}

/// Applies the rewrite for `dir` and the TTL decrement in one parse:
/// address via the IPv4 header (incremental header + transport checksum
/// fixup), port via the transport view (UDP zero-checksum semantics
/// respected), TTL with its own RFC 1624 fixup. The TTL gate runs first,
/// so an expiring frame drops with the buffer untouched. The frame was
/// validated upstream; a parse failure here is a [`DropReason::Malformed`]
/// bug guard.
fn apply_rewrite_ttl(frame: &mut [u8], nat: &NatRewrite, dir: NatDir) -> Result<(), DropReason> {
    let mut ip = EthernetViewMut::parse(frame)
        .and_then(EthernetViewMut::ipv4_mut)
        .map_err(|_| DropReason::Malformed)?;
    if ip.ttl() <= 1 {
        return Err(DropReason::TtlExpired);
    }
    match dir {
        NatDir::ToBackend => ip
            .dnat(nat.backend_ip.to_be_bytes(), nat.backend_port)
            .map_err(|_| DropReason::Malformed)?,
        NatDir::ToClient => ip
            .snat(nat.vip.to_be_bytes(), nat.vport)
            .map_err(|_| DropReason::Malformed)?,
        NatDir::Passthrough => {}
    }
    ip.decrement_ttl().map_err(|_| DropReason::Malformed)?;
    Ok(())
}

/// What the decision phase concluded about one frame: the rewrite to apply
/// (if any) and the post-rewrite `(src, dst)` the route and cache key use.
struct Verdict {
    rewrite: Option<(NatRewrite, NatDir)>,
    route_src: u32,
    route_dst: u32,
}

/// The load-balanced tracked path: validate, classify against the VIP and
/// the flow's stored rewrite, drive conntrack (TCP state machine, or a UDP
/// recency refresh), rewrite in place, route on the *post-rewrite*
/// destination, and decrement TTL. Non-VIP traffic behaves exactly like
/// [`pipeline::route_frame_tracked`].
///
/// # Errors
///
/// The [`DropReason`] for any frame that fails validation, admission,
/// backend selection, or routing.
#[allow(clippy::too_many_lines)]
pub fn route_frame_lb<T: Copy, R: Routes<T>>(
    frame: &mut [u8],
    table: &R,
    cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    pool: &mut BackendPool,
    now_ns: u64,
) -> Result<T, DropReason> {
    // Phase 1: immutable parse — lift out everything the decision needs.
    let (src, dst, sport, dport, proto, seg) = {
        let ipv4 = pipeline::validate_ipv4(frame)?;
        let src = u32::from_be_bytes(ipv4.src());
        let dst = ipv4.dst_u32();
        match ipv4.protocol() {
            IPPROTO_TCP => {
                let tcp = ipv4.tcp().map_err(|_| DropReason::Malformed)?;
                let seg = TcpSummary::from_view(&tcp);
                (
                    src,
                    dst,
                    tcp.src_port(),
                    tcp.dst_port(),
                    IPPROTO_TCP,
                    Some(seg),
                )
            }
            IPPROTO_UDP => {
                let udp = ipv4.udp().map_err(|_| DropReason::Malformed)?;
                (src, dst, udp.src_port(), udp.dst_port(), IPPROTO_UDP, None)
            }
            p => (src, dst, 0, 0, p, None),
        }
    };
    // Phase 2: decide — conntrack admission and backend selection, one
    // hash walk per packet (admission and the NAT lookup are fused).
    let vip_dst = dst == pool.cfg.vip && dport == pool.cfg.vport;
    let verdict = match (proto, seg) {
        (IPPROTO_TCP, Some(seg)) => {
            let key = FlowKey::canonical(src, dst, sport, dport, IPPROTO_TCP);
            // VIP-destined flows are created by assignment only, never by
            // plain admission — `create` is the guard.
            match ct.admit_tcp_nat(&key, seg, now_ns, !vip_dst) {
                Ok(Some(nat)) => classify(pool, &nat, src, sport, dst, dport),
                Ok(None) => Verdict {
                    rewrite: None,
                    route_src: src,
                    route_dst: dst,
                },
                // Only a flow-creating SYN may claim a backend; everything
                // else to the VIP without state is shed like any other
                // stateless TCP (the conntrack stance, applied to the VIP).
                Err(DropReason::NoFlow) if vip_dst && seg.syn && !seg.ack => {
                    assign(pool, ct, &key, src, sport, dst, dport, proto, now_ns)?
                }
                Err(e) => return Err(e),
            }
        }
        (IPPROTO_UDP, _) => {
            let key = FlowKey::canonical(src, dst, sport, dport, IPPROTO_UDP);
            if let Some(nat) = ct.refresh_nat(&key, now_ns) {
                classify(pool, &nat, src, sport, dst, dport)
            } else if vip_dst {
                // UDP has no handshake: the first datagram claims a backend
                // and the entry is born established.
                assign(pool, ct, &key, src, sport, dst, dport, proto, now_ns)?
            } else {
                // Non-VIP UDP stays untracked, as on the plain tracked path.
                Verdict {
                    rewrite: None,
                    route_src: src,
                    route_dst: dst,
                }
            }
        }
        _ => Verdict {
            rewrite: None,
            route_src: src,
            route_dst: dst,
        },
    };
    // Phase 3: route on the post-rewrite pair, then mutate. Routing first
    // keeps NoRoute drops from leaving a half-rewritten frame behind.
    let hop = match cache {
        Some(c) => c
            .lookup_or_route(table, verdict.route_src, verdict.route_dst)
            .ok_or(DropReason::NoRoute),
        None => table.lookup(verdict.route_dst).ok_or(DropReason::NoRoute),
    }?;
    match verdict.rewrite {
        Some((nat, dir)) => {
            apply_rewrite_ttl(frame, &nat, dir)?;
            match dir {
                NatDir::ToBackend => pool.stats.rewrites_to_backend += 1,
                NatDir::ToClient => pool.stats.rewrites_to_client += 1,
                NatDir::Passthrough => {}
            }
        }
        None => pipeline::decrement_ttl(frame)?,
    }
    Ok(hop)
}

/// Builds the verdict for a packet whose flow already carries a rewrite.
fn classify(
    pool: &mut BackendPool,
    nat: &NatRewrite,
    src: u32,
    sport: u16,
    dst: u32,
    dport: u16,
) -> Verdict {
    match nat_dir(nat, src, sport, dst, dport) {
        NatDir::ToBackend => Verdict {
            rewrite: Some((*nat, NatDir::ToBackend)),
            route_src: src,
            route_dst: nat.backend_ip,
        },
        NatDir::ToClient => Verdict {
            rewrite: Some((*nat, NatDir::ToClient)),
            route_src: nat.vip,
            route_dst: dst,
        },
        NatDir::Passthrough => {
            pool.stats.hairpin_passthrough += 1;
            Verdict {
                rewrite: None,
                route_src: src,
                route_dst: dst,
            }
        }
    }
}

/// Selects a backend for a new VIP flow and installs its twin NAT entries.
#[allow(clippy::too_many_arguments)]
fn assign(
    pool: &mut BackendPool,
    ct: &mut Conntrack,
    key: &FlowKey,
    src: u32,
    sport: u16,
    dst: u32,
    dport: u16,
    proto: u8,
    now_ns: u64,
) -> Result<Verdict, DropReason> {
    let Some(idx) = pool.select(key.hash()) else {
        pool.stats.no_backend += 1;
        return Err(DropReason::NoBackend);
    };
    let b = pool.backend(idx);
    let nat = NatRewrite {
        client_ip: src,
        client_port: sport,
        vip: dst,
        vport: dport,
        backend_ip: b.ip,
        backend_port: b.port,
        backend: idx,
    };
    let reply = FlowKey::canonical(src, b.ip, sport, b.port, proto);
    let state = if proto == IPPROTO_TCP {
        FlowState::SynSeen
    } else {
        FlowState::Established
    };
    ct.insert_nat(key, &reply, nat, state, now_ns)?;
    pool.stats.assigned += 1;
    Ok(Verdict {
        rewrite: Some((nat, NatDir::ToBackend)),
        route_src: src,
        route_dst: nat.backend_ip,
    })
}

/// Runs a whole batch through [`route_frame_lb`] — the sharded router's
/// path when load balancing is enabled. Mirrors batch counters and the
/// pool's health gauges into the `sysobs` registry, one update per batch.
pub fn process_batch_lb<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    pool: &mut BackendPool,
    now_ns: u64,
    forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    sysobs::obs_span!("net.batch");
    let stats = process_batch_lb_uninstrumented(frames, table, cache, ct, pool, now_ns, forward);
    pipeline::mirror_batch_stats(&stats);
    if sysobs::metrics_on() {
        #[allow(clippy::cast_possible_wrap)]
        {
            sysobs::registry()
                .gauge("net.lb.healthy_backends")
                .set(pool.healthy() as i64);
            sysobs::registry().gauge("net.ct.live").set(ct.len() as i64);
        }
    }
    stats
}

/// [`process_batch_lb`] with no observability hooks — the compiled-baseline
/// balanced path the E17 bench measures.
pub fn process_batch_lb_uninstrumented<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    mut cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    pool: &mut BackendPool,
    now_ns: u64,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    let mut stats = BatchStats::default();
    for frame in frames.iter_mut() {
        pipeline::tally(
            &mut stats,
            route_frame_lb(
                frame.as_mut(),
                table,
                cache.as_deref_mut(),
                ct,
                pool,
                now_ns,
            ),
            &mut forward,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conntrack::{ConntrackConfig, EvictCause};
    use crate::lpm::TrieTable;
    use sysfault::{FaultPlan, Schedule};
    use sysrepr::packet::{EthernetView, PacketBuilder, TCP_ACK, TCP_SYN};

    const VIP: [u8; 4] = [10, 200, 0, 1];
    const B0: [u8; 4] = [10, 50, 0, 10];
    const B1: [u8; 4] = [10, 50, 0, 11];
    const B2: [u8; 4] = [10, 50, 0, 12];

    fn pool_config() -> LbConfig {
        LbConfig {
            vip: u32::from_be_bytes(VIP),
            vport: 80,
            backends: vec![
                BackendConfig {
                    ip: u32::from_be_bytes(B0),
                    port: 8080,
                    weight: 1,
                },
                BackendConfig {
                    ip: u32::from_be_bytes(B1),
                    port: 8080,
                    weight: 1,
                },
                BackendConfig {
                    ip: u32::from_be_bytes(B2),
                    port: 8080,
                    weight: 2,
                },
            ],
            probe_interval_ns: 1_000_000,
            fall: 2,
            rise: 2,
        }
    }

    fn table() -> TrieTable<u16> {
        let mut t = TrieTable::new();
        // Backends live under 10.50/16, clients under 10.9/16, VIP /32.
        t.insert(u32::from_be_bytes([10, 50, 0, 0]), 16, 1).unwrap();
        t.insert(u32::from_be_bytes([10, 9, 0, 0]), 16, 2).unwrap();
        t.insert(u32::from_be_bytes(VIP), 32, 3).unwrap();
        t
    }

    fn syn(client: [u8; 4], sport: u16) -> Vec<u8> {
        PacketBuilder::tcp()
            .src_ip(client)
            .dst_ip(VIP)
            .src_port(sport)
            .dst_port(80)
            .tcp_flags(TCP_SYN)
            .build()
    }

    fn parsed(frame: &[u8]) -> (u32, u32, u16, u16) {
        let ip = EthernetView::parse(frame).unwrap().ipv4().unwrap();
        let tcp = ip.tcp().unwrap();
        (
            u32::from_be_bytes(ip.src()),
            ip.dst_u32(),
            tcp.src_port(),
            tcp.dst_port(),
        )
    }

    #[test]
    fn rendezvous_selection_is_stable_and_weighted() {
        let pool = BackendPool::new(pool_config());
        let mut counts = [0u32; 3];
        for f in 0..6000u64 {
            let h = sysobs::fnv1a(&f.to_le_bytes());
            let a = pool.select(h).unwrap();
            assert_eq!(pool.select(h), Some(a), "selection must be deterministic");
            counts[usize::from(a)] += 1;
        }
        // Backend 2 has weight 2: roughly half the flows, and every backend
        // gets a nontrivial share.
        assert!(counts.iter().all(|&c| c > 600), "counts: {counts:?}");
        assert!(
            counts[2] > counts[0] && counts[2] > counts[1],
            "weight 2 must attract the largest share: {counts:?}"
        );
    }

    #[test]
    fn down_backend_moves_only_its_flows() {
        let mut pool = BackendPool::new(pool_config());
        let hashes: Vec<u64> = (0..2000u64)
            .map(|f| sysobs::fnv1a(&f.to_le_bytes()))
            .collect();
        let before: Vec<u16> = hashes.iter().map(|&h| pool.select(h).unwrap()).collect();
        // Kill backend 2 via scripted probes: with 3 probes per round,
        // EveryNth(3) fails exactly the third (backend 2) every round, and
        // fall = 2 downs it after the second round.
        let plan = FaultPlan::new(7).with_site(SITE_LB_PROBE_FAIL, Schedule::EveryNth(3));
        pool = pool.with_injector(sysfault::FaultInjector::new(plan));
        pool.maybe_probe(0);
        let downed = pool.maybe_probe(2_000_000).to_vec();
        assert_eq!(downed, vec![2], "EveryNth(3) fails backend 2 every round");
        for (h, old) in hashes.iter().zip(&before) {
            let new = pool.select(*h).unwrap();
            if *old != 2 {
                assert_eq!(new, *old, "flows on live backends must not move");
            } else {
                assert_ne!(new, 2, "flows on the dead backend must move");
            }
        }
    }

    #[test]
    fn draining_backend_takes_no_new_flows_but_keeps_established() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        // Establish one flow; find which backend it landed on.
        let mut f = syn([10, 9, 0, 1], 40_000);
        route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 0).unwrap();
        let key = FlowKey::canonical(
            u32::from_be_bytes([10, 9, 0, 1]),
            pool.cfg.vip,
            40_000,
            80,
            IPPROTO_TCP,
        );
        let backend = ct.nat_of(&key).unwrap().backend;
        pool.drain(backend);
        assert_eq!(pool.state(backend), BackendState::Draining);
        // New flows never land on the draining backend...
        for s in 0..200u16 {
            let mut f = syn([10, 9, 1, 1], 41_000 + s);
            route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 1).unwrap();
            let k = FlowKey::canonical(
                u32::from_be_bytes([10, 9, 1, 1]),
                pool.cfg.vip,
                41_000 + s,
                80,
                IPPROTO_TCP,
            );
            assert_ne!(ct.nat_of(&k).unwrap().backend, backend);
        }
        // ...but the established flow still forwards, rewritten, both ways.
        let mut ack = PacketBuilder::tcp()
            .src_ip([10, 9, 0, 1])
            .dst_ip(VIP)
            .src_port(40_000)
            .dst_port(80)
            .tcp_flags(TCP_ACK)
            .build();
        assert_eq!(
            route_frame_lb(&mut ack, &t, None, &mut ct, &mut pool, 2),
            Ok(1),
            "draining must not strand the established flow"
        );
        assert!(ct.contains(&key), "flow survives the drain");
    }

    #[test]
    fn forward_and_reply_rewrites_round_trip() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        let client = [10, 9, 0, 7];
        let mut f = syn(client, 50_000);
        assert_eq!(
            route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 0),
            Ok(1),
            "rewritten SYN routes to the backend subnet"
        );
        let (src, dst, sport, dport) = parsed(&f);
        assert_eq!(src, u32::from_be_bytes(client), "source untouched");
        assert_eq!(sport, 50_000);
        assert_eq!(dport, 8080, "destination port rewritten");
        let ip = EthernetView::parse(&f).unwrap().ipv4().unwrap();
        ip.verify_checksum().unwrap();
        assert_ne!(dst, pool.cfg.vip, "destination address rewritten");
        // Craft the backend's reply and push it through: src must become
        // the VIP again so the client never sees the backend address.
        let mut reply = PacketBuilder::tcp()
            .src_ip(dst.to_be_bytes())
            .dst_ip(client)
            .src_port(8080)
            .dst_port(50_000)
            .tcp_flags(TCP_ACK)
            .build();
        assert_eq!(
            route_frame_lb(&mut reply, &t, None, &mut ct, &mut pool, 1),
            Ok(2),
            "reply routes to the client subnet"
        );
        let (rsrc, rdst, rsport, rdport) = parsed(&reply);
        assert_eq!(rsrc, pool.cfg.vip, "reply source is the VIP");
        assert_eq!(rsport, 80, "reply source port is the VIP port");
        assert_eq!(rdst, u32::from_be_bytes(client));
        assert_eq!(rdport, 50_000);
        EthernetView::parse(&reply)
            .unwrap()
            .ipv4()
            .unwrap()
            .verify_checksum()
            .unwrap();
        assert_eq!(pool.stats.rewrites_to_backend, 1);
        assert_eq!(pool.stats.rewrites_to_client, 1);
        // The handshake promoted both twins.
        let key = FlowKey::canonical(
            u32::from_be_bytes(client),
            pool.cfg.vip,
            50_000,
            80,
            IPPROTO_TCP,
        );
        assert!(ct.contains(&key));
        ct.check_invariants().unwrap();
    }

    #[test]
    fn non_syn_vip_packets_without_state_are_shed() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        let mut ack = PacketBuilder::tcp()
            .src_ip([10, 9, 0, 1])
            .dst_ip(VIP)
            .src_port(1234)
            .dst_port(80)
            .tcp_flags(TCP_ACK)
            .build();
        assert_eq!(
            route_frame_lb(&mut ack, &t, None, &mut ct, &mut pool, 0),
            Err(DropReason::NoFlow)
        );
        assert_eq!(ct.len(), 0);
        assert_eq!(pool.stats.assigned, 0);
    }

    #[test]
    fn all_backends_down_sheds_as_no_backend() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let plan = FaultPlan::new(3).with_site(SITE_LB_PROBE_FAIL, Schedule::EveryNth(1));
        let mut pool =
            BackendPool::new(pool_config()).with_injector(sysfault::FaultInjector::new(plan));
        pool.maybe_probe(0);
        pool.maybe_probe(2_000_000);
        assert_eq!(pool.healthy(), 0);
        let mut f = syn([10, 9, 0, 1], 40_000);
        assert_eq!(
            route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 0),
            Err(DropReason::NoBackend)
        );
        assert_eq!(pool.stats().no_backend, 1);
        assert_eq!(ct.len(), 0, "a shed SYN leaves no state behind");
    }

    #[test]
    fn udp_vip_flows_balance_and_refresh() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        let mut d = PacketBuilder::udp()
            .src_ip([10, 9, 0, 3])
            .dst_ip(VIP)
            .src_port(9999)
            .dst_port(80)
            .payload(b"hello")
            .build();
        assert_eq!(
            route_frame_lb(&mut d, &t, None, &mut ct, &mut pool, 0),
            Ok(1)
        );
        assert_eq!(ct.len(), 2, "udp NAT flow stores its twin pair");
        // Second datagram: same flow, no new assignment.
        let mut d2 = PacketBuilder::udp()
            .src_ip([10, 9, 0, 3])
            .dst_ip(VIP)
            .src_port(9999)
            .dst_port(80)
            .payload(b"again")
            .build();
        assert_eq!(
            route_frame_lb(&mut d2, &t, None, &mut ct, &mut pool, 1),
            Ok(1)
        );
        assert_eq!(pool.stats.assigned, 1);
        assert_eq!(pool.stats.rewrites_to_backend, 2);
        ct.check_invariants().unwrap();
    }

    #[test]
    fn backend_death_ejects_flows_and_failover_reassigns() {
        let t = table();
        // Probes run in backend order, so on a 3-backend pool EveryNth(3)
        // fails exactly backend 2's probe every round: a scripted,
        // replayable single-backend death (fall = 2 → down after round 2).
        let plan = FaultPlan::new(11).with_site(SITE_LB_PROBE_FAIL, Schedule::EveryNth(3));
        let mut pool =
            BackendPool::new(pool_config()).with_injector(sysfault::FaultInjector::new(plan));
        let mut ct = Conntrack::new(ConntrackConfig::default());
        // Establish flows until one lands on the doomed backend 2.
        let client = u32::from_be_bytes([10, 9, 0, 1]);
        let mut victim = None;
        for s in 0..64u16 {
            let mut f = syn([10, 9, 0, 1], 30_000 + s);
            route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 0).unwrap();
            let k = FlowKey::canonical(client, pool.cfg.vip, 30_000 + s, 80, IPPROTO_TCP);
            if ct.nat_of(&k).unwrap().backend == 2 {
                victim = Some((k, 30_000 + s));
                break;
            }
        }
        let (key, sport) = victim.expect("some flow lands on backend 2");
        let live_before = ct.len();
        pool.maybe_probe(0);
        let downed = pool.maybe_probe(2_000_000).to_vec();
        assert_eq!(downed, vec![2], "two failed rounds down backend 2 only");
        for &b in &downed {
            let freed = ct.eject_backend(b, EvictCause::BackendDead);
            pool.note_flows_ejected(freed);
        }
        assert!(
            !ct.contains(&key),
            "flows to the dead backend are ejected, twins included"
        );
        assert!(ct.len() < live_before);
        assert_eq!(
            ct.stats().removed[EvictCause::BackendDead as usize] % 2,
            0,
            "NAT ejection removes twins in pairs"
        );
        ct.check_invariants().unwrap();
        // The client retries the same 5-tuple and immediately gets a live
        // backend — no waiting out an idle timeout on the stale rewrite.
        let mut retry = syn([10, 9, 0, 1], sport);
        assert_eq!(
            route_frame_lb(&mut retry, &t, None, &mut ct, &mut pool, 3_000_000),
            Ok(1)
        );
        assert_ne!(
            ct.nat_of(&key).unwrap().backend,
            2,
            "retry re-selects a live backend"
        );
        assert!(pool.stats().flows_ejected >= 2);
    }

    #[test]
    fn force_down_and_revive_script_backend_lifecycles() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        assert!(pool.force_down(2), "first kill transitions");
        assert!(!pool.force_down(2), "second kill is a no-op");
        assert_eq!(pool.state(2), BackendState::Down);
        assert_eq!(pool.healthy(), 2);
        // New flows avoid the killed backend entirely.
        for s in 0..100u16 {
            let mut f = syn([10, 9, 2, 1], 42_000 + s);
            route_frame_lb(&mut f, &t, None, &mut ct, &mut pool, 0).unwrap();
            let k = FlowKey::canonical(
                u32::from_be_bytes([10, 9, 2, 1]),
                pool.cfg.vip,
                42_000 + s,
                80,
                IPPROTO_TCP,
            );
            assert_ne!(ct.nat_of(&k).unwrap().backend, 2);
        }
        assert!(pool.revive(2));
        assert!(!pool.revive(2), "revive of an up backend is a no-op");
        assert_eq!(pool.healthy(), 3);
        assert_eq!(pool.stats().ejections, 1);
        assert_eq!(pool.stats().recoveries, 1);
        assert_eq!(pool.fault_digest(), 0, "no injector, empty fault log");
        ct.check_invariants().unwrap();
    }

    #[test]
    fn probe_hysteresis_requires_consecutive_failures() {
        // Probability-0.5 probes with fall=3: a single bad probe must not
        // down a backend; only a (seeded, replayable) run of 3 does.
        let mut cfg = pool_config();
        cfg.fall = 3;
        cfg.rise = 2;
        let plan = FaultPlan::new(99).with_site(SITE_LB_PROBE_FAIL, Schedule::Probability(0.5));
        let mut pool = BackendPool::new(cfg).with_injector(sysfault::FaultInjector::new(plan));
        let mut t = 0u64;
        let mut saw_down = false;
        for _ in 0..200 {
            pool.maybe_probe(t);
            t += 2_000_000;
            saw_down |= pool.healthy() < pool.len();
        }
        assert!(saw_down, "p=0.5 over 200 rounds must down something");
        assert!(
            pool.stats().recoveries > 0,
            "rise hysteresis must also recover backends"
        );
        let s = pool.stats();
        assert!(s.probes >= 600);
        assert!(s.probe_failures > 0);
    }

    #[test]
    fn batch_lb_path_counts_and_preserves_conservation() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut pool = BackendPool::new(pool_config());
        let mut frames = vec![
            syn([10, 9, 0, 1], 40_000),
            syn([10, 9, 0, 2], 40_001),
            PacketBuilder::tcp()
                .src_ip([10, 9, 0, 3])
                .dst_ip(VIP)
                .src_port(40_002)
                .dst_port(80)
                .tcp_flags(TCP_ACK)
                .build(),
            PacketBuilder::udp()
                .src_ip([10, 9, 0, 4])
                .dst_ip([10, 50, 0, 10])
                .payload(b"direct")
                .build(),
            vec![0u8; 5],
        ];
        let mut hops = Vec::new();
        let stats = process_batch_lb_uninstrumented(
            &mut frames,
            &t,
            None,
            &mut ct,
            &mut pool,
            0,
            |h: u16| hops.push(h),
        );
        assert_eq!(stats.total(), frames.len() as u64);
        assert_eq!(stats.forwarded, 3, "two SYNs + one direct UDP");
        assert_eq!(stats.dropped[DropReason::NoFlow as usize], 1);
        assert_eq!(stats.dropped[DropReason::Malformed as usize], 1);
        assert_eq!(pool.stats().assigned, 2);
        ct.check_invariants().unwrap();
    }
}
