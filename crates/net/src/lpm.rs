//! Longest-prefix-match routing tables.
//!
//! [`TrieTable`] is the data plane's structure: a binary (unibit) trie over
//! the address bits, O(32) per lookup independent of table size.
//! [`LinearTable`] is the obviously-correct O(n) reference the trie is
//! property-tested against — and the old `packet_router` example's
//! implementation, kept as the baseline experiment E10 measures the trie's
//! speedup over.
//!
//! Both tables **canonicalize on insert**: the stored prefix is
//! `prefix & mask(len)`. The old linear scan compared `dst & mask ==
//! prefix` against the raw prefix, so an unmasked entry like `10.1.2.9/24`
//! could never match anything — silently. Canonicalizing makes such an
//! entry mean `10.1.2.0/24`, which is what every real routing stack does.

use std::fmt;

/// Error returned for malformed route operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// IPv4 prefix lengths run 0..=32.
    PrefixLenOutOfRange(u8),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::PrefixLenOutOfRange(len) => {
                write!(f, "prefix length {len} out of range (0..=32)")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The network mask for a prefix length (`mask(0) == 0`, `mask(32) == !0`).
#[inline]
#[must_use]
pub fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len.min(32)))
    }
}

/// Canonicalizes a `(prefix, len)` pair: masks off host bits, rejects
/// out-of-range lengths.
///
/// # Errors
///
/// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
#[inline]
pub fn canonical(prefix: u32, len: u8) -> Result<u32, RouteError> {
    if len > 32 {
        return Err(RouteError::PrefixLenOutOfRange(len));
    }
    Ok(prefix & mask(len))
}

/// A read view of a routing table: what the fast path needs and nothing
/// more. The pipeline and [`crate::cache::FlowCache`] are generic over this,
/// so workers can route against an exclusive [`TrieTable`], a locked one, or
/// a pinned copy-on-write snapshot ([`crate::cowtrie::RouteView`]) without
/// the hot path knowing which.
pub trait Routes<T: Copy> {
    /// The longest-prefix match for `addr`, if any route covers it.
    fn lookup(&self, addr: u32) -> Option<T>;

    /// A version counter that changes whenever a routing decision may have
    /// changed: equal generations guarantee identical decisions, so caches
    /// key their validity on it.
    fn generation(&self) -> u64;
}

impl<T: Copy> Routes<T> for TrieTable<T> {
    #[inline]
    fn lookup(&self, addr: u32) -> Option<T> {
        TrieTable::lookup(self, addr)
    }

    #[inline]
    fn generation(&self) -> u64 {
        TrieTable::generation(self)
    }
}

impl<T: Copy, R: Routes<T>> Routes<T> for &R {
    #[inline]
    fn lookup(&self, addr: u32) -> Option<T> {
        (**self).lookup(addr)
    }

    #[inline]
    fn generation(&self) -> u64 {
        (**self).generation()
    }
}

#[derive(Debug)]
struct Node<T> {
    children: [Option<Box<Node<T>>>; 2],
    value: Option<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> Node<T> {
    fn is_empty(&self) -> bool {
        self.value.is_none() && self.children.iter().all(Option::is_none)
    }
}

/// A binary-trie longest-prefix-match table mapping IPv4 prefixes to a
/// next-hop value.
///
/// Lookups walk at most 32 nodes regardless of how many routes are
/// installed; the linear reference walks every route. Experiment E10
/// measures the crossover (it is well below 64 routes).
#[derive(Debug, Default)]
pub struct TrieTable<T> {
    root: Node<T>,
    len: usize,
    generation: u64,
}

impl<T: Copy> TrieTable<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        TrieTable {
            root: Node::default(),
            len: 0,
            generation: 0,
        }
    }

    /// Number of installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Mutation generation: bumped by every routing-visible change — an
    /// [`TrieTable::insert`] that added a route or changed a next hop, and
    /// every [`TrieTable::remove`] that removed something. A
    /// [`crate::cache::FlowCache`] snapshots this to detect that a cached
    /// next hop may be stale; any observer holding an equal generation is
    /// guaranteed no routing decision has changed since. Value-preserving
    /// re-inserts (a periodic route refresh) are generation-neutral, so they
    /// no longer wholesale-clear every worker's cache for a routing no-op.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when no routes are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Installs `prefix/len → next_hop`, canonicalizing the prefix first.
    /// Returns the next hop it replaced, if the (canonical) route existed.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    pub fn insert(&mut self, prefix: u32, len: u8, next_hop: T) -> Result<Option<T>, RouteError>
    where
        T: PartialEq,
    {
        let prefix = canonical(prefix, len)?;
        let mut node = &mut self.root;
        for i in 0..len {
            let bit = usize::from((prefix >> (31 - i)) & 1 != 0);
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(next_hop);
        if old.is_none() {
            self.len += 1;
        }
        // Replacing a next hop with a *different* one changes routing
        // decisions just as much as a new route does; re-installing the
        // identical next hop changes nothing, and must not invalidate every
        // flow cache in the system.
        if old != Some(next_hop) {
            self.generation += 1;
        }
        Ok(old)
    }

    /// The longest-prefix match for `addr`, if any route covers it.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<T> {
        let mut best = self.root.value;
        let mut node = &self.root;
        for i in 0..32u32 {
            let bit = usize::from((addr >> (31 - i)) & 1 != 0);
            match &node.children[bit] {
                Some(child) => {
                    if child.value.is_some() {
                        best = child.value;
                    }
                    node = child;
                }
                None => break,
            }
        }
        best
    }

    /// Removes the route `prefix/len` (canonicalized), returning its next
    /// hop if it was installed. Interior nodes left empty are pruned.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    pub fn remove(&mut self, prefix: u32, len: u8) -> Result<Option<T>, RouteError> {
        let prefix = canonical(prefix, len)?;
        let removed = Self::remove_at(&mut self.root, prefix, 0, len);
        if removed.is_some() {
            self.len -= 1;
            self.generation += 1;
        }
        Ok(removed)
    }

    /// Every installed route as `(canonical_prefix, len, next_hop)`,
    /// depth-first. Used to seed other table representations (the
    /// copy-on-write table in [`crate::cowtrie`] starts from one of these).
    #[must_use]
    pub fn routes(&self) -> Vec<(u32, u8, T)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.root, 0, 0, &mut out);
        out
    }

    fn walk(node: &Node<T>, prefix: u32, depth: u8, out: &mut Vec<(u32, u8, T)>) {
        if let Some(v) = node.value {
            out.push((prefix, depth, v));
        }
        if depth == 32 {
            return;
        }
        for (bit, child) in node.children.iter().enumerate() {
            if let Some(child) = child {
                let prefix = prefix | ((bit as u32) << (31 - depth));
                Self::walk(child, prefix, depth + 1, out);
            }
        }
    }

    fn remove_at(node: &mut Node<T>, prefix: u32, depth: u8, len: u8) -> Option<T> {
        if depth == len {
            return node.value.take();
        }
        let bit = usize::from((prefix >> (31 - depth)) & 1 != 0);
        let child = node.children[bit].as_deref_mut()?;
        let removed = Self::remove_at(child, prefix, depth + 1, len);
        if child.is_empty() {
            node.children[bit] = None;
        }
        removed
    }
}

/// The linear-scan reference table: every lookup filters all routes and
/// keeps the longest match. Correct by inspection; O(n) by construction.
#[derive(Debug, Default)]
pub struct LinearTable<T> {
    routes: Vec<(u32, u8, T)>,
}

impl<T: Copy> LinearTable<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        LinearTable { routes: Vec::new() }
    }

    /// Number of installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Installs `prefix/len → next_hop` (canonicalized), replacing any
    /// existing entry for the same canonical route.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    pub fn insert(&mut self, prefix: u32, len: u8, next_hop: T) -> Result<Option<T>, RouteError> {
        let prefix = canonical(prefix, len)?;
        for (p, l, hop) in &mut self.routes {
            if *p == prefix && *l == len {
                return Ok(Some(std::mem::replace(hop, next_hop)));
            }
        }
        self.routes.push((prefix, len, next_hop));
        Ok(None)
    }

    /// The longest-prefix match for `addr`, if any route covers it.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<T> {
        self.routes
            .iter()
            .filter(|(prefix, len, _)| addr & mask(*len) == *prefix)
            .max_by_key(|(_, len, _)| *len)
            .map(|(_, _, hop)| *hop)
    }

    /// Removes the route `prefix/len` (canonicalized), returning its next
    /// hop if it was installed.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    pub fn remove(&mut self, prefix: u32, len: u8) -> Result<Option<T>, RouteError> {
        let prefix = canonical(prefix, len)?;
        let at = self
            .routes
            .iter()
            .position(|(p, l, _)| *p == prefix && *l == len);
        Ok(at.map(|i| self.routes.swap_remove(i).2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "core").unwrap();
        t.insert(ip(10, 1, 0, 0), 16, "edge").unwrap();
        t.insert(ip(10, 1, 2, 0), 24, "rack").unwrap();
        assert_eq!(t.lookup(ip(10, 9, 9, 9)), Some("core"));
        assert_eq!(t.lookup(ip(10, 1, 9, 9)), Some("edge"));
        assert_eq!(t.lookup(ip(10, 1, 2, 9)), Some("rack"));
        assert_eq!(t.lookup(ip(11, 0, 0, 1)), None);
    }

    #[test]
    fn default_route_matches_everything() {
        // The /0 route: mask(0) must be 0, not a shift-overflow artifact.
        let mut t = TrieTable::new();
        t.insert(0, 0, "gw").unwrap();
        assert_eq!(t.lookup(0), Some("gw"));
        assert_eq!(t.lookup(u32::MAX), Some("gw"));
        assert_eq!(t.lookup(ip(192, 168, 0, 1)), Some("gw"));
        let mut lin = LinearTable::new();
        lin.insert(0, 0, "gw").unwrap();
        assert_eq!(lin.lookup(u32::MAX), Some("gw"));
    }

    #[test]
    fn unmasked_prefix_is_canonicalized_not_silently_dead() {
        // Regression for the old linear scan: `10.1.2.9/24` never matched
        // because the host bits survived insert. Canonicalization makes it
        // mean `10.1.2.0/24` in both tables.
        let mut t = TrieTable::new();
        t.insert(ip(10, 1, 2, 9), 24, "rack").unwrap();
        assert_eq!(t.lookup(ip(10, 1, 2, 200)), Some("rack"));
        let mut lin = LinearTable::new();
        lin.insert(ip(10, 1, 2, 9), 24, "rack").unwrap();
        assert_eq!(lin.lookup(ip(10, 1, 2, 200)), Some("rack"));
        // And the canonical key dedups: reinserting via a different host
        // suffix replaces, not duplicates.
        assert_eq!(
            t.insert(ip(10, 1, 2, 77), 24, "rack2").unwrap(),
            Some("rack")
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_routes_and_len_bounds() {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 1), 32, 1u16).unwrap();
        assert_eq!(t.lookup(ip(10, 0, 0, 1)), Some(1));
        assert_eq!(t.lookup(ip(10, 0, 0, 2)), None);
        assert_eq!(t.insert(0, 33, 9), Err(RouteError::PrefixLenOutOfRange(33)));
        assert_eq!(
            LinearTable::new().insert(0, 40, 9u16),
            Err(RouteError::PrefixLenOutOfRange(40))
        );
    }

    #[test]
    fn remove_restores_shorter_match_and_prunes() {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "core").unwrap();
        t.insert(ip(10, 1, 0, 0), 16, "edge").unwrap();
        assert_eq!(t.lookup(ip(10, 1, 5, 5)), Some("edge"));
        assert_eq!(t.remove(ip(10, 1, 0, 0), 16).unwrap(), Some("edge"));
        assert_eq!(
            t.lookup(ip(10, 1, 5, 5)),
            Some("core"),
            "falls back to the /8"
        );
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.remove(ip(10, 1, 0, 0), 16).unwrap(),
            None,
            "double remove is a no-op"
        );
        // Removing an unmasked spelling removes the canonical route.
        assert_eq!(t.remove(ip(10, 255, 255, 255), 8).unwrap(), Some("core"));
        assert!(t.is_empty());
        assert!(t.root.is_empty(), "interior nodes must be pruned");
    }

    #[test]
    fn generation_tracks_every_routing_change() {
        let mut t = TrieTable::new();
        assert_eq!(t.generation(), 0);
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        assert_eq!(t.generation(), 1);
        // Value-changing replacement changes decisions, so it bumps too.
        t.insert(ip(10, 0, 0, 0), 8, 2u16).unwrap();
        assert_eq!(t.generation(), 2);
        t.remove(ip(10, 0, 0, 0), 8).unwrap();
        assert_eq!(t.generation(), 3);
        // A no-op remove leaves the generation alone.
        t.remove(ip(10, 0, 0, 0), 8).unwrap();
        assert_eq!(t.generation(), 3);
        // Lookups never bump.
        let _ = t.lookup(ip(10, 1, 1, 1));
        assert_eq!(t.generation(), 3);
    }

    #[test]
    fn noop_reinsert_is_generation_neutral() {
        // Regression: a periodic route refresh re-installing the identical
        // next hop used to bump the generation and wholesale-clear every
        // worker's flow cache for a routing no-op.
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        let gen = t.generation();
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap(), Some(1));
        assert_eq!(t.generation(), gen, "value-preserving insert must not bump");
        // Same canonical route via an unmasked spelling: still a no-op.
        assert_eq!(t.insert(ip(10, 200, 3, 4), 8, 1u16).unwrap(), Some(1));
        assert_eq!(t.generation(), gen);
        assert_eq!(t.len(), 1);
        // A genuine replacement still bumps.
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 2u16).unwrap(), Some(1));
        assert_eq!(t.generation(), gen + 1);
    }

    #[test]
    fn routes_enumerates_canonical_entries() {
        let mut t = TrieTable::new();
        t.insert(0, 0, 7u16).unwrap();
        t.insert(ip(10, 1, 2, 9), 24, 3).unwrap();
        t.insert(ip(10, 0, 0, 0), 8, 1).unwrap();
        t.insert(ip(10, 0, 0, 1), 32, 9).unwrap();
        let mut routes = t.routes();
        routes.sort_unstable();
        assert_eq!(
            routes,
            vec![
                (0, 0, 7),
                (ip(10, 0, 0, 0), 8, 1),
                (ip(10, 0, 0, 1), 32, 9),
                (ip(10, 1, 2, 0), 24, 3),
            ]
        );
    }

    #[test]
    fn replacement_returns_old_next_hop() {
        let mut t = TrieTable::new();
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap(), None);
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 2u16).unwrap(), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(10, 3, 3, 3)), Some(2));
    }
}
