//! Copy-on-write LPM publication over epoch reclamation.
//!
//! [`CowRouteTable`] holds the same binary trie as [`crate::lpm::TrieTable`],
//! but with raw-pointer nodes behind one atomic root, so route updates and
//! packet dispatch overlap instead of excluding each other:
//!
//! * **Writers** (serialized by an internal mutex — route updates are a
//!   control-plane trickle, not a data-plane firehose) clone the O(depth)
//!   spine from the root to the changed node, splice the unchanged subtrees
//!   in by pointer, and publish the whole update with a single atomic root
//!   store. The replaced spine nodes are retired into a
//!   [`sysmem::epoch::Domain`] and come back through the writer's node pool
//!   once every reader that might have seen them has unpinned — so steady
//!   route churn allocates nothing.
//! * **Readers** ([`RouteReader::pin`], one per worker) pay two `SeqCst`
//!   loads per *batch* — publication count, then root — and from there the
//!   lookup hot path is exactly the plain trie walk: zero synchronization
//!   per packet.
//!
//! The publication counter is the cache generation ([`Routes::generation`]).
//! Ordering is load-bearing and asymmetric on purpose: the **writer stores
//! the root first, then bumps the counter; the reader loads the counter
//! first, then the root.** A reader can therefore observe a *new* root with
//! an *old* counter (it tags fresh decisions with a stale generation and
//! re-invalidates one publication later — conservative), but never an old
//! root with a new counter, which is the ordering that would let a
//! [`crate::cache::FlowCache`] serve pre-update decisions forever.
//!
//! The no-op-insert discipline matches the fixed [`crate::lpm::TrieTable`]:
//! re-installing an identical next hop publishes nothing — no root swap, no
//! counter bump, no cache invalidation anywhere.
//!
//! Unsafe code is confined to this module and leans on three invariants the
//! `syscheck` models (`tests/cowtrie_model.rs`) and the epoch models in
//! `crates/mem` check mechanically: published nodes are immutable; a node is
//! retired only after it becomes unreachable from the published root; and
//! retired nodes are recycled only once no pinned reader can reference them.

use crate::lpm::{canonical, RouteError, Routes, TrieTable};
use std::ptr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use syscheck::shim::{AtomicPtr, AtomicU64, Mutex};
use sysmem::epoch;

/// A trie node, published by pointer. Never mutated after the root store
/// that makes it reachable; child pointers either are null or point at
/// nodes published no later than this one.
struct CowNode<T> {
    children: [*mut CowNode<T>; 2],
    value: Option<T>,
}

/// A retired node pointer traveling through the epoch domain. The raw
/// pointer is `Send`-wrapped: ownership genuinely transfers (writer retires,
/// collector recycles), and no reader dereferences it after maturity — that
/// is the epoch protocol's whole job.
struct Retired<T>(*mut CowNode<T>);

unsafe impl<T: Send> Send for Retired<T> {}

/// Writer-side state behind the update mutex: the recycled-node pool the
/// epoch collector refills, so steady-state updates reuse boxes instead of
/// allocating.
struct WriterState<T> {
    pool: Vec<*mut CowNode<T>>,
}

impl<T: Copy> WriterState<T> {
    /// A blank node: pooled if possible, freshly boxed otherwise.
    fn fresh_node(&mut self) -> *mut CowNode<T> {
        match self.pool.pop() {
            Some(p) => unsafe {
                (*p).children = [ptr::null_mut(), ptr::null_mut()];
                (*p).value = None;
                p
            },
            None => Box::into_raw(Box::new(CowNode {
                children: [ptr::null_mut(), ptr::null_mut()],
                value: None,
            })),
        }
    }

    /// A shallow copy of `src`: same value, same child pointers (unchanged
    /// subtrees are shared, not cloned).
    ///
    /// Safety: `src` must point at a live node the caller may read (the
    /// writer lock is held and `src` is reachable from the current root).
    unsafe fn clone_node(&mut self, src: *const CowNode<T>) -> *mut CowNode<T> {
        let p = self.fresh_node();
        (*p).children = (*src).children;
        (*p).value = (*src).value;
        p
    }
}

/// The concurrently readable LPM table: one atomic root, copy-on-write
/// spine publication, epoch-deferred reclamation. See the module docs for
/// the protocol; see [`CowRouteTable::reader`] for the worker side and
/// [`CowRouteTable::insert`]/[`CowRouteTable::remove`] for the writer side.
pub struct CowRouteTable<T: Copy + Send> {
    /// The published root. Never null: an empty table is an empty node.
    root: AtomicPtr<CowNode<T>>,
    /// Publication counter — the table's [`Routes::generation`]. Bumped
    /// *after* the root store (see the module docs for why that order).
    publications: AtomicU64,
    /// Spine nodes that made it back into the writer's node pool (matured
    /// through the epoch, or pruned before ever publishing) — the
    /// reclamation loop's throughput counter.
    spine_recycled: AtomicU64,
    /// Installed-route count (observability; writer-maintained).
    len: AtomicUsize,
    /// Where replaced spine nodes wait out their grace period.
    domain: Arc<epoch::Domain<Retired<T>>>,
    /// Serializes writers; owns the recycled-node pool.
    writer: Mutex<WriterState<T>>,
}

// Safety: the raw pointers inside are governed by the publish/retire
// protocol — readers reach nodes only through a pinned root load, writers
// mutate only unpublished clones under the writer mutex, and reclamation
// waits out every pin. `T` itself crosses threads by value, hence `Send`.
unsafe impl<T: Copy + Send> Send for CowRouteTable<T> {}
unsafe impl<T: Copy + Send> Sync for CowRouteTable<T> {}

impl<T: Copy + Send> Default for CowRouteTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Send> CowRouteTable<T> {
    /// An empty table at publication 0.
    #[must_use]
    pub fn new() -> Self {
        let root = Box::into_raw(Box::new(CowNode {
            children: [ptr::null_mut(), ptr::null_mut()],
            value: None,
        }));
        CowRouteTable {
            root: AtomicPtr::new(root),
            publications: AtomicU64::new(0),
            spine_recycled: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            domain: Arc::new(epoch::Domain::new()),
            writer: Mutex::new(WriterState { pool: Vec::new() }),
        }
    }

    /// A table seeded from an exclusive [`TrieTable`]: one publication per
    /// route, so the final publication count equals the generation a
    /// [`TrieTable`] built from the same routes would carry.
    #[must_use]
    pub fn from_trie(table: &TrieTable<T>) -> Self
    where
        T: PartialEq,
    {
        let cow = Self::new();
        for (prefix, len, hop) in table.routes() {
            cow.insert(prefix, len, hop)
                .expect("routes() yields canonical prefixes");
        }
        cow
    }

    /// Number of installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no routes are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publications so far — the generation readers tag cache entries with.
    #[must_use]
    pub fn publications(&self) -> u64 {
        self.publications.load(Ordering::SeqCst)
    }

    /// Retired nodes still waiting out their grace period (diagnostics).
    #[must_use]
    pub fn pending_reclaim(&self) -> usize {
        self.domain.pending()
    }

    /// Spine nodes recycled into the writer pool over the table's lifetime.
    #[must_use]
    pub fn spine_recycled(&self) -> u64 {
        self.spine_recycled.load(Ordering::Relaxed)
    }

    /// Registered readers currently inside a pinned critical section.
    #[must_use]
    pub fn pinned_readers(&self) -> usize {
        self.domain.pinned_readers()
    }

    /// Epoch-advance attempts a lagging pinned reader blocked (see
    /// [`sysmem::epoch::Domain::advance_stalls`]).
    #[must_use]
    pub fn advance_stalls(&self) -> u64 {
        self.domain.advance_stalls()
    }

    /// Registers a reader. One per worker thread, created at startup —
    /// registration locks the domain's reader list, pinning does not.
    #[must_use]
    pub fn reader(self: &Arc<Self>) -> RouteReader<T> {
        RouteReader {
            handle: self.domain.register(),
            table: Arc::clone(self),
        }
    }

    /// The bit choosing the child at `depth` along `prefix`'s path.
    #[inline]
    fn bit(prefix: u32, depth: u8) -> usize {
        usize::from((prefix >> (31 - depth)) & 1 != 0)
    }

    /// Installs `prefix/len → next_hop`, returning the replaced next hop if
    /// the canonical route existed. A value-preserving re-insert publishes
    /// nothing at all: no allocation, no root store, no counter bump.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex is poisoned (a writer panicked
    /// mid-update, which already aborts the run).
    pub fn insert(&self, prefix: u32, len: u8, next_hop: T) -> Result<Option<T>, RouteError>
    where
        T: PartialEq,
    {
        let prefix = canonical(prefix, len)?;
        let mut w = self.writer.lock().expect("cow writer poisoned");
        let old_root = self.root.load(Ordering::SeqCst);
        // Writer-exclusive read of the current value at the path: decides
        // the no-op case before any allocation.
        let old = unsafe {
            let mut node = old_root.cast_const();
            let mut depth = 0u8;
            loop {
                if depth == len {
                    break (*node).value;
                }
                let child = (*node).children[Self::bit(prefix, depth)];
                if child.is_null() {
                    break None;
                }
                node = child;
                depth += 1;
            }
        };
        if old == Some(next_hop) {
            return Ok(old);
        }
        unsafe {
            // Clone the spine, splicing shared subtrees in by pointer.
            let new_root = w.clone_node(old_root);
            let mut new_node = new_root;
            let mut old_node = old_root; // goes null past the existing path
            for depth in 0..len {
                let bit = Self::bit(prefix, depth);
                let old_child = if old_node.is_null() {
                    ptr::null_mut()
                } else {
                    (*old_node).children[bit]
                };
                let new_child = if old_child.is_null() {
                    w.fresh_node()
                } else {
                    w.clone_node(old_child)
                };
                (*new_node).children[bit] = new_child;
                new_node = new_child;
                old_node = old_child;
            }
            (*new_node).value = Some(next_hop);
            // Publish: root first, counter second (module docs).
            self.root.store(new_root, Ordering::SeqCst);
            self.publications.fetch_add(1, Ordering::SeqCst);
            if old.is_none() {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            // Retire the replaced spine: the old root and every old node
            // that existed along the path.
            self.domain.retire(Retired(old_root));
            let mut old_node = old_root;
            for depth in 0..len {
                let child = (*old_node).children[Self::bit(prefix, depth)];
                if child.is_null() {
                    break;
                }
                self.domain.retire(Retired(child));
                old_node = child;
            }
        }
        let pool = &mut w.pool;
        let recycled = self.domain.collect(|Retired(p)| pool.push(p));
        self.spine_recycled
            .fetch_add(recycled as u64, Ordering::Relaxed);
        Ok(old)
    }

    /// Removes the route `prefix/len` (canonicalized), returning its next
    /// hop if it was installed. Cloned spine nodes left empty are pruned
    /// before publication, so the published tree never carries dead
    /// interior nodes. A no-op remove publishes nothing.
    ///
    /// # Errors
    ///
    /// [`RouteError::PrefixLenOutOfRange`] when `len > 32`.
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex is poisoned.
    pub fn remove(&self, prefix: u32, len: u8) -> Result<Option<T>, RouteError> {
        let prefix = canonical(prefix, len)?;
        let mut w = self.writer.lock().expect("cow writer poisoned");
        let old_root = self.root.load(Ordering::SeqCst);
        // The old spine, root first. 33 = the deepest path (root + /32).
        let mut spine = [ptr::null_mut::<CowNode<T>>(); 33];
        spine[0] = old_root;
        let depth = usize::from(len);
        unsafe {
            for d in 0..len {
                let child = (*spine[usize::from(d)]).children[Self::bit(prefix, d)];
                if child.is_null() {
                    return Ok(None);
                }
                spine[usize::from(d) + 1] = child;
            }
            let old = (*spine[depth]).value;
            if old.is_none() {
                return Ok(None);
            }
            // Clone and relink the spine, clear the terminal value.
            let mut clones = [ptr::null_mut::<CowNode<T>>(); 33];
            for (clone, node) in clones[..=depth].iter_mut().zip(spine[..=depth].iter()) {
                *clone = w.clone_node(*node);
            }
            for d in 0..len {
                (*clones[usize::from(d)]).children[Self::bit(prefix, d)] =
                    clones[usize::from(d) + 1];
            }
            (*clones[depth]).value = None;
            // Prune empty clones bottom-up; they were never published, so
            // they go straight back to the pool.
            for d in (1..=depth).rev() {
                let n = clones[d];
                if (*n).value.is_none() && (*n).children[0].is_null() && (*n).children[1].is_null()
                {
                    #[allow(clippy::cast_possible_truncation)]
                    let bit = Self::bit(prefix, (d - 1) as u8);
                    (*clones[d - 1]).children[bit] = ptr::null_mut();
                    w.pool.push(n);
                    self.spine_recycled.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
            self.root.store(clones[0], Ordering::SeqCst);
            self.publications.fetch_add(1, Ordering::SeqCst);
            self.len.fetch_sub(1, Ordering::Relaxed);
            for node in &spine[..=depth] {
                self.domain.retire(Retired(*node));
            }
            let pool = &mut w.pool;
            let recycled = self.domain.collect(|Retired(p)| pool.push(p));
            self.spine_recycled
                .fetch_add(recycled as u64, Ordering::Relaxed);
            Ok(old)
        }
    }

    /// The LPM walk against a specific root (shared by the writer-side and
    /// pinned-view lookups).
    ///
    /// Safety: `root` must be non-null and protected — either pinned under
    /// the epoch or read while holding the writer lock.
    unsafe fn lookup_at(root: *const CowNode<T>, addr: u32) -> Option<T> {
        let mut node = &*root;
        let mut best = node.value;
        for depth in 0..32u8 {
            let child = node.children[Self::bit(addr, depth)];
            if child.is_null() {
                break;
            }
            node = &*child;
            if node.value.is_some() {
                best = node.value;
            }
        }
        best
    }

    /// Every installed route as `(canonical_prefix, len, next_hop)`,
    /// depth-first — the differential tests compare this against the
    /// exclusive trie's [`TrieTable::routes`].
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex is poisoned.
    #[must_use]
    pub fn routes(&self) -> Vec<(u32, u8, T)> {
        let _w = self.writer.lock().expect("cow writer poisoned");
        let mut out = Vec::with_capacity(self.len());
        unsafe {
            Self::walk(self.root.load(Ordering::SeqCst), 0, 0, &mut out);
        }
        out
    }

    unsafe fn walk(node: *const CowNode<T>, prefix: u32, depth: u8, out: &mut Vec<(u32, u8, T)>) {
        if let Some(v) = (*node).value {
            out.push((prefix, depth, v));
        }
        if depth == 32 {
            return;
        }
        for (bit, child) in (*node).children.iter().enumerate() {
            if !child.is_null() {
                #[allow(clippy::cast_possible_truncation)]
                let prefix = prefix | ((bit as u32) << (31 - depth));
                Self::walk(*child, prefix, depth + 1, out);
            }
        }
    }
}

impl<T: Copy + Send> Drop for CowRouteTable<T> {
    fn drop(&mut self) {
        // Exclusive access: free the published tree recursively, then every
        // retired node (flat — their subtrees are shared with the tree or
        // with other retirees) and the pool.
        unsafe fn free_tree<T>(p: *mut CowNode<T>) {
            if p.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(p) };
            unsafe {
                free_tree(node.children[0]);
                free_tree(node.children[1]);
            }
        }
        unsafe {
            free_tree(*self.root.get_mut());
        }
        self.domain
            .drain(|Retired(p)| unsafe { drop(Box::from_raw(p)) });
        if let Ok(mut w) = self.writer.lock() {
            for p in w.pool.drain(..) {
                unsafe { drop(Box::from_raw(p)) }
            }
        }
    }
}

impl<T: Copy + Send + std::fmt::Debug> std::fmt::Debug for CowRouteTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CowRouteTable")
            .field("len", &self.len())
            .field("publications", &self.publications())
            .field("pending_reclaim", &self.pending_reclaim())
            .finish_non_exhaustive()
    }
}

/// A worker's registered read handle. `Send` (create on the dispatcher,
/// move into the worker) but not shareable: one announcement slot, one
/// owner.
pub struct RouteReader<T: Copy + Send> {
    handle: epoch::Handle<Retired<T>>,
    table: Arc<CowRouteTable<T>>,
}

impl<T: Copy + Send> RouteReader<T> {
    /// Pins a consistent view for one batch: epoch pin, then publication
    /// count, then root — in that order (see the module docs). Two `SeqCst`
    /// loads amortized over the whole batch; per-packet lookups through the
    /// view touch no shared state.
    #[must_use]
    pub fn pin(&self) -> RouteView<'_, T> {
        let guard = self.handle.pin();
        let version = self.table.publications.load(Ordering::SeqCst);
        let root = self.table.root.load(Ordering::SeqCst);
        RouteView {
            _guard: guard,
            root,
            version,
        }
    }

    /// The table this reader reads.
    #[must_use]
    pub fn table(&self) -> &Arc<CowRouteTable<T>> {
        &self.table
    }
}

impl<T: Copy + Send> std::fmt::Debug for RouteReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteReader").finish_non_exhaustive()
    }
}

/// One pinned snapshot of the route state: a frozen root plus the
/// publication count it is tagged with. While this view lives, nothing it
/// can reach is reclaimed. Implements [`Routes`], so the whole pipeline and
/// the flow cache run against it unchanged.
pub struct RouteView<'a, T: Copy + Send> {
    _guard: epoch::Guard<'a, Retired<T>>,
    root: *const CowNode<T>,
    version: u64,
}

impl<T: Copy + Send> Routes<T> for RouteView<'_, T> {
    #[inline]
    fn lookup(&self, addr: u32) -> Option<T> {
        // Safety: the root was loaded after the guard pinned, so every node
        // reachable from it outlives the guard.
        unsafe { CowRouteTable::lookup_at(self.root, addr) }
    }

    #[inline]
    fn generation(&self) -> u64 {
        self.version
    }
}

impl<T: Copy + Send> std::fmt::Debug for RouteView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteView")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn view_lookup(table: &Arc<CowRouteTable<u16>>, addr: u32) -> Option<u16> {
        table.reader().pin().lookup(addr)
    }

    #[test]
    fn longest_prefix_wins_through_a_pinned_view() {
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        t.insert(ip(10, 1, 0, 0), 16, 2).unwrap();
        t.insert(ip(10, 1, 2, 0), 24, 3).unwrap();
        let reader = t.reader();
        let view = reader.pin();
        assert_eq!(view.lookup(ip(10, 9, 9, 9)), Some(1));
        assert_eq!(view.lookup(ip(10, 1, 9, 9)), Some(2));
        assert_eq!(view.lookup(ip(10, 1, 2, 9)), Some(3));
        assert_eq!(view.lookup(ip(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn noop_insert_publishes_nothing() {
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        let pubs = t.publications();
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 1).unwrap(), Some(1));
        assert_eq!(t.insert(ip(10, 77, 0, 0), 8, 1).unwrap(), Some(1));
        assert_eq!(
            t.publications(),
            pubs,
            "identical re-insert must not publish"
        );
        assert_eq!(t.remove(ip(172, 16, 0, 0), 12).unwrap(), None);
        assert_eq!(t.publications(), pubs, "no-op remove must not publish");
        assert_eq!(t.insert(ip(10, 0, 0, 0), 8, 2).unwrap(), Some(1));
        assert_eq!(t.publications(), pubs + 1);
    }

    #[test]
    fn a_view_pinned_before_an_update_keeps_its_snapshot() {
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        let reader = t.reader();
        let view = reader.pin();
        t.insert(ip(10, 0, 0, 0), 8, 9).unwrap();
        assert_eq!(view.lookup(ip(10, 5, 5, 5)), Some(1), "snapshot isolation");
        drop(view);
        assert_eq!(reader.pin().lookup(ip(10, 5, 5, 5)), Some(9));
    }

    #[test]
    fn remove_restores_shorter_match_and_prunes() {
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        t.insert(ip(10, 1, 0, 0), 16, 2).unwrap();
        assert_eq!(t.remove(ip(10, 1, 0, 0), 16).unwrap(), Some(2));
        assert_eq!(
            view_lookup(&t, ip(10, 1, 5, 5)),
            Some(1),
            "falls back to /8"
        );
        assert_eq!(t.len(), 1);
        let routes = t.routes();
        assert_eq!(routes, vec![(ip(10, 0, 0, 0), 8, 1)], "pruned: {routes:?}");
        assert_eq!(t.remove(ip(10, 1, 0, 0), 16).unwrap(), None);
    }

    #[test]
    fn from_trie_matches_the_source_table() {
        let mut trie = TrieTable::new();
        trie.insert(0, 0, 7u16).unwrap();
        trie.insert(ip(10, 0, 0, 0), 8, 1).unwrap();
        trie.insert(ip(10, 1, 2, 0), 24, 3).unwrap();
        let cow = Arc::new(CowRouteTable::from_trie(&trie));
        let mut a = trie.routes();
        let mut b = cow.routes();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(cow.publications(), trie.generation());
        for addr in [0, ip(10, 0, 0, 1), ip(10, 1, 2, 200), ip(192, 168, 1, 1)] {
            assert_eq!(view_lookup(&cow, addr), trie.lookup(addr));
        }
    }

    #[test]
    fn unpinned_churn_recycles_spine_nodes() {
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 1, 2, 0), 24, 1u16).unwrap();
        // Flap the same /24 with no reader pinned: after the pool warms up,
        // every retired spine matures and comes back.
        for i in 0..200u16 {
            t.insert(ip(10, 1, 2, 0), 24, 2 + (i % 2)).unwrap();
        }
        let w = t.writer.lock().unwrap();
        assert!(
            !w.pool.is_empty(),
            "steady churn must feed the node pool (pending {})",
            t.domain.pending()
        );
        drop(w);
        // Unmatured garbage is bounded by the grace period, not the number
        // of updates: at most the bins of the last two epochs.
        assert!(
            t.pending_reclaim() <= 2 * 26,
            "pending {} retired nodes — reclamation is not keeping up",
            t.pending_reclaim()
        );
    }

    #[test]
    fn concurrent_readers_only_ever_see_published_hops() {
        // Writer flaps one route between two hops while readers hammer
        // lookups: every observed decision must be one of the published
        // values, and per-reader generations must be non-decreasing.
        let t = Arc::new(CowRouteTable::new());
        t.insert(ip(10, 0, 0, 0), 8, 1u16).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let reader = t.reader();
            let stop = Arc::clone(&stop);
            joins.push(std::thread::spawn(move || {
                let mut last_gen = 0;
                while !stop.load(Ordering::Relaxed) {
                    let view = reader.pin();
                    let hop = view.lookup(ip(10, 5, 5, 5));
                    assert!(hop == Some(1) || hop == Some(2), "unpublished hop {hop:?}");
                    assert!(view.generation() >= last_gen, "generation went backwards");
                    last_gen = view.generation();
                }
            }));
        }
        for i in 0..2_000u16 {
            t.insert(ip(10, 0, 0, 0), 8, 1 + (i % 2)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(view_lookup(&t, ip(10, 5, 5, 5)), Some(2));
    }
}
