//! The load-balancer bench harness: experiment E17's measurement core.
//!
//! Three questions, three instruments:
//!
//! * **Rewrite tax** — what does NAT rewriting cost on the fast path? The
//!   same client population runs twice through the real sharded router:
//!   once dialing the backends directly (tracked, no LB) and once dialing
//!   the VIP (tracked + rewrite). The headline `rewrite_pps_ratio` is the
//!   second over the first; the ROADMAP target is ≥ 0.9.
//! * **Churn** — does balanced goodput survive connection churn? A
//!   port-scan storm (one-shot SYNs against the VIP host's other ports,
//!   never completing) rides on top of the steady population, and a
//!   slowloris population (many held-open flows, each trickling data)
//!   measures the per-packet cost of a large resident NAT table.
//! * **Failover** — when a backend dies, how fast does goodput come back?
//!   A virtual-clock harness scripts the death through the seeded
//!   [`SITE_LB_PROBE_FAIL`] site (`Schedule::OneShotAt`, exactly
//!   replayable), ejects the victim flows, and counts handshake-retry
//!   ticks until every client delivers data again. The acceptance bar is
//!   recovery within one health-probe interval.
//!
//! Router scenarios reuse the zero-alloc [`FrameForge`] generator from the
//! conntrack bench, so the counting-allocator bracket measures the router,
//! not the traffic source. [`LbBenchReport::to_json`] renders
//! `BENCH_lb.json`.

use crate::conntrack::{Conntrack, ConntrackConfig, EvictCause, FlowKey};
use crate::ctbench::FrameForge;
use crate::lb::{route_frame_lb, BackendConfig, BackendPool, LbConfig, SITE_LB_PROBE_FAIL};
use crate::lpm::TrieTable;
use crate::pipeline::DropReason;
use crate::router::{PortId, RouterConfig, ShardedRouter};
use std::fmt::Write as _;
use std::time::Instant;
use sysfault::{FaultInjector, FaultPlan, Schedule};
use sysrepr::packet::{IPPROTO_TCP, TCP_ACK, TCP_SYN};

/// Ports the LB bench table spreads over: 1 backends, 2 clients, 3 the
/// VIP host itself (where unrewritten storm SYNs land), 0 default.
pub const LB_PORTS: usize = 4;

/// The bench VIP.
pub const LB_VIP: [u8; 4] = [10, 200, 0, 1];
/// The bench VIP port.
pub const LB_VPORT: u16 = 80;

/// The three bench backends (weights 1, 1, 2 — selection must honor the
/// double share).
#[must_use]
pub fn lb_backends() -> Vec<BackendConfig> {
    [
        ([10u8, 50, 0, 10], 1u32),
        ([10, 50, 0, 11], 1),
        ([10, 50, 0, 12], 2),
    ]
    .iter()
    .map(|&(ip, weight)| BackendConfig {
        ip: u32::from_be_bytes(ip),
        port: 8080,
        weight,
    })
    .collect()
}

/// The bench route table: backends under 10.50/16 (port 1), clients under
/// 10.9/16 (port 2), the VIP host /32 (port 3), default (port 0).
#[must_use]
pub fn lb_table() -> TrieTable<PortId> {
    let mut t = TrieTable::new();
    t.insert(u32::from_be_bytes([10, 50, 0, 0]), 16, 1)
        .expect("valid route");
    t.insert(u32::from_be_bytes([10, 9, 0, 0]), 16, 2)
        .expect("valid route");
    t.insert(u32::from_be_bytes(LB_VIP), 32, 3)
        .expect("valid route");
    t.insert(0, 0, 0).expect("valid route");
    t
}

/// Client flow `f`'s endpoint: unique `(ip, port)` under 10.9/16.
#[allow(clippy::cast_possible_truncation)]
fn client_endpoint(f: usize) -> ([u8; 4], u16) {
    let ip = [10, 9, (f >> 8) as u8, f as u8];
    let port = 1024 + ((f >> 16) as u16 & 0x3FFF);
    (ip, port)
}

/// Storm SYN `j`'s endpoint: unique per packet, aimed at the VIP host's
/// non-service ports so unrewritten scans route to port 3.
#[allow(clippy::cast_possible_truncation)]
fn storm_endpoint(j: u64) -> ([u8; 4], u16, u16) {
    let src = [
        198,
        18 + ((j >> 30) as u8 & 1),
        (j >> 22) as u8,
        (j >> 14) as u8,
    ];
    let sport = 1024 + (j as u16 & 0x3FFF);
    let dport = 8000 + (j % 997) as u16;
    (src, sport, dport)
}

/// Which traffic shape a router scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbScenario {
    /// Clients dial the backends directly; conntrack on, LB off. The
    /// no-rewrite control the pps ratio divides by.
    BaselineNoLb,
    /// Clients dial the VIP; every packet rewrites.
    Steady,
    /// Steady plus a port-scan storm against the VIP host.
    PortScanStorm,
    /// A large held-open population trickling data (stride-scheduled).
    Slowloris,
}

impl LbScenario {
    /// The scenario's record name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LbScenario::BaselineNoLb => "baseline_no_lb",
            LbScenario::Steady => "steady",
            LbScenario::PortScanStorm => "portscan_storm",
            LbScenario::Slowloris => "slowloris",
        }
    }
}

/// Sizing for one LB bench run.
#[derive(Debug, Clone)]
pub struct LbBenchConfig {
    /// Client flows for the baseline / steady / storm scenarios.
    pub flows: usize,
    /// Data packets per flow after establishment.
    pub data_rounds: usize,
    /// Benign-packet floor per scenario (extra data rounds amortize
    /// warm-up, as in the conntrack bench).
    pub min_benign_packets: usize,
    /// Storm fraction of offered load in the port-scan scenario.
    pub storm_mix: f64,
    /// Held-open flows in the slowloris scenario.
    pub slowloris_flows: usize,
    /// Trickle rounds; each round 1/`slowloris_stride` of flows send.
    pub slowloris_rounds: usize,
    /// Stride between talkative flows per trickle round.
    pub slowloris_stride: usize,
    /// Worker threads.
    pub workers: usize,
    /// Frames per batch.
    pub batch_size: usize,
    /// Bounded-queue depth (batches) per worker.
    pub queue_depth: usize,
    /// Per-shard half-open budget.
    pub syn_backlog: usize,
    /// Timed trials per scenario; best by pps recorded.
    pub trials: usize,
    /// Process-wide allocation counter; brackets the second half of each
    /// stream for allocs/packet.
    pub alloc_counter: Option<fn() -> u64>,
}

impl LbBenchConfig {
    /// CI-sized run (well under a second).
    #[must_use]
    pub fn quick() -> Self {
        LbBenchConfig {
            flows: 4_000,
            data_rounds: 6,
            min_benign_packets: 60_000,
            storm_mix: 0.5,
            slowloris_flows: 8_000,
            slowloris_rounds: 192,
            slowloris_stride: 32,
            workers: 2,
            batch_size: 64,
            queue_depth: 8,
            syn_backlog: 1_024,
            trials: 1,
            alloc_counter: None,
        }
    }

    /// Recorded-trajectory run (tens of seconds).
    #[must_use]
    pub fn full() -> Self {
        LbBenchConfig {
            flows: 50_000,
            data_rounds: 6,
            min_benign_packets: 1_000_000,
            storm_mix: 0.5,
            slowloris_flows: 250_000,
            slowloris_rounds: 128,
            slowloris_stride: 32,
            workers: 4,
            batch_size: 64,
            queue_depth: 8,
            syn_backlog: 4_096,
            trials: 3,
            alloc_counter: None,
        }
    }

    /// Router-wide flow-table capacity for `flows` NAT'd flows: twin slots
    /// double the population, and the table is provisioned at ≤ 50 % load
    /// on top of that — open addressing degrades sharply past half full, and
    /// an underprovisioned table would charge probe-chain walks to the
    /// rewrite path and corrupt the control comparison — plus one SYN
    /// backlog per shard of half-open churn.
    #[must_use]
    pub fn capacity_for(&self, flows: usize) -> usize {
        4 * flows + self.workers * self.syn_backlog
    }
}

/// One measured router scenario.
#[derive(Debug, Clone, Copy)]
pub struct LbPoint {
    /// Which scenario.
    pub scenario: LbScenario,
    /// Client flows established.
    pub flows: usize,
    /// Wall-clock packets/sec over the whole stream.
    pub pps: f64,
    /// Median per-packet latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile per-packet latency, ns.
    pub p99_ns: u64,
    /// Benign packets offered (handshakes + data).
    pub benign_sent: u64,
    /// Benign packets forwarded to the backend port.
    pub benign_delivered: u64,
    /// Storm packets offered.
    pub storm_sent: u64,
    /// Storm packets forwarded (port 3 — the unrewritten VIP host route).
    pub storm_forwarded: u64,
    /// New flows the pool assigned a backend.
    pub assigned: u64,
    /// Forward-path rewrites applied.
    pub rewrites_to_backend: u64,
    /// VIP flows shed with no backend up.
    pub no_backend: u64,
    /// Highest single-shard entry count observed.
    pub peak_flows: u64,
    /// Packets shed as NoFlow (storm churn pressure on benign state).
    pub dropped_no_flow: u64,
    /// SYNs shed because no capacity could be reclaimed.
    pub dropped_table_full: u64,
    /// Allocations per packet over the stream's second half.
    pub steady_allocs_per_packet: Option<f64>,
}

impl LbPoint {
    /// Fraction of offered benign packets forwarded.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn benign_delivery(&self) -> f64 {
        if self.benign_sent == 0 {
            0.0
        } else {
            self.benign_delivered as f64 / self.benign_sent as f64
        }
    }
}

/// Runs one router scenario: establishes the client population (SYN then
/// cookie-echo ACK, as in the conntrack bench), then streams data rounds,
/// interleaving storm SYNs at the configured mix for the storm scenario.
#[must_use]
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::too_many_lines
)]
pub fn run_lb_point(cfg: &LbBenchConfig, scenario: LbScenario) -> LbPoint {
    let flows = match scenario {
        LbScenario::Slowloris => cfg.slowloris_flows,
        _ => cfg.flows,
    };
    let ct_cfg = ConntrackConfig {
        max_flows: cfg.capacity_for(flows),
        syn_backlog: cfg.syn_backlog,
        ..ConntrackConfig::default()
    };
    let cookie_ref = Conntrack::new(ct_cfg);
    let lb_cfg = LbConfig {
        vip: u32::from_be_bytes(LB_VIP),
        vport: LB_VPORT,
        backends: lb_backends(),
        ..LbConfig::default()
    };
    let rc = RouterConfig {
        workers: cfg.workers,
        batch_size: cfg.batch_size,
        queue_depth: cfg.queue_depth,
        conntrack: Some(ct_cfg),
        lb: (scenario != LbScenario::BaselineNoLb).then(|| lb_cfg.clone()),
        ..RouterConfig::default()
    };
    let backends = lb_backends();

    // (dst ip, dst port) a client flow dials, per scenario.
    let dial = |f: usize| -> ([u8; 4], u16) {
        if scenario == LbScenario::BaselineNoLb {
            let b = backends[f % backends.len()];
            (b.ip.to_be_bytes(), b.port)
        } else {
            (LB_VIP, LB_VPORT)
        }
    };

    // The offered benign stream: 2 handshake packets per flow, then data.
    let (rounds, benign_total) = if scenario == LbScenario::Slowloris {
        let per_round = flows.div_ceil(cfg.slowloris_stride.max(1));
        (
            cfg.slowloris_rounds,
            2 * flows + cfg.slowloris_rounds * per_round,
        )
    } else {
        let r = cfg
            .data_rounds
            .max((cfg.min_benign_packets / flows.max(1)).saturating_sub(2));
        (r, flows * (2 + r))
    };
    let ratio = if scenario == LbScenario::PortScanStorm && cfg.storm_mix > 0.0 {
        cfg.storm_mix / (1.0 - cfg.storm_mix)
    } else {
        0.0
    };
    let est_total = benign_total + (benign_total as f64 * ratio) as usize;
    let half = est_total / 2;

    let mut forge = FrameForge::new(64);
    let mut router = ShardedRouter::start(lb_table(), LB_PORTS, rc);
    let mut acc = 0.0f64;
    let mut storm_sent = 0u64;
    let mut benign_sent = 0u64;
    let mut submitted = 0usize;
    let mut allocs_mid = None;
    let stride = cfg.slowloris_stride.max(1);
    let t0 = Instant::now();
    let mut offer = |router: &mut ShardedRouter,
                     forge: &mut FrameForge,
                     f: usize,
                     kind: usize,
                     storm_sent: &mut u64,
                     submitted: &mut usize,
                     allocs_mid: &mut Option<u64>| {
        acc += ratio;
        while acc >= 1.0 {
            acc -= 1.0;
            let (src, sport, dport) = storm_endpoint(*storm_sent);
            let frame = forge.shape(false, src, LB_VIP, sport, dport, TCP_SYN, 3, 0);
            router.submit(frame);
            *storm_sent += 1;
            *submitted += 1;
            if *submitted == half {
                *allocs_mid = cfg.alloc_counter.map(|c| c());
            }
        }
        let (src, sport) = client_endpoint(f);
        let (dst, dport) = dial(f);
        let frame = match kind {
            0 => forge.shape(false, src, dst, sport, dport, TCP_SYN, f as u32, 0),
            _ => {
                let key = FlowKey::canonical(
                    u32::from_be_bytes(src),
                    u32::from_be_bytes(dst),
                    sport,
                    dport,
                    IPPROTO_TCP,
                );
                let ack_no = cookie_ref.cookie(&key).wrapping_add(1);
                forge.shape(
                    kind == 2,
                    src,
                    dst,
                    sport,
                    dport,
                    TCP_ACK,
                    f as u32 + 1,
                    ack_no,
                )
            }
        };
        router.submit(frame);
        *submitted += 1;
        if *submitted == half {
            *allocs_mid = cfg.alloc_counter.map(|c| c());
        }
    };
    // Establishment: SYN then handshake ACK, back to back per flow.
    for f in 0..flows {
        for kind in 0..2 {
            offer(
                &mut router,
                &mut forge,
                f,
                kind,
                &mut storm_sent,
                &mut submitted,
                &mut allocs_mid,
            );
            benign_sent += 1;
        }
    }
    // Data rounds: everyone each round, or a rotating stride for slowloris.
    for r in 0..rounds {
        let mut f = if scenario == LbScenario::Slowloris {
            r % stride
        } else {
            0
        };
        let step = if scenario == LbScenario::Slowloris {
            stride
        } else {
            1
        };
        while f < flows {
            offer(
                &mut router,
                &mut forge,
                f,
                2,
                &mut storm_sent,
                &mut submitted,
                &mut allocs_mid,
            );
            benign_sent += 1;
            f += step;
        }
    }
    let allocs_end = cfg.alloc_counter.map(|c| c());
    let report = router.finish();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    let t = &report.stats.totals;
    let ct = report.conntrack.as_ref().expect("tracking ran");
    let lb = report.lb.as_ref().copied().unwrap_or_default();
    let steady_allocs_per_packet = match (allocs_mid, allocs_end) {
        (Some(a), Some(b)) if submitted > half => {
            Some(b.saturating_sub(a) as f64 / (submitted - half) as f64)
        }
        _ => None,
    };
    LbPoint {
        scenario,
        flows,
        pps: submitted as f64 / secs,
        p50_ns: report.latency_ns(0.50),
        p99_ns: report.latency_ns(0.99),
        benign_sent,
        benign_delivered: t.per_port.get(1).copied().unwrap_or(0),
        storm_sent,
        storm_forwarded: t.per_port.get(3).copied().unwrap_or(0),
        assigned: lb.assigned,
        rewrites_to_backend: lb.rewrites_to_backend,
        no_backend: lb.no_backend,
        peak_flows: ct.peak_flows,
        dropped_no_flow: t.dropped[DropReason::NoFlow as usize],
        dropped_table_full: t.dropped[DropReason::FlowTableFull as usize],
        steady_allocs_per_packet,
    }
}

/// Sizing for the virtual-clock failover harness.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Client flows held established through the death.
    pub flows: usize,
    /// Measurement ticks after establishment.
    pub rounds: usize,
    /// Virtual nanoseconds per tick (every flow offers one packet per tick).
    pub tick_ns: u64,
    /// Health-probe interval, ns (the recovery budget).
    pub probe_interval_ns: u64,
    /// 1-based probe round whose backend-2 probe fails (`fall` = 1, so
    /// this round *is* the death).
    pub death_round: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            flows: 256,
            rounds: 400,
            tick_ns: 100_000,
            probe_interval_ns: 1_000_000,
            death_round: 20,
        }
    }
}

/// What the failover harness measured.
#[derive(Debug, Clone, Copy)]
pub struct FailoverReport {
    /// Client flows in the run.
    pub flows: usize,
    /// Flows assigned to the doomed backend before death.
    pub victims: u64,
    /// Conntrack entries (twin slots) freed by the ejection.
    pub flows_ejected: u64,
    /// Virtual time of the death verdict.
    pub death_ns: u64,
    /// Virtual time from death to the first tick where every flow
    /// delivered data again; `None` if the run ended first.
    pub recovery_ns: Option<u64>,
    /// The probe interval the recovery is measured against.
    pub probe_interval_ns: u64,
    /// Delivered/offered before the death tick.
    pub goodput_pre: f64,
    /// Delivered/offered from the death tick through recovery.
    pub goodput_during: f64,
    /// Delivered/offered after recovery.
    pub goodput_post: f64,
}

impl FailoverReport {
    /// The acceptance bar: goodput back to 100 % within one probe interval.
    #[must_use]
    pub fn recovered_within_probe_interval(&self) -> bool {
        self.recovery_ns
            .is_some_and(|r| r <= self.probe_interval_ns)
    }
}

/// A virtual client's handshake position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    NeedSyn,
    NeedAck,
    Established,
}

/// Runs the scripted-death failover harness on the single-threaded LB
/// path under a virtual clock: establish `flows` clients against the VIP,
/// kill backend 2 via `Schedule::OneShotAt` on the probe site (`fall` = 1,
/// deterministic and replayable), eject its flows, and let every orphaned
/// client re-handshake. Goodput is data packets delivered over packets
/// offered; handshake retries spend offered slots without delivering,
/// which is exactly the cost failover should be charged.
#[must_use]
#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
pub fn run_failover(cfg: &FailoverConfig) -> FailoverReport {
    let table = lb_table();
    let lb_cfg = LbConfig {
        vip: u32::from_be_bytes(LB_VIP),
        vport: LB_VPORT,
        backends: lb_backends(),
        probe_interval_ns: cfg.probe_interval_ns,
        fall: 1,
        // The dead backend stays dead for the whole run: recovery is the
        // clients' story here, not the backend's.
        rise: u32::MAX,
    };
    // Probes run in backend order, so call 3k of the probe site is round
    // k's backend-2 probe: OneShotAt(3 * death_round) is a scripted,
    // single-backend death.
    let plan = FaultPlan::new(0xE17)
        .with_site(SITE_LB_PROBE_FAIL, Schedule::OneShotAt(3 * cfg.death_round));
    let mut pool = BackendPool::new(lb_cfg).with_injector(FaultInjector::new(plan));
    let mut ct = Conntrack::new(ConntrackConfig {
        max_flows: 4 * cfg.flows,
        syn_backlog: cfg.flows.max(64),
        ..ConntrackConfig::default()
    });
    let mut forge = FrameForge::new(32);
    let mut now = 0u64;
    let vip = u32::from_be_bytes(LB_VIP);

    let key_of = |f: usize| {
        let (src, sport) = client_endpoint(f);
        FlowKey::canonical(u32::from_be_bytes(src), vip, sport, LB_VPORT, IPPROTO_TCP)
    };
    let send = |state: CState,
                f: usize,
                ct: &mut Conntrack,
                pool: &mut BackendPool,
                forge: &mut FrameForge,
                now: u64| {
        let (src, sport) = client_endpoint(f);
        let (flags, payload) = match state {
            CState::NeedSyn => (TCP_SYN, false),
            CState::NeedAck => (TCP_ACK, false),
            CState::Established => (TCP_ACK, true),
        };
        let ack_no = ct.cookie(&key_of(f)).wrapping_add(1);
        let frame = forge.shape(payload, src, LB_VIP, sport, LB_VPORT, flags, 1, ack_no);
        let mut buf = [0u8; 256];
        let n = frame.len().min(buf.len());
        buf[..n].copy_from_slice(&frame[..n]);
        route_frame_lb(&mut buf[..n], &table, None, ct, pool, now)
    };

    // Establishment under the running probe clock (death_round is chosen
    // well past it; the assert below keeps configs honest).
    let mut states = vec![CState::NeedSyn; cfg.flows];
    while states.iter().any(|&s| s != CState::Established) {
        now += cfg.tick_ns;
        assert!(
            pool.maybe_probe(now).is_empty(),
            "death_round must land after establishment"
        );
        for (f, st) in states.iter_mut().enumerate() {
            let s = *st;
            if s == CState::Established {
                continue;
            }
            if send(s, f, &mut ct, &mut pool, &mut forge, now).is_ok() {
                *st = match s {
                    CState::NeedSyn => CState::NeedAck,
                    _ => CState::Established,
                };
            }
        }
    }
    let victims = (0..cfg.flows)
        .filter(|&f| ct.nat_of(&key_of(f)).is_some_and(|n| n.backend == 2))
        .count() as u64;

    // Measured ticks: every flow offers one packet per tick; orphans spend
    // ticks re-handshaking.
    let mut death_ns = None;
    let mut recovery_ns = None;
    let mut pre = (0u64, 0u64); // (delivered, offered)
    let mut during = (0u64, 0u64);
    let mut post = (0u64, 0u64);
    for _ in 0..cfg.rounds {
        now += cfg.tick_ns;
        let downed = pool.maybe_probe(now).to_vec();
        for &b in &downed {
            let freed = ct.eject_backend(b, EvictCause::BackendDead);
            pool.note_flows_ejected(freed);
            death_ns.get_or_insert(now);
        }
        let mut delivered = 0u64;
        for (f, st) in states.iter_mut().enumerate() {
            let s = *st;
            match (s, send(s, f, &mut ct, &mut pool, &mut forge, now)) {
                (CState::NeedSyn, Ok(_)) => *st = CState::NeedAck,
                (CState::NeedAck, Ok(_)) => *st = CState::Established,
                (CState::Established, Ok(_)) => delivered += 1,
                (CState::Established, Err(DropReason::NoFlow)) => *st = CState::NeedSyn,
                _ => {}
            }
        }
        let offered = cfg.flows as u64;
        let recovered = delivered == offered;
        match (death_ns, recovery_ns) {
            (None, _) => {
                pre.0 += delivered;
                pre.1 += offered;
            }
            (Some(d), None) => {
                during.0 += delivered;
                during.1 += offered;
                if recovered {
                    recovery_ns = Some(now - d);
                }
            }
            (Some(_), Some(_)) => {
                post.0 += delivered;
                post.1 += offered;
            }
        }
    }
    ct.check_invariants().expect("post-failover audit");
    let frac = |(d, o): (u64, u64)| if o == 0 { 1.0 } else { d as f64 / o as f64 };
    FailoverReport {
        flows: cfg.flows,
        victims,
        flows_ejected: pool.stats().flows_ejected,
        death_ns: death_ns.unwrap_or(0),
        recovery_ns,
        probe_interval_ns: cfg.probe_interval_ns,
        goodput_pre: frac(pre),
        goodput_during: frac(during),
        goodput_post: frac(post),
    }
}

/// The full LB bench record.
#[derive(Debug, Clone)]
pub struct LbBenchReport {
    /// Cores visible to the process.
    pub host_cores: usize,
    /// Worker threads per router scenario.
    pub workers: usize,
    /// Backends in the pool.
    pub backends: usize,
    /// The four router scenarios, baseline first.
    pub scenarios: Vec<LbPoint>,
    /// The virtual-clock failover run.
    pub failover: FailoverReport,
}

impl LbBenchReport {
    /// The no-LB control scenario.
    #[must_use]
    pub fn baseline(&self) -> Option<&LbPoint> {
        self.scenarios
            .iter()
            .find(|p| p.scenario == LbScenario::BaselineNoLb)
    }

    /// The rewriting steady-state scenario.
    #[must_use]
    pub fn steady(&self) -> Option<&LbPoint> {
        self.scenarios
            .iter()
            .find(|p| p.scenario == LbScenario::Steady)
    }

    /// Headline ratio: rewriting steady-state pps over the no-LB control.
    #[must_use]
    pub fn rewrite_pps_ratio(&self) -> Option<f64> {
        match (self.baseline(), self.steady()) {
            (Some(b), Some(s)) if b.pps > 0.0 => Some(s.pps / b.pps),
            _ => None,
        }
    }

    /// Renders the `BENCH_lb.json` record (hand-rolled: no serde in the
    /// container, and the schema is flat).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"bench\": \"lb\",");
        let _ = writeln!(s, "  \"schema\": 1,");
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        let _ = writeln!(s, "  \"backends\": {},", self.backends);
        let _ = writeln!(s, "  \"scenarios\": [");
        for (i, p) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 == self.scenarios.len() {
                ""
            } else {
                ","
            };
            let allocs = p
                .steady_allocs_per_packet
                .map_or_else(|| "null".to_owned(), |a| format!("{a:.4}"));
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"flows\": {}, \"pps\": {:.0}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"benign_sent\": {}, \
                 \"benign_delivered\": {}, \"benign_delivery\": {:.4}, \
                 \"storm_sent\": {}, \"storm_forwarded\": {}, \"assigned\": {}, \
                 \"rewrites_to_backend\": {}, \"no_backend\": {}, \
                 \"peak_flows\": {}, \"dropped_no_flow\": {}, \
                 \"dropped_table_full\": {}, \
                 \"steady_allocs_per_packet\": {allocs}}}{comma}",
                p.scenario.name(),
                p.flows,
                p.pps,
                p.p50_ns,
                p.p99_ns,
                p.benign_sent,
                p.benign_delivered,
                p.benign_delivery(),
                p.storm_sent,
                p.storm_forwarded,
                p.assigned,
                p.rewrites_to_backend,
                p.no_backend,
                p.peak_flows,
                p.dropped_no_flow,
                p.dropped_table_full,
            );
        }
        let _ = writeln!(s, "  ],");
        let f = &self.failover;
        let recovery = f
            .recovery_ns
            .map_or_else(|| "null".to_owned(), |r| r.to_string());
        let _ = writeln!(s, "  \"failover\": {{");
        let _ = writeln!(s, "    \"flows\": {},", f.flows);
        let _ = writeln!(s, "    \"victims\": {},", f.victims);
        let _ = writeln!(s, "    \"flows_ejected\": {},", f.flows_ejected);
        let _ = writeln!(s, "    \"death_ns\": {},", f.death_ns);
        let _ = writeln!(s, "    \"recovery_ns\": {recovery},");
        let _ = writeln!(s, "    \"probe_interval_ns\": {},", f.probe_interval_ns);
        let _ = writeln!(s, "    \"goodput_pre\": {:.4},", f.goodput_pre);
        let _ = writeln!(s, "    \"goodput_during\": {:.4},", f.goodput_during);
        let _ = writeln!(s, "    \"goodput_post\": {:.4},", f.goodput_post);
        let _ = writeln!(
            s,
            "    \"recovery_within_probe_interval\": {}",
            f.recovered_within_probe_interval()
        );
        let _ = writeln!(s, "  }},");
        let steady_allocs = self
            .steady()
            .and_then(|p| p.steady_allocs_per_packet)
            .map_or_else(|| "null".to_owned(), |a| format!("{a:.4}"));
        let ratio = self
            .rewrite_pps_ratio()
            .map_or_else(|| "null".to_owned(), |r| format!("{r:.4}"));
        let _ = writeln!(s, "  \"headline\": {{");
        let _ = writeln!(s, "    \"rewrite_pps_ratio\": {ratio},");
        let _ = writeln!(s, "    \"steady_allocs_per_packet\": {steady_allocs},");
        let _ = writeln!(
            s,
            "    \"recovery_within_probe_interval\": {}",
            f.recovered_within_probe_interval()
        );
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

/// Best of `cfg.trials` runs of one scenario, by pps.
fn best_of(cfg: &LbBenchConfig, scenario: LbScenario) -> LbPoint {
    (0..cfg.trials.max(1))
        .map(|_| run_lb_point(cfg, scenario))
        .max_by(|a, b| a.pps.total_cmp(&b.pps))
        .expect("at least one trial")
}

/// Runs the full LB bench: all four router scenarios plus the
/// virtual-clock failover harness.
#[must_use]
pub fn run_lb_bench(cfg: &LbBenchConfig, failover: &FailoverConfig) -> LbBenchReport {
    let scenarios = [
        LbScenario::BaselineNoLb,
        LbScenario::Steady,
        LbScenario::PortScanStorm,
        LbScenario::Slowloris,
    ]
    .iter()
    .map(|&sc| best_of(cfg, sc))
    .collect();
    LbBenchReport {
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        workers: cfg.workers,
        backends: lb_backends().len(),
        scenarios,
        failover: run_failover(failover),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LbBenchConfig {
        LbBenchConfig {
            flows: 600,
            data_rounds: 4,
            min_benign_packets: 0,
            slowloris_flows: 1_200,
            slowloris_rounds: 8,
            slowloris_stride: 8,
            syn_backlog: 256,
            ..LbBenchConfig::quick()
        }
    }

    #[test]
    fn steady_scenario_delivers_and_rewrites_everything() {
        let p = run_lb_point(&tiny(), LbScenario::Steady);
        assert_eq!(p.benign_sent, 600 * (2 + 4));
        assert_eq!(
            p.benign_delivered, p.benign_sent,
            "every balanced packet lands on the backend port"
        );
        assert_eq!(p.assigned, 600, "one assignment per flow");
        assert_eq!(
            p.rewrites_to_backend, p.benign_sent,
            "every forward packet rewrites"
        );
        assert_eq!(p.storm_sent, 0);
        assert_eq!(p.no_backend, 0);
    }

    #[test]
    fn baseline_scenario_skips_the_lb_entirely() {
        let p = run_lb_point(&tiny(), LbScenario::BaselineNoLb);
        assert_eq!(p.benign_delivered, p.benign_sent, "direct dials forward");
        assert_eq!(p.assigned, 0);
        assert_eq!(p.rewrites_to_backend, 0);
    }

    #[test]
    fn portscan_storm_does_not_dent_benign_delivery() {
        let p = run_lb_point(&tiny(), LbScenario::PortScanStorm);
        assert!(p.storm_sent > 0, "the storm must actually run");
        assert!(
            p.benign_delivery() > 0.99,
            "benign delivery collapsed under the scan: {:.3}",
            p.benign_delivery()
        );
    }

    #[test]
    fn slowloris_population_stays_resident() {
        let p = run_lb_point(&tiny(), LbScenario::Slowloris);
        assert_eq!(p.assigned, 1_200);
        assert_eq!(p.benign_delivered, p.benign_sent);
        // Twin slots: the resident table is twice the flow population.
        assert!(p.peak_flows >= 2 * 1_200 / 2, "population must stay live");
    }

    #[test]
    fn failover_recovers_within_one_probe_interval() {
        let cfg = FailoverConfig {
            flows: 128,
            rounds: 120,
            death_round: 10,
            ..FailoverConfig::default()
        };
        let r = run_failover(&cfg);
        assert!(r.victims > 0, "weight-2 backend 2 must hold flows");
        assert_eq!(r.flows_ejected, 2 * r.victims, "twins ejected in pairs");
        assert!(r.death_ns > 0);
        assert!(
            (r.goodput_pre - 1.0).abs() < 1e-9,
            "steady state is lossless"
        );
        assert!(r.goodput_during < 1.0, "death costs handshake ticks");
        assert!((r.goodput_post - 1.0).abs() < 1e-9, "recovery is complete");
        assert!(
            r.recovered_within_probe_interval(),
            "recovery {:?} must beat the probe interval {}",
            r.recovery_ns,
            r.probe_interval_ns
        );
    }

    #[test]
    fn report_json_is_well_formed_and_carries_the_headline() {
        let report = run_lb_bench(
            &LbBenchConfig {
                flows: 200,
                slowloris_flows: 200,
                slowloris_rounds: 4,
                data_rounds: 2,
                min_benign_packets: 0,
                syn_backlog: 64,
                ..LbBenchConfig::quick()
            },
            &FailoverConfig {
                flows: 64,
                rounds: 80,
                death_round: 8,
                ..FailoverConfig::default()
            },
        );
        assert_eq!(report.scenarios.len(), 4);
        assert!(report.rewrite_pps_ratio().is_some());
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"lb\""));
        assert!(json.contains("\"schema\": 1,"));
        assert!(json.contains("\"name\": \"portscan_storm\""));
        assert!(json.contains("\"failover\": {"));
        assert!(json.contains("\"rewrite_pps_ratio\""));
        assert!(json.contains("\"recovery_within_probe_interval\""));
    }
}
