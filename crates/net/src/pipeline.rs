//! The batched parse → validate → route fast path.
//!
//! Zero-copy all the way down: each frame is parsed in place with the
//! [`sysrepr::packet`] views (total parsing — every header is validated
//! before any field is used), checksummed, TTL-checked, and routed through
//! any [`Routes`] source — an exclusive [`crate::lpm::TrieTable`], a
//! mutex-held one, or a pinned copy-on-write snapshot
//! ([`crate::cowtrie::RouteView`]). Nothing in this module allocates per
//! packet; the only state is the [`BatchStats`] counters.

use crate::cache::FlowCache;
use crate::conntrack::{Conntrack, FlowKey, TcpSummary};
use crate::lpm::Routes;
use sysrepr::packet::{EthernetView, EthernetViewMut, Ipv4View, IPPROTO_TCP};
use sysrepr::ReprError;

/// Why a packet was dropped instead of forwarded. The variants double as
/// indices into [`BatchStats::dropped`]. Reasons 5..=8 are shed decisions
/// from the connection tracker ([`crate::conntrack`]) — the typed
/// vocabulary overload defense speaks in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Truncated or structurally malformed at any header layer.
    Malformed = 0,
    /// Valid Ethernet, but the payload is not IPv4.
    NotIpv4 = 1,
    /// IPv4 header checksum mismatch.
    BadChecksum = 2,
    /// TTL expired (zero on arrival).
    TtlExpired = 3,
    /// No route covers the destination.
    NoRoute = 4,
    /// TCP packet on no tracked flow (and not a flow-creating SYN) — the
    /// strict stateful stance that makes bare-ACK floods cheap to shed.
    NoFlow = 5,
    /// Stateless-fallback ACK whose cookie failed validation.
    BadCookie = 6,
    /// Admission denied: the flow table (or SYN backlog) had no room the
    /// defense policy was willing to make.
    FlowTableFull = 7,
    /// Segment illegal for the flow's current TCP state.
    StateViolation = 8,
    /// A load-balanced virtual IP had no healthy backend to assign
    /// ([`crate::lb`]).
    NoBackend = 9,
}

/// Number of [`DropReason`] variants.
pub const DROP_REASONS: usize = 10;

/// Display labels, indexed by `DropReason as usize`.
pub const DROP_LABELS: [&str; DROP_REASONS] = [
    "malformed",
    "not-ipv4",
    "bad-checksum",
    "ttl-expired",
    "no-route",
    "no-flow",
    "bad-cookie",
    "flow-table-full",
    "state-violation",
    "no-backend",
];

/// Metric names for the per-reason drop counters, indexed like
/// [`DROP_LABELS`]. Static so they can key the `sysobs` registry directly.
pub const DROP_METRICS: [&str; DROP_REASONS] = [
    "net.drop.malformed",
    "net.drop.not-ipv4",
    "net.drop.bad-checksum",
    "net.drop.ttl-expired",
    "net.drop.no-route",
    "net.drop.no-flow",
    "net.drop.bad-cookie",
    "net.drop.flow-table-full",
    "net.drop.state-violation",
    "net.drop.no-backend",
];

/// Per-batch (or per-worker, accumulated) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Frames whose full header chain validated.
    pub parsed: u64,
    /// Frames forwarded to a next hop.
    pub forwarded: u64,
    /// Frames dropped, by [`DropReason`] index.
    pub dropped: [u64; DROP_REASONS],
}

impl BatchStats {
    /// Total drops across all reasons.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Total frames seen (forwarded + dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.forwarded + self.dropped_total()
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.parsed += other.parsed;
        self.forwarded += other.forwarded;
        for (a, b) in self.dropped.iter_mut().zip(other.dropped.iter()) {
            *a += b;
        }
    }

    /// Renders these counters as a [`sysobs::Snapshot`] under `net.*`, one
    /// counter per drop reason — the unified form the experiment harness
    /// merges with kernel and memory snapshots.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("net.parsed", self.parsed);
        snap.set_counter("net.forwarded", self.forwarded);
        for (name, &n) in DROP_METRICS.iter().zip(self.dropped.iter()) {
            snap.set_counter(*name, n);
        }
        snap
    }
}

/// Parses and validates one frame, returning the `(src, dst)` addresses a
/// routing decision needs — the shared front half of [`route_frame`] and
/// [`route_frame_cached`].
#[inline]
fn validate_frame(frame: &[u8]) -> Result<(u32, u32), DropReason> {
    let ipv4 = validate_ipv4(frame)?;
    Ok((u32::from_be_bytes(ipv4.src()), ipv4.dst_u32()))
}

/// The validation front half, keeping the IPv4 view alive so the tracked
/// path can reach into the transport header.
#[inline]
pub(crate) fn validate_ipv4(frame: &[u8]) -> Result<Ipv4View<'_>, DropReason> {
    let eth = EthernetView::parse(frame).map_err(|_| DropReason::Malformed)?;
    let ipv4 = eth.ipv4().map_err(|e| match e {
        ReprError::InvalidField {
            field: "ethertype", ..
        } => DropReason::NotIpv4,
        _ => DropReason::Malformed,
    })?;
    if ipv4.verify_checksum().is_err() {
        return Err(DropReason::BadChecksum);
    }
    if ipv4.ttl() == 0 {
        return Err(DropReason::TtlExpired);
    }
    Ok(ipv4)
}

/// Decrements the TTL of an already-validated frame in place, patching the
/// IPv4 header checksum incrementally (RFC 1624). A frame whose decrement
/// would reach zero is dropped as [`DropReason::TtlExpired`] — the seed
/// forwarded `ttl == 1` packets unchanged, so a routing loop never expired
/// them. Runs only on frames that won a route: drops leave the buffer
/// untouched.
#[inline]
pub(crate) fn decrement_ttl(frame: &mut [u8]) -> Result<(), DropReason> {
    let mut ipv4 = EthernetViewMut::parse(frame)
        .and_then(EthernetViewMut::ipv4_mut)
        .map_err(|_| DropReason::Malformed)?;
    if ipv4.ttl() <= 1 {
        return Err(DropReason::TtlExpired);
    }
    ipv4.decrement_ttl().map_err(|_| DropReason::Malformed)?;
    Ok(())
}

/// Parses, validates, and routes a single frame, decrementing its TTL in
/// place on forward. Returns the next hop, or the reason the frame must be
/// dropped.
///
/// # Errors
///
/// The [`DropReason`] for any frame that fails validation or routing.
pub fn route_frame<T: Copy, R: Routes<T>>(frame: &mut [u8], table: &R) -> Result<T, DropReason> {
    let (_, dst) = validate_frame(frame)?;
    let hop = table.lookup(dst).ok_or(DropReason::NoRoute)?;
    decrement_ttl(frame)?;
    Ok(hop)
}

/// [`route_frame`] with the trie walk fronted by a per-worker
/// [`FlowCache`]: repeated flows resolve in one hash-and-compare. Identical
/// decisions to [`route_frame`] by construction (exact keys, generation
/// invalidation) — a property the differential suite tests.
///
/// # Errors
///
/// The [`DropReason`] for any frame that fails validation or routing.
pub fn route_frame_cached<T: Copy, R: Routes<T>>(
    frame: &mut [u8],
    table: &R,
    cache: &mut FlowCache<T>,
) -> Result<T, DropReason> {
    let (src, dst) = validate_frame(frame)?;
    let hop = cache
        .lookup_or_route(table, src, dst)
        .ok_or(DropReason::NoRoute)?;
    decrement_ttl(frame)?;
    Ok(hop)
}

/// The production tracked path: validate, consult the connection tracker
/// for TCP (state machine + admission control), then route — optionally
/// through the worker's [`FlowCache`]. Non-TCP traffic bypasses tracking
/// (the tracker is an L4 layer; UDP and friends are stateless here).
///
/// `now_ns` is the caller's clock — workers pass monotonic time, tests and
/// the deterministic bench pass virtual time, which is what makes eviction
/// and timeout behavior replayable.
///
/// # Errors
///
/// The [`DropReason`] for any frame that fails validation, tracking
/// admission, or routing.
pub fn route_frame_tracked<T: Copy, R: Routes<T>>(
    frame: &mut [u8],
    table: &R,
    cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    now_ns: u64,
) -> Result<T, DropReason> {
    let (src, dst) = {
        let ipv4 = validate_ipv4(frame)?;
        let src = u32::from_be_bytes(ipv4.src());
        let dst = ipv4.dst_u32();
        if ipv4.protocol() == IPPROTO_TCP {
            let tcp = ipv4.tcp().map_err(|_| DropReason::Malformed)?;
            let key = FlowKey::canonical(src, dst, tcp.src_port(), tcp.dst_port(), IPPROTO_TCP);
            ct.admit_tcp(&key, TcpSummary::from_view(&tcp), now_ns)?;
        }
        (src, dst)
    };
    let hop = match cache {
        Some(c) => c
            .lookup_or_route(table, src, dst)
            .ok_or(DropReason::NoRoute),
        None => table.lookup(dst).ok_or(DropReason::NoRoute),
    }?;
    decrement_ttl(frame)?;
    Ok(hop)
}

/// The causally traced twin of the single-frame paths: identical routing
/// (and conntrack) decisions, with the parse and route stages wrapped in
/// spans and a `net.frame.egress` marker on forward. Only the first frame
/// of a batch whose dispatch won the sampling draw comes through here —
/// the staged spans record under the batch's adopted context, so a sampled
/// packet's postmortem shows `dispatch → parse → route → egress` across
/// the dispatcher and worker threads, while untraced batches never reach
/// this function at all.
fn route_frame_traced<T: Copy, R: Routes<T>>(
    frame: &mut [u8],
    table: &R,
    cache: Option<&mut FlowCache<T>>,
    ct: Option<&mut Conntrack>,
    now_ns: u64,
) -> Result<T, DropReason> {
    let (src, dst) = {
        sysobs::obs_span!("net.frame.parse");
        let ipv4 = validate_ipv4(frame)?;
        let src = u32::from_be_bytes(ipv4.src());
        let dst = ipv4.dst_u32();
        // Conntrack admission rides in the parse stage: it reads the
        // transport header the parse just validated.
        if let Some(ct) = ct {
            if ipv4.protocol() == IPPROTO_TCP {
                let tcp = ipv4.tcp().map_err(|_| DropReason::Malformed)?;
                let key = FlowKey::canonical(src, dst, tcp.src_port(), tcp.dst_port(), IPPROTO_TCP);
                ct.admit_tcp(&key, TcpSummary::from_view(&tcp), now_ns)?;
            }
        }
        (src, dst)
    };
    let hop = {
        sysobs::obs_span!("net.frame.route");
        match cache {
            Some(c) => c.lookup_or_route(table, src, dst),
            None => table.lookup(dst),
        }
    }
    .ok_or(DropReason::NoRoute)?;
    decrement_ttl(frame)?;
    sysobs::obs_span_hot!("net.frame.egress");
    Ok(hop)
}

/// True when this batch's first frame should take the staged-span path:
/// a causal context is active (the dispatch draw was won upstream) and
/// there is a frame to trace.
#[inline]
pub(crate) fn trace_first_frame<B>(frames: &[B]) -> bool {
    !frames.is_empty() && sysobs::context::active()
}

/// Runs a whole batch through [`route_frame_tracked`] — the sharded
/// router's path when connection tracking is enabled. Mirrors batch
/// counters plus the tracker's live/half-open gauges into the `sysobs`
/// registry, one update per batch.
pub fn process_batch_tracked<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    mut cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    now_ns: u64,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    sysobs::obs_span!("net.batch");
    let stats = if trace_first_frame(frames) {
        let mut stats = BatchStats::default();
        tally(
            &mut stats,
            route_frame_traced(
                frames[0].as_mut(),
                table,
                cache.as_deref_mut(),
                Some(&mut *ct),
                now_ns,
            ),
            &mut forward,
        );
        stats.merge(&process_batch_tracked_uninstrumented(
            &mut frames[1..],
            table,
            cache,
            ct,
            now_ns,
            &mut forward,
        ));
        stats
    } else {
        process_batch_tracked_uninstrumented(frames, table, cache, ct, now_ns, &mut forward)
    };
    mirror_batch_stats(&stats);
    if sysobs::metrics_on() {
        sysobs::obs_count!("net.ct.batches", 1);
        #[allow(clippy::cast_possible_wrap)]
        {
            sysobs::registry().gauge("net.ct.live").set(ct.len() as i64);
            sysobs::registry()
                .gauge("net.ct.half_open")
                .set(ct.half_open_len() as i64);
        }
    }
    stats
}

/// [`process_batch_tracked`] with no observability hooks — the
/// compiled-baseline tracked path (`instrument: false` workers, and the
/// E14 bench's measured configuration).
pub fn process_batch_tracked_uninstrumented<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    mut cache: Option<&mut FlowCache<T>>,
    ct: &mut Conntrack,
    now_ns: u64,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    let mut stats = BatchStats::default();
    for frame in frames.iter_mut() {
        tally(
            &mut stats,
            route_frame_tracked(frame.as_mut(), table, cache.as_deref_mut(), ct, now_ns),
            &mut forward,
        );
    }
    stats
}

/// Runs a whole batch through [`route_frame`], invoking `forward(next_hop)`
/// for every packet that survives, and returns the batch's counters.
///
/// `parsed` counts frames whose headers validated (checksum and TTL checks
/// happen after parsing, so a bad-checksum frame is parsed but dropped).
///
/// Mirrors the batch's counters into the `sysobs` registry (amortized: one
/// update per batch, not per frame) and opens a `net.batch` span under full
/// tracing. For a compiled-out-baseline path with zero observability code,
/// see [`process_batch_uninstrumented`].
pub fn process_batch<T, R, B, F>(frames: &mut [B], table: &R, mut forward: F) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    sysobs::obs_span!("net.batch");
    let stats = if trace_first_frame(frames) {
        let mut stats = BatchStats::default();
        tally(
            &mut stats,
            route_frame_traced(frames[0].as_mut(), table, None, None, 0),
            &mut forward,
        );
        stats.merge(&process_batch_uninstrumented(
            &mut frames[1..],
            table,
            &mut forward,
        ));
        stats
    } else {
        process_batch_uninstrumented(frames, table, &mut forward)
    };
    mirror_batch_stats(&stats);
    stats
}

/// [`process_batch`] with the trie fronted by the worker's [`FlowCache`]:
/// the production path the sharded router runs. Mirrors the batch counters
/// *and* the cache's hit/miss deltas into the `sysobs` registry, one update
/// per batch.
pub fn process_batch_cached<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    cache: &mut FlowCache<T>,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    sysobs::obs_span!("net.batch");
    let (hits0, misses0) = (cache.hits(), cache.misses());
    let stats = if trace_first_frame(frames) {
        let mut stats = BatchStats::default();
        tally(
            &mut stats,
            route_frame_traced(frames[0].as_mut(), table, Some(&mut *cache), None, 0),
            &mut forward,
        );
        stats.merge(&process_batch_cached_uninstrumented(
            &mut frames[1..],
            table,
            cache,
            &mut forward,
        ));
        stats
    } else {
        process_batch_cached_uninstrumented(frames, table, cache, &mut forward)
    };
    mirror_batch_stats(&stats);
    if sysobs::metrics_on() {
        sysobs::obs_count!("net.cache.hits", cache.hits() - hits0);
        sysobs::obs_count!("net.cache.misses", cache.misses() - misses0);
    }
    stats
}

/// Mirrors one batch's counters into the `sysobs` registry (amortized: one
/// update per batch, not per frame).
pub(crate) fn mirror_batch_stats(stats: &BatchStats) {
    if sysobs::metrics_on() {
        sysobs::obs_count!("net.parsed", stats.parsed);
        sysobs::obs_count!("net.forwarded", stats.forwarded);
        sysobs::obs_count!("net.batches", 1);
        for (name, &n) in DROP_METRICS.iter().zip(stats.dropped.iter()) {
            if n > 0 {
                sysobs::registry().counter(name).add(n);
            }
        }
    }
}

/// [`process_batch`] with no observability hooks at all — not even the
/// disabled-mode atomic load. This is the compiled baseline experiment E11
/// measures instrumentation overhead against.
pub fn process_batch_uninstrumented<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    let mut stats = BatchStats::default();
    for frame in frames.iter_mut() {
        tally(&mut stats, route_frame(frame.as_mut(), table), &mut forward);
    }
    stats
}

/// [`process_batch_uninstrumented`] over [`route_frame_cached`] — the
/// compiled-out-baseline path with the flow cache, used by the
/// `instrument: false` router workers.
pub fn process_batch_cached_uninstrumented<T, R, B, F>(
    frames: &mut [B],
    table: &R,
    cache: &mut FlowCache<T>,
    mut forward: F,
) -> BatchStats
where
    T: Copy,
    R: Routes<T>,
    B: AsRef<[u8]> + AsMut<[u8]>,
    F: FnMut(T),
{
    let mut stats = BatchStats::default();
    for frame in frames.iter_mut() {
        tally(
            &mut stats,
            route_frame_cached(frame.as_mut(), table, cache),
            &mut forward,
        );
    }
    stats
}

/// Folds one frame's routing outcome into the batch counters.
#[inline]
pub(crate) fn tally<T: Copy, F: FnMut(T)>(
    stats: &mut BatchStats,
    outcome: Result<T, DropReason>,
    forward: &mut F,
) {
    match outcome {
        Ok(hop) => {
            stats.parsed += 1;
            stats.forwarded += 1;
            forward(hop);
        }
        Err(reason) => {
            if !matches!(reason, DropReason::Malformed | DropReason::NotIpv4) {
                stats.parsed += 1;
            }
            stats.dropped[reason as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conntrack::ConntrackConfig;
    use crate::lpm::TrieTable;
    use sysrepr::packet::{PacketBuilder, TCP_ACK, TCP_SYN};

    fn table() -> TrieTable<&'static str> {
        let mut t = TrieTable::new();
        t.insert(u32::from_be_bytes([10, 0, 0, 0]), 8, "core")
            .unwrap();
        t.insert(u32::from_be_bytes([10, 1, 0, 0]), 16, "edge")
            .unwrap();
        t
    }

    fn udp_to(dst: [u8; 4]) -> Vec<u8> {
        PacketBuilder::udp().dst_ip(dst).payload(&[7; 32]).build()
    }

    #[test]
    fn clean_frames_forward_to_longest_match() {
        let t = table();
        assert_eq!(route_frame(&mut udp_to([10, 1, 2, 3]), &t), Ok("edge"));
        assert_eq!(route_frame(&mut udp_to([10, 8, 0, 1]), &t), Ok("core"));
    }

    #[test]
    fn every_drop_reason_is_reachable() {
        let t = table();
        assert_eq!(route_frame(&mut [0u8; 6], &t), Err(DropReason::Malformed));
        let mut non_ip = udp_to([10, 0, 0, 1]);
        non_ip[12] = 0x86; // EtherType -> not IPv4
        non_ip[13] = 0xDD;
        assert_eq!(route_frame(&mut non_ip, &t), Err(DropReason::NotIpv4));
        let mut corrupt = PacketBuilder::udp()
            .dst_ip([10, 0, 0, 1])
            .corrupt_checksum()
            .build();
        assert_eq!(route_frame(&mut corrupt, &t), Err(DropReason::BadChecksum));
        let mut stale = PacketBuilder::udp().dst_ip([10, 0, 0, 1]).ttl(0).build();
        assert_eq!(route_frame(&mut stale, &t), Err(DropReason::TtlExpired));
        assert_eq!(
            route_frame(&mut udp_to([192, 168, 0, 1]), &t),
            Err(DropReason::NoRoute)
        );
    }

    #[test]
    fn batch_counters_conserve_frames() {
        let t = table();
        let mut frames = vec![
            udp_to([10, 1, 1, 1]),
            udp_to([10, 2, 2, 2]),
            udp_to([172, 16, 0, 1]),
            PacketBuilder::udp()
                .dst_ip([10, 0, 0, 1])
                .corrupt_checksum()
                .build(),
            vec![0u8; 3],
        ];
        let mut hops = Vec::new();
        let stats = process_batch(&mut frames, &t, |h| hops.push(h));
        assert_eq!(stats.total(), frames.len() as u64);
        assert_eq!(stats.forwarded, 2);
        assert_eq!(hops, vec!["edge", "core"]);
        assert_eq!(stats.dropped[DropReason::NoRoute as usize], 1);
        assert_eq!(stats.dropped[DropReason::BadChecksum as usize], 1);
        assert_eq!(stats.dropped[DropReason::Malformed as usize], 1);
        assert_eq!(stats.parsed, 4, "checksum drop still parsed");
        let mut merged = BatchStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.total(), 10);
    }

    #[test]
    fn snapshot_conserves_forwarded_plus_dropped() {
        let t = table();
        let mut frames = vec![
            udp_to([10, 1, 1, 1]),
            udp_to([10, 2, 2, 2]),
            udp_to([172, 16, 0, 1]),
            PacketBuilder::udp().dst_ip([10, 0, 0, 1]).ttl(0).build(),
            vec![0u8; 3],
        ];
        let stats = process_batch(&mut frames, &t, |_| {});
        let snap = stats.to_snapshot();
        // Conservation: every submitted frame is either forwarded or
        // attributed to exactly one drop-reason counter.
        assert_eq!(
            snap.counter("net.forwarded") + snap.counter_sum("net.drop."),
            frames.len() as u64,
            "snapshot loses or double-counts frames: {snap}"
        );
        assert_eq!(snap.counter("net.drop.ttl-expired"), 1);
        assert_eq!(snap.counter("net.drop.no-route"), 1);
        assert_eq!(snap.counter("net.drop.malformed"), 1);
        // Both batch paths agree frame for frame (fresh frames: the first
        // run decremented TTLs in place).
        let mut frames2 = vec![
            udp_to([10, 1, 1, 1]),
            udp_to([10, 2, 2, 2]),
            udp_to([172, 16, 0, 1]),
            PacketBuilder::udp().dst_ip([10, 0, 0, 1]).ttl(0).build(),
            vec![0u8; 3],
        ];
        let bare = process_batch_uninstrumented(&mut frames2, &t, |_| {});
        assert_eq!(bare, stats);
    }

    #[test]
    fn forwarded_frames_decrement_ttl_with_valid_checksum() {
        // Regression for the seed bug: `route_frame` forwarded packets with
        // their TTL untouched, so a routing loop never expired them.
        let t = table();
        let mut frame = PacketBuilder::udp().dst_ip([10, 1, 2, 3]).ttl(64).build();
        assert_eq!(route_frame(&mut frame, &t), Ok("edge"));
        let ip = sysrepr::packet::EthernetView::parse(&frame)
            .unwrap()
            .ipv4()
            .unwrap();
        assert_eq!(ip.ttl(), 63, "forwarding must decrement TTL");
        ip.verify_checksum()
            .expect("incremental fixup keeps the header checksum valid");
        // The decremented frame re-validates: it can be forwarded again.
        assert_eq!(route_frame(&mut frame, &t), Ok("edge"));
        assert_eq!(
            sysrepr::packet::EthernetView::parse(&frame)
                .unwrap()
                .ipv4()
                .unwrap()
                .ttl(),
            62
        );
    }

    #[test]
    fn ttl_one_frames_are_dropped_not_forwarded() {
        // The other half of the regression: a ttl == 1 frame must expire at
        // this hop (decrement would reach zero), under the same counter as
        // arrival-expired frames — and its buffer must be left untouched.
        let t = table();
        let mut frame = PacketBuilder::udp().dst_ip([10, 1, 2, 3]).ttl(1).build();
        let before = frame.clone();
        assert_eq!(route_frame(&mut frame, &t), Err(DropReason::TtlExpired));
        assert_eq!(frame, before, "dropped frames are not mutated");
        let mut cache = FlowCache::new(16);
        assert_eq!(
            route_frame_cached(&mut frame.clone(), &t, &mut cache),
            Err(DropReason::TtlExpired)
        );
        let mut ct = Conntrack::new(ConntrackConfig::default());
        assert_eq!(
            route_frame_tracked(&mut frame.clone(), &t, None, &mut ct, 0),
            Err(DropReason::TtlExpired)
        );
        // Batch accounting attributes the drop to net.drop.ttl-expired.
        let stats = process_batch(&mut [frame], &t, |_| {});
        assert_eq!(stats.forwarded, 0);
        assert_eq!(stats.dropped[DropReason::TtlExpired as usize], 1);
    }

    fn tcp_to(dst: [u8; 4], sport: u16, flags: u8) -> Vec<u8> {
        PacketBuilder::tcp()
            .src_ip([10, 9, 9, 9])
            .dst_ip(dst)
            .src_port(sport)
            .dst_port(443)
            .tcp_flags(flags)
            .build()
    }

    #[test]
    fn tracked_path_gates_tcp_and_passes_udp() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        // A bare ACK with no flow is shed; a SYN opens one; then data flows.
        assert_eq!(
            route_frame_tracked(
                &mut tcp_to([10, 1, 0, 1], 5000, TCP_ACK),
                &t,
                None,
                &mut ct,
                0
            ),
            Err(DropReason::NoFlow)
        );
        assert_eq!(
            route_frame_tracked(
                &mut tcp_to([10, 1, 0, 1], 5000, TCP_SYN),
                &t,
                None,
                &mut ct,
                1
            ),
            Ok("edge")
        );
        assert_eq!(
            route_frame_tracked(
                &mut tcp_to([10, 1, 0, 1], 5000, TCP_ACK),
                &t,
                None,
                &mut ct,
                2
            ),
            Ok("edge")
        );
        assert_eq!(ct.len(), 1);
        // UDP bypasses tracking entirely.
        assert_eq!(
            route_frame_tracked(&mut udp_to([10, 1, 0, 2]), &t, None, &mut ct, 3),
            Ok("edge")
        );
        assert_eq!(ct.len(), 1, "udp creates no flow state");
    }

    #[test]
    fn tracked_batch_counts_shed_tcp_by_reason() {
        let t = table();
        let mut ct = Conntrack::new(ConntrackConfig::default());
        let mut cache = FlowCache::new(64);
        let frames_fresh = || {
            vec![
                tcp_to([10, 1, 0, 1], 5000, TCP_SYN),
                tcp_to([10, 1, 0, 1], 5000, TCP_ACK),
                tcp_to([10, 1, 0, 1], 6000, TCP_ACK), // no flow -> shed
                udp_to([10, 2, 0, 1]),
                vec![0u8; 4], // malformed
            ]
        };
        let mut frames = frames_fresh();
        let mut hops = Vec::new();
        let stats = process_batch_tracked(&mut frames, &t, Some(&mut cache), &mut ct, 0, |h| {
            hops.push(h)
        });
        assert_eq!(stats.total(), frames.len() as u64);
        assert_eq!(stats.forwarded, 3);
        assert_eq!(stats.dropped[DropReason::NoFlow as usize], 1);
        assert_eq!(stats.dropped[DropReason::Malformed as usize], 1);
        assert_eq!(hops, vec!["edge", "edge", "core"]);
        // Cached and uncached tracked paths agree (fresh tracker per run:
        // admission is stateful).
        let mut ct2 = Conntrack::new(ConntrackConfig::default());
        let bare = process_batch_tracked_uninstrumented(
            &mut frames_fresh(),
            &t,
            None,
            &mut ct2,
            0,
            |_| {},
        );
        assert_eq!(bare, stats);
        ct.check_invariants().unwrap();
    }

    #[test]
    fn cached_batch_paths_agree_with_uncached() {
        let t = table();
        let frames_fresh = || {
            vec![
                udp_to([10, 1, 1, 1]),
                udp_to([10, 1, 1, 1]), // repeat: must hit the cache
                udp_to([10, 2, 2, 2]),
                udp_to([172, 16, 0, 1]),
                PacketBuilder::udp()
                    .dst_ip([10, 0, 0, 1])
                    .corrupt_checksum()
                    .build(),
                vec![0u8; 3],
            ]
        };
        let plain = process_batch_uninstrumented(&mut frames_fresh(), &t, |_| {});
        let mut cache = FlowCache::new(256);
        let mut hops = Vec::new();
        let cached = process_batch_cached(&mut frames_fresh(), &t, &mut cache, |h| hops.push(h));
        assert_eq!(plain, cached);
        assert_eq!(hops, vec!["edge", "edge", "core"]);
        assert!(cache.hits() >= 1, "the repeated flow must hit");
        let mut cache2 = FlowCache::new(256);
        let bare =
            process_batch_cached_uninstrumented(&mut frames_fresh(), &t, &mut cache2, |_| {});
        assert_eq!(bare, plain);
    }
}
