//! The per-worker flow → next-hop route cache.
//!
//! A trie walk is O(32) pointer chases; real traffic is a handful of hot
//! flows repeating the same destinations, so the sharded router fronts its
//! [`TrieTable`] with a direct-mapped cache: the flow key indexes a slot
//! through the shared FNV-1a hash (the same [`sysobs::fnv1a`] the
//! dispatcher shards flows with), and a hit is one hash of eight bytes plus
//! one exact compare — no walk at all.
//!
//! Two properties keep it *correct*, not just fast:
//!
//! * **Exact keys.** A slot stores the full `(src << 32) | dst` key and the
//!   lookup compares it exactly, so a hash collision is a miss, never a
//!   misroute. The cached value is `Option<next_hop>` — "no route" is
//!   cached too (negative caching), because a default-route-less table must
//!   keep dropping the same flow cheaply.
//! * **Generation invalidation.** Every routing-visible mutation bumps the
//!   route source's [`Routes::generation`]; the cache snapshots it and
//!   wholesale-clears itself the moment it observes a newer one. A cache
//!   can therefore never return a decision from before a route change —
//!   the differential property test in `tests/cache_properties.rs` drives
//!   arbitrary insert/remove/traffic interleavings against this claim.
//!
//! The cache is generic over [`Routes`], so the same code fronts an
//! exclusive [`TrieTable`](crate::lpm::TrieTable), a mutex-held one, or a
//! pinned copy-on-write view ([`crate::cowtrie::RouteView`]). Under route
//! churn the forced post-invalidation misses are *attributed*: they count in
//! `invalidation_misses` as well as `misses`, so a hit-rate drop can be
//! split into "routes changed" versus "working set outgrew the cache" —
//! experiment E15's miss-cause breakdown.

use crate::lpm::Routes;

/// One cache slot: the exact flow key plus the routing decision cached for
/// it — `Some(hop)` or a negative entry (`None`: the trie had no route).
type Slot<T> = Option<(u64, Option<T>)>;

/// Direct-mapped flow → next-hop cache over any [`Routes`] source.
///
/// Owned by exactly one router worker (no interior sharing, no locks); the
/// router reports its hit/miss/invalidation counters through the worker's
/// atomic counter block.
#[derive(Debug)]
pub struct FlowCache<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    generation: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    /// Misses attributable to a wholesale invalidation: refills of slots
    /// that held a decision before the last clear.
    invalidation_misses: u64,
    /// Occupied slots (so an invalidation knows how much it destroyed).
    filled: usize,
    /// Slots an invalidation emptied that have not been refilled yet; while
    /// nonzero, an empty-slot miss is attributed to invalidation.
    pending_refills: u64,
}

impl<T: Copy> FlowCache<T> {
    /// A cache with at least `slots` entries (rounded up to a power of two
    /// so the index is a mask, not a modulo).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        FlowCache {
            slots: vec![None; n].into_boxed_slice(),
            mask: n as u64 - 1,
            generation: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
            invalidation_misses: 0,
            filled: 0,
            pending_refills: 0,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (every miss walked the trie).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Wholesale clears triggered by table-generation changes.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// The subset of [`FlowCache::misses`] attributable to wholesale
    /// invalidation rather than cold start or capacity: refills of slots a
    /// generation change emptied. `invalidation_misses ≤ misses` always;
    /// the difference is the cold/capacity miss count.
    #[must_use]
    pub fn invalidation_misses(&self) -> u64 {
        self.invalidation_misses
    }

    /// Hit rate over the cache's lifetime (0.0 when never consulted).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The route decision for `(src, dst)`: the cached next hop when the
    /// slot holds this exact flow at the table's current generation, the
    /// table's answer (which is then cached, `None` included) otherwise.
    #[inline]
    pub fn lookup_or_route<R: Routes<T>>(&mut self, table: &R, src: u32, dst: u32) -> Option<T> {
        if self.generation != table.generation() {
            self.invalidate(table.generation());
        }
        let key = (u64::from(src) << 32) | u64::from(dst);
        #[allow(clippy::cast_possible_truncation)]
        let idx = (sysobs::fnv1a(&key.to_be_bytes()) & self.mask) as usize;
        match self.slots[idx] {
            Some((cached_key, hop)) if cached_key == key => {
                self.hits += 1;
                return hop;
            }
            Some(_) => {
                // Occupied by another flow: a collision/capacity miss, not
                // an invalidation refill.
                self.misses += 1;
            }
            None => {
                self.misses += 1;
                if self.pending_refills > 0 {
                    // This slot (or one like it) held a decision before the
                    // last clear: the miss is the invalidation's doing.
                    self.pending_refills -= 1;
                    self.invalidation_misses += 1;
                }
                self.filled += 1;
            }
        }
        let hop = table.lookup(dst);
        self.slots[idx] = Some((key, hop));
        hop
    }

    /// Drops every entry and adopts the table's generation. The destroyed
    /// entries become the refill debt that attributes upcoming misses.
    fn invalidate(&mut self, generation: u64) {
        self.slots.fill(None);
        self.generation = generation;
        self.invalidations += 1;
        self.pending_refills =
            (self.pending_refills + self.filled as u64).min(self.slots.len() as u64);
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm::TrieTable;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn table() -> TrieTable<u16> {
        let mut t = TrieTable::new();
        t.insert(ip(10, 0, 0, 0), 8, 1).unwrap();
        t.insert(ip(10, 1, 0, 0), 16, 2).unwrap();
        t
    }

    #[test]
    fn hit_repeats_the_trie_answer_without_walking() {
        let t = table();
        let mut c = FlowCache::new(64);
        let first = c.lookup_or_route(&t, ip(172, 16, 0, 1), ip(10, 1, 2, 3));
        let second = c.lookup_or_route(&t, ip(172, 16, 0, 1), ip(10, 1, 2, 3));
        assert_eq!(first, Some(2));
        assert_eq!(second, Some(2));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
        assert!(c.hit_rate() > 0.49 && c.hit_rate() < 0.51);
    }

    #[test]
    fn no_route_is_cached_negatively() {
        let t = table();
        let mut c = FlowCache::new(64);
        assert_eq!(c.lookup_or_route(&t, 1, ip(192, 168, 0, 1)), None);
        assert_eq!(c.lookup_or_route(&t, 1, ip(192, 168, 0, 1)), None);
        assert_eq!(c.hits(), 1, "the None decision itself is cached");
    }

    #[test]
    fn table_mutation_invalidates_before_the_next_answer() {
        let mut t = table();
        let mut c = FlowCache::new(64);
        assert_eq!(c.lookup_or_route(&t, 7, ip(10, 1, 2, 3)), Some(2));
        t.insert(ip(10, 1, 2, 0), 24, 9).unwrap();
        assert_eq!(
            c.lookup_or_route(&t, 7, ip(10, 1, 2, 3)),
            Some(9),
            "a cached decision must never survive a route change"
        );
        assert_eq!(c.invalidations(), 2, "initial generation adopt + insert");
        t.remove(ip(10, 1, 2, 0), 24).unwrap();
        assert_eq!(c.lookup_or_route(&t, 7, ip(10, 1, 2, 3)), Some(2));
    }

    #[test]
    fn colliding_flows_miss_instead_of_misrouting() {
        // A 1-slot cache forces every distinct flow into the same slot; the
        // exact key compare must turn collisions into misses.
        let t = table();
        let mut c = FlowCache::new(1);
        assert_eq!(c.capacity(), 1);
        for i in 0..32u32 {
            let dst = if i % 2 == 0 {
                ip(10, 1, 0, 1)
            } else {
                ip(10, 9, 0, 1)
            };
            let expect = if i % 2 == 0 { Some(2) } else { Some(1) };
            assert_eq!(c.lookup_or_route(&t, i, dst), expect);
        }
        assert_eq!(c.hits() + c.misses(), 32);
    }

    #[test]
    fn invalidation_misses_split_churn_from_cold_start() {
        let mut t = table();
        let mut c = FlowCache::new(64);
        // Cold-start misses: nothing pending, so none attributed.
        for i in 0..8u32 {
            c.lookup_or_route(&t, i, ip(10, 1, 0, i as u8));
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.invalidation_misses(), 0, "cold misses are not churn");
        // A route change clears 8 filled slots (assuming no collisions in a
        // 64-slot cache over 8 flows this run is deterministic either way:
        // the debt equals however many slots were actually occupied).
        let filled_before = c.filled as u64;
        t.insert(ip(10, 3, 0, 0), 16, 7).unwrap();
        // Refill the same working set: these misses are the invalidation's.
        for i in 0..8u32 {
            c.lookup_or_route(&t, i, ip(10, 1, 0, i as u8));
        }
        assert_eq!(c.invalidation_misses(), filled_before);
        assert!(c.invalidation_misses() <= c.misses());
        // Steady state again: hits, no new attribution.
        for i in 0..8u32 {
            c.lookup_or_route(&t, i, ip(10, 1, 0, i as u8));
        }
        assert_eq!(c.invalidation_misses(), filled_before);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlowCache::<u16>::new(0).capacity(), 1);
        assert_eq!(FlowCache::<u16>::new(3).capacity(), 4);
        assert_eq!(FlowCache::<u16>::new(4096).capacity(), 4096);
    }
}
