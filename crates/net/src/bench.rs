//! The data-plane bench harness: the ROADMAP's first recorded perf
//! trajectory.
//!
//! Four measurements, all deterministic in the sweep seed:
//!
//! * **lookup** — ns/lookup for the linear-scan reference vs the binary
//!   trie over the same ≥64-route table and address stream;
//! * **sweep** — end-to-end pipeline throughput (packets/sec) and
//!   per-packet p50/p99 latency across worker counts and batch sizes;
//! * **churn** — experiment E15's A/B arm: throughput under live route-flap
//!   churn (a wall-clock-paced updater thread flapping a route the traffic
//!   never hits), copy-on-write epoch publication vs the locked
//!   generation-clear baseline, at each target update rate;
//! * **update visibility** — how long after a route publication a reader
//!   first observes it, for both publication mechanisms.
//!
//! [`BenchReport::to_json`] renders the record `BENCH_router.json` at the
//! repo root is built from (`cargo run --release --example router_bench`),
//! so later PRs have a number to beat.

use crate::cowtrie::CowRouteTable;
use crate::lpm::{LinearTable, Routes as _, TrieTable};
use crate::router::{PortId, RouteMode, RouterConfig, ShardedRouter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use syscheck::shim::Mutex as ShimMutex;
use sysrepr::packet::PacketBuilder;

/// Number of next-hop ports the synthetic route set spreads over.
pub const PORTS: usize = 4;

/// Port names, indexed by [`PortId`].
pub const PORT_NAMES: [&str; PORTS] = ["core-a", "edge-b", "rack-c", "default-gw"];

/// Sweep sizing.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Packets per (workers × batch) configuration.
    pub packets: usize,
    /// Routes to install (plus the default route).
    pub routes: usize,
    /// UDP payload bytes per packet.
    pub payload_len: usize,
    /// Corrupt every Nth packet's checksum (0 = never).
    pub corrupt_every: usize,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Batch sizes to sweep.
    pub batch_sizes: Vec<usize>,
    /// Bounded-queue depth (batches) per worker.
    pub queue_depth: usize,
    /// Total lookups for the linear-vs-trie microbench.
    pub lookups: usize,
    /// Seed for the synthetic stream.
    pub seed: u64,
    /// Distinct flows in the stream (Zipf-ish: 87.5 % of packets come from
    /// the hottest `flows / 8`). `0` keeps the legacy stream where every
    /// packet is its own flow — the worst case for any flow cache.
    pub flows: usize,
    /// Process-wide allocation counter (e.g. a counting `#[global_allocator]`
    /// in the bench binary). When set, the sweep reads it at the stream's
    /// midpoint and end to report steady-state allocations per packet —
    /// the measured form of the router's zero-alloc claim.
    pub alloc_counter: Option<fn() -> u64>,
    /// Timed trials per (workers × batch) configuration; the best trial is
    /// recorded. Wall-clock throughput on a shared host is at the mercy of
    /// the scheduler — best-of-N reports what the data plane can sustain,
    /// not which trial drew the short straw.
    pub trials: usize,
    /// Target route-update rates (updates/sec) for the churn sweep; each
    /// rate runs once per [`RouteMode`]. Empty skips the churn sweep.
    pub churn_rates: Vec<u64>,
    /// Publish → first-observation samples for the update-visibility
    /// microbench. `0` skips it.
    pub visibility_samples: usize,
}

impl SweepConfig {
    /// CI-sized sweep (fractions of a second).
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig {
            packets: 20_000,
            routes: 64,
            payload_len: 64,
            corrupt_every: 500,
            worker_counts: vec![1, 2, 4],
            batch_sizes: vec![64],
            queue_depth: 8,
            lookups: 200_000,
            seed: 0x5EED_0E10,
            flows: 1024,
            alloc_counter: None,
            trials: 1,
            churn_rates: Vec::new(),
            visibility_samples: 0,
        }
    }

    /// Recorded-trajectory sweep (a few seconds).
    #[must_use]
    pub fn full() -> Self {
        SweepConfig {
            packets: 200_000,
            routes: 256,
            payload_len: 64,
            corrupt_every: 500,
            worker_counts: vec![1, 2, 4],
            batch_sizes: vec![16, 64, 256],
            queue_depth: 8,
            lookups: 2_000_000,
            seed: 0x5EED_0E10,
            flows: 4096,
            alloc_counter: None,
            trials: 3,
            churn_rates: vec![0, 100, 1_000, 10_000],
            visibility_samples: 512,
        }
    }
}

/// Linear-vs-trie lookup microbench result.
#[derive(Debug, Clone, Copy)]
pub struct LookupPoint {
    /// Routes actually installed (after canonical dedup).
    pub routes: usize,
    /// Lookups timed per table.
    pub lookups: usize,
    /// Mean ns/lookup for the linear scan.
    pub linear_ns: f64,
    /// Mean ns/lookup for the trie.
    pub trie_ns: f64,
}

impl LookupPoint {
    /// linear / trie: how many times faster the trie is.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.trie_ns <= 0.0 {
            0.0
        } else {
            self.linear_ns / self.trie_ns
        }
    }
}

/// One pipeline sweep configuration's measurement.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Worker threads.
    pub workers: usize,
    /// Frames per batch.
    pub batch_size: usize,
    /// Wall-clock packets/sec over the whole stream.
    pub pps: f64,
    /// Median per-packet latency (submit → batch completion), ns.
    pub p50_ns: u64,
    /// 99th-percentile per-packet latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile per-packet latency, ns — the tail the overload
    /// experiments watch.
    pub p999_ns: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all reasons).
    pub dropped: u64,
    /// Flow-cache hit rate across workers (0.0 with the cache disabled).
    pub cache_hit_rate: f64,
    /// Heap allocations per packet over the second half of the stream
    /// (pool warm by then); `None` when no [`SweepConfig::alloc_counter`]
    /// was supplied.
    pub steady_allocs_per_packet: Option<f64>,
}

/// One churn-sweep measurement: one [`RouteMode`] forwarding the full
/// stream while an updater thread flaps a route at a target rate.
#[derive(Debug, Clone, Copy)]
pub struct ChurnPoint {
    /// Route-publication mechanism under test.
    pub mode: RouteMode,
    /// Target update rate the churn thread paced itself to (updates/sec).
    pub target_updates_per_sec: u64,
    /// Updates actually applied during the run (wall-clock × rate).
    pub updates_applied: u64,
    /// Wall-clock packets/sec over the whole stream, churn included.
    pub pps: f64,
    /// Median per-packet latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile per-packet latency, ns.
    pub p99_ns: u64,
    /// Flow-cache hit rate under churn.
    pub cache_hit_rate: f64,
    /// Cache misses attributed to invalidation refills — the measured cost
    /// of each publication nuking the per-worker caches.
    pub invalidation_misses: u64,
    /// Steady-state allocations per packet (second half of the stream),
    /// churn thread included; `None` without an alloc counter.
    pub steady_allocs_per_packet: Option<f64>,
}

impl ChurnPoint {
    /// Short mode name for tables and JSON.
    #[must_use]
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            RouteMode::CowEpoch => "cow-epoch",
            RouteMode::LockedGenerationClear => "locked-gen-clear",
        }
    }
}

/// Publish → first-observation latency for both publication mechanisms.
#[derive(Debug, Clone, Copy)]
pub struct VisibilityPoint {
    /// Samples per mechanism.
    pub samples: usize,
    /// Median ns from COW publication to a fresh pin observing it.
    pub cow_p50_ns: u64,
    /// 99th-percentile ns for the COW path.
    pub cow_p99_ns: u64,
    /// Median ns from a locked-table update to a locking reader observing it.
    pub locked_p50_ns: u64,
    /// 99th-percentile ns for the locked path.
    pub locked_p99_ns: u64,
}

/// The full bench record.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Cores visible to the process (scaling context for the sweep).
    pub host_cores: usize,
    /// Packets per sweep configuration.
    pub packets: usize,
    /// Distinct flows in the stream (0 = every packet its own flow).
    pub flows: usize,
    /// The lookup microbench.
    pub lookup: LookupPoint,
    /// The pipeline sweep, in (workers, batch) order.
    pub sweep: Vec<SweepPoint>,
    /// The route-flap churn sweep, in (rate, mode) order; empty when
    /// [`SweepConfig::churn_rates`] is.
    pub churn: Vec<ChurnPoint>,
    /// The update-visibility microbench; `None` when
    /// [`SweepConfig::visibility_samples`] is 0.
    pub visibility: Option<VisibilityPoint>,
}

/// Deterministic route set: a default route plus `n` overlapping /8, /16,
/// and /24 prefixes under and around 10.0.0.0, spread over [`PORTS`] ports.
#[must_use]
pub fn route_set(n: usize) -> Vec<(u32, u8, PortId)> {
    let mut routes: Vec<(u32, u8, PortId)> = vec![(0, 0, 3)]; // default-gw
    for i in 0..n {
        let j = u32::try_from(i / 4).expect("route counts are small");
        let port = PortId::try_from(i % (PORTS - 1)).expect("fits");
        // Each arm is injective in j and the arms' keys are disjoint, so the
        // set holds exactly n routes; the /16s cover the low /24s and the
        // default route covers everything, giving real overlap.
        let (prefix, len) = match i % 4 {
            0 => ((10 << 24) | ((j % 16) << 16) | ((j / 16) << 8), 24),
            1 => ((10 << 24) | ((j % 200) << 16), 16),
            2 => ((10 << 24) | ((j % 16) << 16) | (((j / 16) + 100) << 8), 24),
            _ => ((20 + (j % 200)) << 24, 8),
        };
        routes.push((prefix, len, port));
    }
    routes
}

/// Builds both tables from the same route set; returns (trie, linear).
#[must_use]
pub fn build_tables(n: usize) -> (TrieTable<PortId>, LinearTable<PortId>) {
    let mut trie = TrieTable::new();
    let mut linear = LinearTable::new();
    for (prefix, len, port) in route_set(n) {
        trie.insert(prefix, len, port)
            .expect("generated routes are valid");
        linear
            .insert(prefix, len, port)
            .expect("generated routes are valid");
    }
    (trie, linear)
}

/// A deterministic destination-address stream: 80 % drawn inside installed
/// prefixes (host bits randomized), 20 % anywhere (default-route traffic).
#[must_use]
pub fn address_stream(n: usize, routes: usize, seed: u64) -> Vec<u32> {
    let set = route_set(routes);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_range(0u32..100) < 80 {
                let (prefix, len, _) = set[rng.gen_range(0..set.len())];
                let host_mask = !crate::lpm::mask(len);
                prefix | (rng.gen_range(0u32..=u32::MAX) & host_mask)
            } else {
                rng.gen_range(0u32..=u32::MAX)
            }
        })
        .collect()
}

/// Builds the synthetic frame stream the sweep routes.
///
/// With `cfg.flows == 0` every packet is a distinct `(src, dst)` pair (the
/// legacy stream, pathological for any flow cache). With `flows > 0` the
/// stream draws from a fixed flow population with a skewed (Zipf-ish)
/// distribution — 87.5 % of packets from the hottest eighth of flows —
/// which is what real traffic looks like and what the per-worker flow
/// cache exists to exploit. Destinations still follow the 80 %-in-prefix /
/// 20 %-anywhere rule, so drop and forward counters stay comparable.
#[must_use]
pub fn frame_stream(cfg: &SweepConfig) -> Vec<Vec<u8>> {
    let payload = vec![0xAA_u8; cfg.payload_len];
    let build = |i: usize, src: [u8; 4], dst: [u8; 4]| {
        let mut b = PacketBuilder::udp()
            .src_ip(src)
            .dst_ip(dst)
            .dst_port(4789)
            .payload(&payload);
        if cfg.corrupt_every != 0 && i.is_multiple_of(cfg.corrupt_every) {
            b = b.corrupt_checksum();
        }
        b.build()
    };
    if cfg.flows == 0 {
        let addrs = address_stream(cfg.packets, cfg.routes, cfg.seed);
        return addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                #[allow(clippy::cast_possible_truncation)]
                let src = [172, 16, (i % 8) as u8, (i % 251) as u8];
                build(i, src, addr.to_be_bytes())
            })
            .collect();
    }
    let dsts = address_stream(cfg.flows, cfg.routes, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0F10_0F10);
    let flows: Vec<([u8; 4], [u8; 4])> = dsts
        .iter()
        .map(|d| {
            (
                rng.gen_range(0u32..=u32::MAX).to_be_bytes(),
                d.to_be_bytes(),
            )
        })
        .collect();
    let hot = (flows.len() / 8).max(1);
    (0..cfg.packets)
        .map(|i| {
            let f = if rng.gen_range(0u32..8) < 7 {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..flows.len())
            };
            let (src, dst) = flows[f];
            build(i, src, dst)
        })
        .collect()
}

/// Times `lookups` lookups against both tables over the same addresses.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn lookup_comparison(routes: usize, lookups: usize, seed: u64) -> LookupPoint {
    let (trie, linear) = build_tables(routes);
    let addrs = address_stream(lookups.clamp(1, 65_536), routes, seed ^ 0xF00D);
    let time_table = |lookup: &dyn Fn(u32) -> Option<PortId>| -> f64 {
        let mut acc = 0u64;
        let mut done = 0usize;
        let t0 = Instant::now();
        while done < lookups {
            for &a in &addrs {
                if let Some(hop) = lookup(a) {
                    acc = acc.wrapping_add(u64::from(hop));
                }
            }
            done += addrs.len();
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as f64 / done as f64
    };
    LookupPoint {
        routes: trie.len(),
        lookups,
        linear_ns: time_table(&|a| linear.lookup(a)),
        trie_ns: time_table(&|a| trie.lookup(a)),
    }
}

/// Runs one timed trial of a single (workers × batch) configuration.
#[allow(clippy::cast_precision_loss)]
fn measure_point(
    cfg: &SweepConfig,
    frames: &[Vec<u8>],
    workers: usize,
    batch_size: usize,
) -> SweepPoint {
    let (trie, _) = build_tables(cfg.routes);
    let rc = RouterConfig {
        workers,
        batch_size,
        queue_depth: cfg.queue_depth,
        ..RouterConfig::default()
    };
    // The stream runs in two halves within one router lifetime: the
    // first half warms the buffer pool and flow caches, and the
    // allocation counter (when supplied) brackets the second half —
    // steady-state allocations per packet, measured not asserted.
    let half = frames.len() / 2;
    let t0 = Instant::now();
    let mut router = ShardedRouter::start(trie, PORTS, rc);
    for frame in &frames[..half] {
        router.submit(frame);
    }
    let allocs_mid = cfg.alloc_counter.map(|f| f());
    for frame in &frames[half..] {
        router.submit(frame);
    }
    // Read before finish(): report assembly allocates, the steady
    // state does not.
    let allocs_end = cfg.alloc_counter.map(|f| f());
    let report = router.finish();
    let elapsed = t0.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let steady_allocs_per_packet = match (allocs_mid, allocs_end) {
        (Some(a), Some(b)) if frames.len() > half => {
            Some((b.saturating_sub(a)) as f64 / (frames.len() - half) as f64)
        }
        _ => None,
    };
    SweepPoint {
        workers,
        batch_size,
        pps: report.packets() as f64 / secs,
        p50_ns: report.latency_ns(0.50),
        p99_ns: report.latency_ns(0.99),
        p999_ns: report.latency_ns(0.999),
        forwarded: report.stats.totals.forwarded,
        dropped: report.stats.totals.dropped_total(),
        cache_hit_rate: report.cache_hit_rate(),
        steady_allocs_per_packet,
    }
}

/// The churn target: a /30 outside [`route_set`]'s prefixes (the /16 arm
/// stops at 10.199), so flapping its next hop exercises publication and
/// cache invalidation without changing any measured packet's routing
/// decision — the A and B arms forward identical streams.
pub const FLAP_PREFIX: u32 = (10 << 24) | (200 << 16);
/// Prefix length of the churn target.
pub const FLAP_LEN: u8 = 30;
/// An address inside the churn target (visibility microbench probe).
const FLAP_ADDR: u32 = FLAP_PREFIX | 1;

/// Runs one timed churn trial: the full stream through `mode` while an
/// updater thread flaps [`FLAP_PREFIX`] at `rate` updates/sec.
#[allow(clippy::cast_precision_loss)]
fn churn_point(
    cfg: &SweepConfig,
    frames: &[Vec<u8>],
    workers: usize,
    batch_size: usize,
    mode: RouteMode,
    rate: u64,
) -> ChurnPoint {
    let (trie, _) = build_tables(cfg.routes);
    let rc = RouterConfig {
        workers,
        batch_size,
        queue_depth: cfg.queue_depth,
        route_mode: mode,
        ..RouterConfig::default()
    };
    let half = frames.len() / 2;
    let t0 = Instant::now();
    let mut router = ShardedRouter::start(trie, PORTS, rc);
    let stop = Arc::new(AtomicBool::new(false));
    let churn = (rate > 0).then(|| {
        let updater = router.updater();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Wall-clock pacing: apply however many updates the elapsed
            // time says are due, then yield. Every insert changes the next
            // hop, so every one is a real publication.
            let start = Instant::now();
            let mut applied = 0u64;
            while !stop.load(Ordering::Relaxed) {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let due = (start.elapsed().as_secs_f64() * rate as f64) as u64;
                while applied < due {
                    let hop = PortId::try_from(applied as usize % PORTS).expect("fits");
                    let _ = updater.insert(FLAP_PREFIX, FLAP_LEN, hop);
                    applied += 1;
                }
                std::thread::yield_now();
            }
            applied
        })
    });
    for frame in &frames[..half] {
        router.submit(frame);
    }
    let allocs_mid = cfg.alloc_counter.map(|f| f());
    for frame in &frames[half..] {
        router.submit(frame);
    }
    let allocs_end = cfg.alloc_counter.map(|f| f());
    stop.store(true, Ordering::Relaxed);
    let updates_applied = churn.map_or(0, |h| h.join().expect("churn thread panicked"));
    let report = router.finish();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let steady_allocs_per_packet = match (allocs_mid, allocs_end) {
        (Some(a), Some(b)) if frames.len() > half => {
            Some((b.saturating_sub(a)) as f64 / (frames.len() - half) as f64)
        }
        _ => None,
    };
    ChurnPoint {
        mode,
        target_updates_per_sec: rate,
        updates_applied,
        pps: report.packets() as f64 / secs,
        p50_ns: report.latency_ns(0.50),
        p99_ns: report.latency_ns(0.99),
        cache_hit_rate: report.cache_hit_rate(),
        invalidation_misses: report.stats.totals.cache_invalidation_misses,
        steady_allocs_per_packet,
    }
}

/// Runs the churn sweep: each rate × each [`RouteMode`], best of
/// [`SweepConfig::trials`] trials, at the largest worker count.
#[must_use]
pub fn run_churn_sweep(cfg: &SweepConfig) -> Vec<ChurnPoint> {
    if cfg.churn_rates.is_empty() {
        return Vec::new();
    }
    let frames = frame_stream(cfg);
    let workers = cfg.worker_counts.iter().copied().max().unwrap_or(1);
    let batch_size = if cfg.batch_sizes.contains(&64) {
        64
    } else {
        cfg.batch_sizes.last().copied().unwrap_or(64)
    };
    let mut churn = Vec::new();
    for &rate in &cfg.churn_rates {
        for mode in [RouteMode::CowEpoch, RouteMode::LockedGenerationClear] {
            let best = (0..cfg.trials.max(1))
                .map(|_| churn_point(cfg, &frames, workers, batch_size, mode, rate))
                .max_by(|a, b| a.pps.total_cmp(&b.pps))
                .expect("at least one trial");
            churn.push(best);
        }
    }
    churn
}

/// Publish-to-observation protocol: the writer bumps `seq` (arming the
/// reader's spin), stamps the publish time, applies the update; the reader
/// spins on its read closure until the new hop appears and stamps that.
/// Sequential samples — no overlap between publications.
fn measure_visibility<W, R>(samples: usize, write: W, read: R) -> (u64, u64)
where
    W: Fn(PortId),
    R: Fn() -> Option<PortId> + Send + 'static,
{
    let origin = Instant::now();
    let seq = Arc::new(AtomicU64::new(0));
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    let reader = {
        let seq = Arc::clone(&seq);
        std::thread::spawn(move || {
            for i in 0..samples {
                let want = PortId::try_from(i % PORTS).expect("fits");
                while seq.load(Ordering::Acquire) <= i as u64 {
                    std::hint::spin_loop();
                }
                while read() != Some(want) {
                    std::hint::spin_loop();
                }
                #[allow(clippy::cast_possible_truncation)]
                tx.send(origin.elapsed().as_nanos() as u64)
                    .expect("visibility channel closed");
            }
        })
    };
    let mut lat = Vec::with_capacity(samples);
    for i in 0..samples {
        let hop = PortId::try_from(i % PORTS).expect("fits");
        seq.store(i as u64 + 1, Ordering::Release);
        #[allow(clippy::cast_possible_truncation)]
        let published = origin.elapsed().as_nanos() as u64;
        write(hop);
        let seen = rx.recv().expect("visibility reader died");
        lat.push(seen.saturating_sub(published));
    }
    reader.join().expect("visibility reader panicked");
    lat.sort_unstable();
    let q = |f: f64| {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((lat.len() - 1) as f64 * f) as usize;
        lat[idx]
    };
    (q(0.50), q(0.99))
}

/// Measures publish → first-observation latency for both publication
/// mechanisms: a fresh epoch pin against the COW table, and a lock
/// round-trip against the mutex-guarded trie (the per-batch cost a worker
/// pays in [`RouteMode::LockedGenerationClear`]).
#[must_use]
pub fn update_visibility(samples: usize) -> Option<VisibilityPoint> {
    if samples == 0 {
        return None;
    }
    // Pre-seed with the default-gw hop (3): the first sample's hop is 0,
    // and consecutive hops cycle 0..4, so every insert changes the value.
    let cow: Arc<CowRouteTable<PortId>> = Arc::new(CowRouteTable::new());
    cow.insert(FLAP_PREFIX, FLAP_LEN, 3).expect("valid route");
    let reader = cow.reader();
    let (cow_p50_ns, cow_p99_ns) = measure_visibility(
        samples,
        |hop| {
            let _ = cow.insert(FLAP_PREFIX, FLAP_LEN, hop);
        },
        move || reader.pin().lookup(FLAP_ADDR),
    );

    let locked = Arc::new(ShimMutex::new(TrieTable::<PortId>::new()));
    locked
        .lock()
        .expect("fresh mutex")
        .insert(FLAP_PREFIX, FLAP_LEN, 3)
        .expect("valid route");
    let table = Arc::clone(&locked);
    let (locked_p50_ns, locked_p99_ns) = measure_visibility(
        samples,
        |hop| {
            let _ = locked
                .lock()
                .expect("route table poisoned")
                .insert(FLAP_PREFIX, FLAP_LEN, hop);
        },
        move || {
            table
                .lock()
                .expect("route table poisoned")
                .lookup(FLAP_ADDR)
        },
    );
    Some(VisibilityPoint {
        samples,
        cow_p50_ns,
        cow_p99_ns,
        locked_p50_ns,
        locked_p99_ns,
    })
}

/// Runs the full sweep: lookup microbench plus the (workers × batch)
/// pipeline grid, best of [`SweepConfig::trials`] trials per point, plus
/// the churn sweep and visibility microbench when configured.
#[must_use]
pub fn run_sweep(cfg: &SweepConfig) -> BenchReport {
    let lookup = lookup_comparison(cfg.routes, cfg.lookups, cfg.seed);
    let frames = frame_stream(cfg);
    let mut sweep = Vec::new();
    for &workers in &cfg.worker_counts {
        for &batch_size in &cfg.batch_sizes {
            let best = (0..cfg.trials.max(1))
                .map(|_| measure_point(cfg, &frames, workers, batch_size))
                .max_by(|a, b| a.pps.total_cmp(&b.pps))
                .expect("at least one trial");
            sweep.push(best);
        }
    }
    BenchReport {
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        packets: cfg.packets,
        flows: cfg.flows,
        lookup,
        sweep,
        churn: run_churn_sweep(cfg),
        visibility: update_visibility(cfg.visibility_samples),
    }
}

impl BenchReport {
    /// Renders the report as the `BENCH_router.json` record (hand-rolled:
    /// the container has no serde, and the schema is flat).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"bench\": \"router\",");
        let _ = writeln!(s, "  \"schema\": 4,");
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(s, "  \"packets_per_config\": {},", self.packets);
        let _ = writeln!(s, "  \"flows\": {},", self.flows);
        let _ = writeln!(s, "  \"lookup\": {{");
        let _ = writeln!(s, "    \"routes\": {},", self.lookup.routes);
        let _ = writeln!(s, "    \"lookups\": {},", self.lookup.lookups);
        let _ = writeln!(
            s,
            "    \"linear_ns_per_lookup\": {:.2},",
            self.lookup.linear_ns
        );
        let _ = writeln!(s, "    \"trie_ns_per_lookup\": {:.2},", self.lookup.trie_ns);
        let _ = writeln!(s, "    \"trie_speedup\": {:.2}", self.lookup.speedup());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"sweep\": [");
        for (i, p) in self.sweep.iter().enumerate() {
            let comma = if i + 1 == self.sweep.len() { "" } else { "," };
            let allocs = p
                .steady_allocs_per_packet
                .map_or_else(|| "null".to_owned(), |a| format!("{a:.4}"));
            let _ = writeln!(
                s,
                "    {{\"workers\": {}, \"batch_size\": {}, \"pps\": {:.0}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}, \"forwarded\": {}, \"dropped\": {}, \
                 \"cache_hit_rate\": {:.4}, \"steady_allocs_per_packet\": {}}}{comma}",
                p.workers,
                p.batch_size,
                p.pps,
                p.p50_ns,
                p.p99_ns,
                p.p999_ns,
                p.forwarded,
                p.dropped,
                p.cache_hit_rate,
                allocs
            );
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"churn\": [");
        for (i, p) in self.churn.iter().enumerate() {
            let comma = if i + 1 == self.churn.len() { "" } else { "," };
            let allocs = p
                .steady_allocs_per_packet
                .map_or_else(|| "null".to_owned(), |a| format!("{a:.4}"));
            let _ = writeln!(
                s,
                "    {{\"mode\": \"{}\", \"target_updates_per_sec\": {}, \
                 \"updates_applied\": {}, \"pps\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"cache_hit_rate\": {:.4}, \"invalidation_misses\": {}, \
                 \"steady_allocs_per_packet\": {}}}{comma}",
                p.mode_name(),
                p.target_updates_per_sec,
                p.updates_applied,
                p.pps,
                p.p50_ns,
                p.p99_ns,
                p.cache_hit_rate,
                p.invalidation_misses,
                allocs
            );
        }
        s.push_str("  ],\n");
        match &self.visibility {
            Some(v) => {
                let _ = writeln!(s, "  \"update_visibility\": {{");
                let _ = writeln!(s, "    \"samples\": {},", v.samples);
                let _ = writeln!(s, "    \"cow_p50_ns\": {},", v.cow_p50_ns);
                let _ = writeln!(s, "    \"cow_p99_ns\": {},", v.cow_p99_ns);
                let _ = writeln!(s, "    \"locked_p50_ns\": {},", v.locked_p50_ns);
                let _ = writeln!(s, "    \"locked_p99_ns\": {}", v.locked_p99_ns);
                let _ = writeln!(s, "  }}");
            }
            None => {
                let _ = writeln!(s, "  \"update_visibility\": null");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_set_is_deterministic_and_overlapping() {
        let a = route_set(64);
        let b = route_set(64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 65, "64 routes plus the default");
        assert!(a.iter().any(|&(_, len, _)| len == 8));
        assert!(a.iter().any(|&(_, len, _)| len == 16));
        assert!(a.iter().any(|&(_, len, _)| len == 24));
    }

    #[test]
    fn tables_built_from_the_set_agree_on_the_stream() {
        let (trie, linear) = build_tables(64);
        assert!(
            trie.len() >= 64,
            "≥64-route table after dedup, got {}",
            trie.len()
        );
        for addr in address_stream(2_000, 64, 42) {
            assert_eq!(trie.lookup(addr), linear.lookup(addr), "addr {addr:#010x}");
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = BenchReport {
            host_cores: 1,
            packets: 10,
            flows: 1024,
            lookup: LookupPoint {
                routes: 65,
                lookups: 100,
                linear_ns: 120.0,
                trie_ns: 30.0,
            },
            sweep: vec![
                SweepPoint {
                    workers: 1,
                    batch_size: 64,
                    pps: 1e6,
                    p50_ns: 500,
                    p99_ns: 900,
                    p999_ns: 1800,
                    forwarded: 9,
                    dropped: 1,
                    cache_hit_rate: 0.9321,
                    steady_allocs_per_packet: Some(0.0125),
                },
                SweepPoint {
                    workers: 2,
                    batch_size: 64,
                    pps: 1e6,
                    p50_ns: 500,
                    p99_ns: 900,
                    p999_ns: 1800,
                    forwarded: 9,
                    dropped: 1,
                    cache_hit_rate: 0.0,
                    steady_allocs_per_packet: None,
                },
            ],
            churn: vec![ChurnPoint {
                mode: RouteMode::CowEpoch,
                target_updates_per_sec: 10_000,
                updates_applied: 312,
                pps: 2e6,
                p50_ns: 600,
                p99_ns: 1200,
                cache_hit_rate: 0.8812,
                invalidation_misses: 42,
                steady_allocs_per_packet: Some(0.0031),
            }],
            visibility: Some(VisibilityPoint {
                samples: 64,
                cow_p50_ns: 180,
                cow_p99_ns: 950,
                locked_p50_ns: 210,
                locked_p99_ns: 1400,
            }),
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": 4,"));
        assert!(json.contains("\"mode\": \"cow-epoch\""));
        assert!(json.contains("\"target_updates_per_sec\": 10000"));
        assert!(json.contains("\"invalidation_misses\": 42"));
        assert!(json.contains("\"cow_p50_ns\": 180"));
        assert!(json.contains("\"locked_p99_ns\": 1400"));
        assert!(json.contains("\"p999_ns\": 1800"));
        assert!(json.contains("\"trie_speedup\": 4.00"));
        assert!(json.contains("\"pps\": 1000000"));
        assert!(json.contains("\"cache_hit_rate\": 0.9321"));
        assert!(json.contains("\"steady_allocs_per_packet\": 0.0125"));
        assert!(json.contains("\"steady_allocs_per_packet\": null"));
    }

    #[test]
    fn quick_sweep_runs_end_to_end() {
        let mut cfg = SweepConfig::quick();
        cfg.packets = 2_000;
        cfg.lookups = 10_000;
        cfg.worker_counts = vec![1, 2];
        let report = run_sweep(&cfg);
        assert_eq!(report.sweep.len(), 2);
        for p in &report.sweep {
            assert_eq!(p.forwarded + p.dropped, 2_000);
            assert!(p.pps > 0.0);
            assert!(p.p99_ns >= p.p50_ns);
            assert!(p.p999_ns >= p.p99_ns);
            assert!(
                p.cache_hit_rate > 0.5,
                "skewed flow stream must hit the cache: {}",
                p.cache_hit_rate
            );
            assert!(p.steady_allocs_per_packet.is_none(), "no counter supplied");
        }
        assert!(report.lookup.linear_ns > 0.0 && report.lookup.trie_ns > 0.0);
        assert!(
            report.churn.is_empty(),
            "quick config skips the churn sweep"
        );
        assert!(report.visibility.is_none());
    }

    #[test]
    fn churn_sweep_runs_both_modes_at_every_rate() {
        let cfg = SweepConfig {
            packets: 4_000,
            worker_counts: vec![2],
            churn_rates: vec![0, 20_000],
            ..SweepConfig::quick()
        };
        let points = run_churn_sweep(&cfg);
        assert_eq!(points.len(), 4, "2 rates × 2 modes");
        for p in &points {
            assert!(p.pps > 0.0);
            assert!(p.p99_ns >= p.p50_ns);
            if p.target_updates_per_sec == 0 {
                assert_eq!(p.updates_applied, 0);
            } else {
                assert!(
                    p.updates_applied > 0,
                    "{}: churn thread applied no updates",
                    p.mode_name()
                );
            }
        }
    }

    #[test]
    fn update_visibility_measures_both_mechanisms() {
        let v = update_visibility(32).expect("samples > 0");
        assert_eq!(v.samples, 32);
        assert!(v.cow_p99_ns >= v.cow_p50_ns);
        assert!(v.locked_p99_ns >= v.locked_p50_ns);
        assert!(update_visibility(0).is_none());
    }

    #[test]
    fn flow_stream_is_deterministic_and_skewed() {
        let cfg = SweepConfig {
            packets: 4_000,
            ..SweepConfig::quick()
        };
        let a = frame_stream(&cfg);
        let b = frame_stream(&cfg);
        assert_eq!(a, b, "stream must be a pure function of the seed");
        // Count distinct (src, dst) flows; the skew means far fewer than
        // packet count, and the hot eighth dominates.
        let mut flows = std::collections::HashMap::new();
        for f in &a {
            *flows.entry(f[26..34].to_vec()).or_insert(0u32) += 1;
        }
        assert!(flows.len() <= cfg.flows);
        assert!(flows.len() > cfg.flows / 4, "most flows should appear");
        let mut counts: Vec<u32> = flows.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        let hot: u32 = counts.iter().take(cfg.flows / 8).sum();
        let total: u32 = counts.iter().sum();
        assert!(
            f64::from(hot) / f64::from(total) > 0.8,
            "hot eighth must carry most packets: {hot}/{total}"
        );
    }
}
