//! Connection tracking with overload defense — the L4 flow layer.
//!
//! The router forwards packets; production traffic is *flows*. This module
//! adds the state between the two: a per-worker (sharded) flow table keyed
//! by the canonical 5-tuple, a TCP state machine driven off the zero-copy
//! [`sysrepr::packet::TcpView`] flags, and — because a flow table is a
//! finite resource an attacker can aim at — explicit overload defense:
//!
//! * **Bounded memory by construction.** Every slot is allocated at
//!   start-up into a slab; the table *cannot* exceed `max_flows` entries
//!   no matter the traffic (the paper's Challenge 2: idiomatic resource
//!   management without a collector). Steady state allocates nothing.
//! * **Per-state LRU + timeout eviction.** Each state (half-open,
//!   established, closing) keeps its own intrusive recency list, swept by
//!   a bounded-work watchdog pass (`sweep`) with per-state idle timeouts —
//!   the kernel watchdog pattern applied to flow state.
//! * **SYN-backlog admission control.** Half-open entries are capped
//!   separately (`syn_backlog`); under pressure the *oldest half-open* is
//!   evicted, never an established flow. When half-open churn exhausts the
//!   budget the shard flips into a SYN-cookie-style **stateless fallback**:
//!   SYNs are forwarded without creating state and a flow is established
//!   only by an ACK that echoes the shard's cookie for that 5-tuple.
//!   Established flows keep forwarding at full rate; the flood is shed
//!   with typed [`DropReason`]s.
//!
//! Failure is a first-class input: three `sysfault` sites
//! ([`SITE_CT_TABLE_FULL`], [`SITE_CT_TIMER_STALL`],
//! [`SITE_CT_STATE_DESYNC`]) let a seeded campaign force the shed paths,
//! stall the watchdog, and corrupt per-flow state, and
//! [`Conntrack::check_invariants`] audits the slab/bucket/list structure
//! so campaigns can assert the table survived. Cross-shard accounting
//! ([`ConntrackShared`]) runs on the `syscheck` shim atomics, so the
//! insert/evict/teardown charge protocol is model-checkable
//! (`tests/conntrack_model.rs`).

use crate::pipeline::DropReason;
use std::sync::Arc;
use syscheck::shim::AtomicU64;
use sysfault::FaultInjector;
use sysobs::fnv1a;

/// Fault site: an insert behaves as if the table had no evictable capacity.
pub const SITE_CT_TABLE_FULL: &str = "net.conntrack.table_full";
/// Fault site: a due watchdog sweep is skipped (timer stall).
pub const SITE_CT_TIMER_STALL: &str = "net.conntrack.timer_stall";
/// Fault site: a looked-up established flow's state is corrupted to
/// `FinWait` before processing (state desync); the machine must tear the
/// flow down cleanly instead of wedging.
pub const SITE_CT_STATE_DESYNC: &str = "net.conntrack.state_desync";

const NIL: u32 = u32::MAX;

/// A connection's 5-tuple, canonicalized so both directions of one
/// connection map to the same entry (the smaller `(ip, port)` endpoint is
/// stored first, as in kernel conntrack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// First endpoint address (canonical order).
    pub a_ip: u32,
    /// Second endpoint address.
    pub b_ip: u32,
    /// First endpoint port.
    pub a_port: u16,
    /// Second endpoint port.
    pub b_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FlowKey {
    /// Builds the canonical key for a packet seen in either direction.
    #[must_use]
    pub fn canonical(src: u32, dst: u32, sport: u16, dport: u16, proto: u8) -> Self {
        if (src, sport) <= (dst, dport) {
            FlowKey {
                a_ip: src,
                b_ip: dst,
                a_port: sport,
                b_port: dport,
                proto,
            }
        } else {
            FlowKey {
                a_ip: dst,
                b_ip: src,
                a_port: dport,
                b_port: sport,
                proto,
            }
        }
    }

    fn pack(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.a_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.b_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.a_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.b_port.to_be_bytes());
        b[12] = self.proto;
        b
    }

    /// FNV-1a hash of the packed tuple — the shard and bucket hash.
    #[must_use]
    pub fn hash(&self) -> u64 {
        fnv1a(&self.pack())
    }
}

/// The TCP flags a tracking decision needs, lifted out of a
/// [`sysrepr::packet::TcpView`] (or synthesized in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpSummary {
    /// SYN flag.
    pub syn: bool,
    /// ACK flag.
    pub ack: bool,
    /// FIN flag.
    pub fin: bool,
    /// RST flag.
    pub rst: bool,
    /// Acknowledgment number (cookie validation in fallback mode).
    pub ack_no: u32,
}

impl TcpSummary {
    /// Extracts the summary from a parsed TCP view.
    #[must_use]
    pub fn from_view(tcp: &sysrepr::packet::TcpView<'_>) -> Self {
        TcpSummary {
            syn: tcp.syn(),
            ack: tcp.ack_flag(),
            fin: tcp.fin(),
            rst: tcp.rst(),
            ack_no: tcp.ack(),
        }
    }
}

/// A tracked flow's state. Indexes the per-state recency lists, timeout
/// table, and packet counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Half-open: SYN seen, handshake ACK not yet.
    SynSeen = 0,
    /// Handshake complete; the protected class.
    Established = 1,
    /// FIN seen; draining toward close.
    FinWait = 2,
}

/// Number of [`FlowState`] variants.
pub const FLOW_STATES: usize = 3;

/// Display labels, indexed by `FlowState as usize`.
pub const FLOW_STATE_LABELS: [&str; FLOW_STATES] = ["syn-seen", "established", "fin-wait"];

/// Why an entry left the table. Indexes [`ConntrackStats::removed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictCause {
    /// Idle past its state's timeout (watchdog sweep).
    Timeout = 0,
    /// Displaced by LRU when the table was full (defense off only).
    Lru = 1,
    /// Oldest half-open displaced under SYN-backlog pressure.
    HalfOpenPressure = 2,
    /// Graceful FIN close.
    Fin = 3,
    /// RST teardown.
    Rst = 4,
    /// Torn down after injected state desync drained it.
    Desync = 5,
    /// NAT'd flow ejected because its assigned backend died
    /// ([`Conntrack::eject_backend`]).
    BackendDead = 6,
}

/// Number of [`EvictCause`] variants.
pub const EVICT_CAUSES: usize = 7;

/// Display labels, indexed by `EvictCause as usize`.
pub const EVICT_LABELS: [&str; EVICT_CAUSES] = [
    "timeout",
    "lru",
    "half-open-pressure",
    "fin",
    "rst",
    "desync",
    "backend-dead",
];

/// Sizing and policy knobs for one [`Conntrack`] shard.
#[derive(Debug, Clone, Copy)]
pub struct ConntrackConfig {
    /// Hard entry bound per shard (slab size; allocated up front).
    pub max_flows: usize,
    /// Half-open entry budget per shard (≤ `max_flows`).
    pub syn_backlog: usize,
    /// Idle timeout for half-open entries, ns.
    pub syn_timeout_ns: u64,
    /// Idle timeout for established entries, ns.
    pub established_timeout_ns: u64,
    /// Idle timeout for closing entries, ns.
    pub fin_timeout_ns: u64,
    /// Minimum interval between watchdog sweeps, ns.
    pub sweep_interval_ns: u64,
    /// Maximum evictions per sweep call (bounded work — the sweep shares
    /// the worker thread with the data path).
    pub sweep_batch: usize,
    /// Secret mixed into the stateless SYN cookie.
    pub cookie_secret: u64,
    /// When false, every defense is disabled: no backlog cap, no cookie
    /// fallback, and a full table evicts the globally least-recent entry —
    /// established flows included. The naive tracker E14 measures against.
    pub overload_defense: bool,
}

impl Default for ConntrackConfig {
    fn default() -> Self {
        ConntrackConfig {
            max_flows: 65_536,
            syn_backlog: 8_192,
            syn_timeout_ns: 5_000_000_000,
            established_timeout_ns: 300_000_000_000,
            fin_timeout_ns: 30_000_000_000,
            sweep_interval_ns: 100_000_000,
            sweep_batch: 256,
            cookie_secret: 0xC00C_1E5E_C2E7,
            overload_defense: true,
        }
    }
}

/// Counters one shard accumulates (single-owner plain integers; the router
/// aggregates per-worker copies into its report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConntrackStats {
    /// Packets admitted per (post-transition) state.
    pub pkts: [u64; FLOW_STATES],
    /// Entries created (half-open inserts).
    pub flows_created: u64,
    /// Half-open entries promoted to established by a handshake ACK.
    pub flows_promoted: u64,
    /// Flows established directly by a cookie-validated ACK.
    pub cookie_established: u64,
    /// SYNs forwarded statelessly in cookie mode.
    pub stateless_syns: u64,
    /// Entries removed, by [`EvictCause`] index.
    pub removed: [u64; EVICT_CAUSES],
    /// Transitions into the stateless fallback mode.
    pub cookie_mode_entries: u64,
    /// Transitions back out of it.
    pub cookie_mode_exits: u64,
    /// Watchdog sweeps skipped by the injected timer stall.
    pub timer_stalls: u64,
    /// Injected state desyncs applied.
    pub desyncs_injected: u64,
    /// Most entries ever live at once (must stay ≤ `max_flows`).
    pub peak_flows: u64,
    /// Most half-open entries ever live at once.
    pub peak_half_open: u64,
    /// Structure-audit failures ([`Conntrack::check_invariants`]).
    pub invariant_violations: u64,
}

impl ConntrackStats {
    /// Total removals across all causes.
    #[must_use]
    pub fn removed_total(&self) -> u64 {
        self.removed.iter().sum()
    }

    /// Accumulates another shard's counters (peaks take the max).
    pub fn merge(&mut self, other: &ConntrackStats) {
        for (a, b) in self.pkts.iter_mut().zip(other.pkts.iter()) {
            *a += b;
        }
        self.flows_created += other.flows_created;
        self.flows_promoted += other.flows_promoted;
        self.cookie_established += other.cookie_established;
        self.stateless_syns += other.stateless_syns;
        for (a, b) in self.removed.iter_mut().zip(other.removed.iter()) {
            *a += b;
        }
        self.cookie_mode_entries += other.cookie_mode_entries;
        self.cookie_mode_exits += other.cookie_mode_exits;
        self.timer_stalls += other.timer_stalls;
        self.desyncs_injected += other.desyncs_injected;
        self.peak_flows = self.peak_flows.max(other.peak_flows);
        self.peak_half_open = self.peak_half_open.max(other.peak_half_open);
        self.invariant_violations += other.invariant_violations;
    }

    /// Renders the counters under `net.ct.*` for the unified snapshot.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        for (label, &n) in FLOW_STATE_LABELS.iter().zip(self.pkts.iter()) {
            snap.set_counter(format!("net.ct.pkts.{label}"), n);
        }
        snap.set_counter("net.ct.flows_created", self.flows_created);
        snap.set_counter("net.ct.flows_promoted", self.flows_promoted);
        snap.set_counter("net.ct.cookie_established", self.cookie_established);
        snap.set_counter("net.ct.stateless_syns", self.stateless_syns);
        for (label, &n) in EVICT_LABELS.iter().zip(self.removed.iter()) {
            snap.set_counter(format!("net.ct.removed.{label}"), n);
        }
        snap.set_counter("net.ct.cookie_mode_entries", self.cookie_mode_entries);
        snap.set_counter("net.ct.timer_stalls", self.timer_stalls);
        snap.set_counter("net.ct.peak_flows", self.peak_flows);
        snap.set_counter("net.ct.peak_half_open", self.peak_half_open);
        snap.set_counter("net.ct.invariant_violations", self.invariant_violations);
        snap
    }
}

/// Cross-shard flow accounting: a global live-entry gauge with a hard cap,
/// charged on insert and released on removal. Runs on the `syscheck` shim
/// atomics so the charge/release protocol itself is model-checkable — the
/// interesting interleavings are insert-vs-insert at the cap boundary and
/// evict-then-reinsert races between shards.
#[derive(Debug)]
pub struct ConntrackShared {
    live: AtomicU64,
    limit: u64,
    cookie_shards: AtomicU64,
}

impl ConntrackShared {
    /// A shared gauge capped at `limit` total entries across all shards.
    #[must_use]
    pub fn new(limit: u64) -> Self {
        ConntrackShared {
            live: AtomicU64::new(0),
            limit,
            cookie_shards: AtomicU64::new(0),
        }
    }

    /// The global cap.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Entries currently charged across all shards.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.live.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Shards currently in stateless fallback mode.
    #[must_use]
    pub fn cookie_shards(&self) -> u64 {
        self.cookie_shards
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Attempts to charge one entry; `false` means the global cap is spent.
    /// A CAS loop (not a blind `fetch_add`) so the gauge can never
    /// overshoot the cap, even transiently — the property the model test
    /// pins.
    pub fn try_charge(&self) -> bool {
        use std::sync::atomic::Ordering;
        let mut cur = self.live.load(Ordering::Acquire);
        loop {
            if cur >= self.limit {
                return false;
            }
            match self
                .live
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases one charge.
    ///
    /// # Panics
    ///
    /// Panics on underflow — releasing a charge that was never taken means
    /// the shard-side accounting is corrupt.
    pub fn uncharge(&self) {
        use std::sync::atomic::Ordering;
        let prev = self.live.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "conntrack shared gauge underflow");
    }

    /// Records one shard entering (`true`) or leaving (`false`) cookie mode.
    pub fn set_cookie_shard(&self, entering: bool) {
        use std::sync::atomic::Ordering;
        if entering {
            self.cookie_shards.fetch_add(1, Ordering::AcqRel);
        } else {
            let prev = self.cookie_shards.fetch_sub(1, Ordering::AcqRel);
            assert!(prev > 0, "cookie-shard gauge underflow");
        }
    }
}

/// The NAT rewrite tuple a load-balanced flow carries: the client's
/// endpoint, the virtual (VIP) endpoint it dialed, and the backend endpoint
/// the balancer assigned. Stored in the conntrack entry so the forward path
/// can rewrite either direction from one lookup — and so the *direction* of
/// a packet is decided by comparing its endpoints against these, never by
/// the canonical key (which a hairpinned reply can collide with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatRewrite {
    /// Client address.
    pub client_ip: u32,
    /// Client port.
    pub client_port: u16,
    /// Virtual (advertised) address the client dialed.
    pub vip: u32,
    /// Virtual port.
    pub vport: u16,
    /// Assigned backend address.
    pub backend_ip: u32,
    /// Assigned backend port.
    pub backend_port: u16,
    /// Index of the backend in its [`crate::lb::BackendPool`] — drain and
    /// ejection bookkeeping.
    pub backend: u16,
}

/// One slab slot. Live slots are linked into their state's recency list
/// (`prev`/`next`, most-recent at head) and their hash bucket's chain
/// (`hash_next`); free slots reuse `next` as the free-list link. A NAT'd
/// flow occupies *two* twin-linked slots — one keyed by the client↔VIP
/// tuple, one by the client↔backend tuple — kept in state lockstep and
/// removed as a pair.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: FlowKey,
    state: FlowState,
    last_seen_ns: u64,
    prev: u32,
    next: u32,
    hash_next: u32,
    twin: u32,
    nat: Option<NatRewrite>,
}

const EMPTY_KEY: FlowKey = FlowKey {
    a_ip: 0,
    b_ip: 0,
    a_port: 0,
    b_port: 0,
    proto: 0,
};

/// One shard's connection-tracking table. Single-owner (each router worker
/// holds its own, exactly like its [`crate::cache::FlowCache`]); all memory
/// is allocated in [`Conntrack::new`].
#[derive(Debug)]
pub struct Conntrack {
    cfg: ConntrackConfig,
    buckets: Vec<u32>,
    bucket_mask: u64,
    slots: Vec<Slot>,
    free_head: u32,
    /// Per-state recency lists: `[head, tail]` per [`FlowState`].
    lists: [[u32; 2]; FLOW_STATES],
    len: usize,
    half_open: usize,
    cookie_mode: bool,
    /// Half-open-pressure evictions since the last mode decision; a full
    /// backlog's worth of churn flips the shard into cookie mode.
    pressure_evictions: usize,
    last_sweep_ns: u64,
    stats: ConntrackStats,
    injector: Option<FaultInjector>,
    shared: Option<Arc<ConntrackShared>>,
}

impl Conntrack {
    /// Builds a shard, allocating the whole slab up front.
    ///
    /// # Panics
    ///
    /// Panics if `max_flows` is zero or `syn_backlog` exceeds `max_flows`.
    #[must_use]
    pub fn new(cfg: ConntrackConfig) -> Self {
        assert!(cfg.max_flows >= 1, "conntrack needs at least one slot");
        assert!(
            cfg.syn_backlog >= 1 && cfg.syn_backlog <= cfg.max_flows,
            "syn_backlog must be in 1..=max_flows"
        );
        let n_buckets = cfg.max_flows.next_power_of_two();
        let mut slots = Vec::with_capacity(cfg.max_flows);
        for i in 0..cfg.max_flows {
            let next = if i + 1 < cfg.max_flows {
                u32::try_from(i + 1).expect("slab fits u32")
            } else {
                NIL
            };
            slots.push(Slot {
                key: EMPTY_KEY,
                state: FlowState::SynSeen,
                last_seen_ns: 0,
                prev: NIL,
                next,
                hash_next: NIL,
                twin: NIL,
                nat: None,
            });
        }
        Conntrack {
            cfg,
            buckets: vec![NIL; n_buckets],
            bucket_mask: (n_buckets - 1) as u64,
            slots,
            free_head: 0,
            lists: [[NIL; 2]; FLOW_STATES],
            len: 0,
            half_open: 0,
            cookie_mode: false,
            pressure_evictions: 0,
            last_sweep_ns: 0,
            stats: ConntrackStats::default(),
            injector: None,
            shared: None,
        }
    }

    /// Attaches a seeded fault injector (the three `net.conntrack.*` sites).
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attaches the cross-shard accounting gauge.
    #[must_use]
    pub fn with_shared(mut self, shared: Arc<ConntrackShared>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Entries currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Half-open entries currently tracked.
    #[must_use]
    pub fn half_open_len(&self) -> usize {
        self.half_open
    }

    /// True while the shard is in stateless SYN-cookie fallback mode.
    #[must_use]
    pub fn cookie_mode(&self) -> bool {
        self.cookie_mode
    }

    /// The shard's counters so far.
    #[must_use]
    pub fn stats(&self) -> &ConntrackStats {
        &self.stats
    }

    /// The shard's configuration.
    #[must_use]
    pub fn config(&self) -> &ConntrackConfig {
        &self.cfg
    }

    /// Digest of the faults this shard's injector has fired (0 without an
    /// injector) — the replay handle for seeded campaigns.
    #[must_use]
    pub fn fault_digest(&self) -> u64 {
        self.injector.as_ref().map_or(0, |i| i.log().digest())
    }

    /// The stateless SYN cookie for a 5-tuple: in fallback mode a flow is
    /// established only by an ACK carrying `cookie(key) + 1` (the client
    /// echoing the sequence number the SYN-ACK derived from this value).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn cookie(&self, key: &FlowKey) -> u32 {
        let mut buf = [0u8; 21];
        buf[..13].copy_from_slice(&key.pack());
        buf[13..].copy_from_slice(&self.cfg.cookie_secret.to_le_bytes());
        fnv1a(&buf) as u32
    }

    // ---- intrusive-structure primitives ---------------------------------

    fn bucket_of(&self, hash: u64) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        let b = (hash & self.bucket_mask) as usize;
        b
    }

    fn lookup_slot(&self, key: &FlowKey, hash: u64) -> Option<u32> {
        let mut i = self.buckets[self.bucket_of(hash)];
        while i != NIL {
            let slot = &self.slots[i as usize];
            if slot.key == *key {
                return Some(i);
            }
            i = slot.hash_next;
        }
        None
    }

    fn list_push_head(&mut self, state: FlowState, idx: u32) {
        let s = state as usize;
        let head = self.lists[s][0];
        {
            let slot = &mut self.slots[idx as usize];
            slot.prev = NIL;
            slot.next = head;
            slot.state = state;
        }
        if head != NIL {
            self.slots[head as usize].prev = idx;
        } else {
            self.lists[s][1] = idx;
        }
        self.lists[s][0] = idx;
    }

    fn list_unlink(&mut self, idx: u32) {
        let (state, prev, next) = {
            let slot = &self.slots[idx as usize];
            (slot.state as usize, slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.lists[state][0] = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.lists[state][1] = prev;
        }
    }

    fn touch(&mut self, idx: u32, now_ns: u64) {
        let state = self.slots[idx as usize].state;
        self.list_unlink(idx);
        self.list_push_head(state, idx);
        self.slots[idx as usize].last_seen_ns = now_ns;
    }

    fn transition(&mut self, idx: u32, to: FlowState, now_ns: u64) {
        let from = self.slots[idx as usize].state;
        if from == FlowState::SynSeen && to != FlowState::SynSeen {
            self.half_open -= 1;
        }
        self.list_unlink(idx);
        self.list_push_head(to, idx);
        self.slots[idx as usize].last_seen_ns = now_ns;
    }

    fn unlink_hash(&mut self, idx: u32) {
        let (hash, next) = {
            let slot = &self.slots[idx as usize];
            (slot.key.hash(), slot.hash_next)
        };
        let b = self.bucket_of(hash);
        let mut cur = self.buckets[b];
        if cur == idx {
            self.buckets[b] = next;
            return;
        }
        while cur != NIL {
            let cur_next = self.slots[cur as usize].hash_next;
            if cur_next == idx {
                self.slots[cur as usize].hash_next = next;
                return;
            }
            cur = cur_next;
        }
        unreachable!("slot {idx} missing from its bucket chain");
    }

    /// Removes an entry *and its NAT twin* (a half-flow without its mate is
    /// a rewrite that only works in one direction — never leave one behind).
    fn remove(&mut self, idx: u32, cause: EvictCause) {
        let twin = self.slots[idx as usize].twin;
        if twin != NIL {
            // Break the link both ways first so neither removal recurses.
            self.slots[twin as usize].twin = NIL;
            self.slots[idx as usize].twin = NIL;
            self.remove_one(twin, cause);
        }
        self.remove_one(idx, cause);
    }

    fn remove_one(&mut self, idx: u32, cause: EvictCause) {
        if self.slots[idx as usize].state == FlowState::SynSeen {
            self.half_open -= 1;
        }
        self.unlink_hash(idx);
        self.list_unlink(idx);
        let slot = &mut self.slots[idx as usize];
        slot.key = EMPTY_KEY;
        slot.prev = NIL;
        slot.hash_next = NIL;
        slot.twin = NIL;
        slot.nat = None;
        slot.next = self.free_head;
        self.free_head = idx;
        self.len -= 1;
        self.stats.removed[cause as usize] += 1;
        if let Some(shared) = &self.shared {
            shared.uncharge();
        }
    }

    /// Least-recent live entry across every state list (defense-off LRU).
    fn lru_victim(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        let mut best_seen = u64::MAX;
        for s in 0..FLOW_STATES {
            let tail = self.lists[s][1];
            if tail != NIL {
                let seen = self.slots[tail as usize].last_seen_ns;
                if seen <= best_seen {
                    best_seen = seen;
                    best = Some(tail);
                }
            }
        }
        best
    }

    /// Allocates a slot for a new entry, evicting per policy when the slab
    /// (or the shared gauge) is spent. `Err` carries the typed shed reason.
    fn alloc_slot(&mut self, now_ns: u64) -> Result<u32, DropReason> {
        if let Some(inj) = &mut self.injector {
            if inj.should_fail(SITE_CT_TABLE_FULL) {
                return Err(DropReason::FlowTableFull);
            }
        }
        // Charge the cross-shard gauge first; a failed charge is a full
        // table from this shard's point of view, and local eviction (which
        // uncharges) is the only way to make room.
        if !self.charge() {
            if self.evict_for_room(now_ns) && self.charge() {
                // fall through to the slab, which now has a free slot
            } else {
                return Err(DropReason::FlowTableFull);
            }
        }
        if self.free_head == NIL && !self.evict_for_room(now_ns) {
            self.uncharge_one();
            return Err(DropReason::FlowTableFull);
        }
        let idx = self.free_head;
        self.free_head = self.slots[idx as usize].next;
        Ok(idx)
    }

    /// Tries to free one slot: the oldest half-open under defense, the
    /// global LRU entry without it. `false` means nothing was evictable.
    fn evict_for_room(&mut self, _now_ns: u64) -> bool {
        if self.cfg.overload_defense {
            let tail = self.lists[FlowState::SynSeen as usize][1];
            if tail != NIL {
                self.remove(tail, EvictCause::HalfOpenPressure);
                self.note_pressure();
                return true;
            }
            false
        } else if let Some(victim) = self.lru_victim() {
            self.remove(victim, EvictCause::Lru);
            true
        } else {
            false
        }
    }

    fn charge(&self) -> bool {
        self.shared.as_ref().is_none_or(|s| s.try_charge())
    }

    fn uncharge_one(&self) {
        if let Some(s) = &self.shared {
            s.uncharge();
        }
    }

    fn note_pressure(&mut self) {
        self.pressure_evictions += 1;
        if !self.cookie_mode && self.pressure_evictions >= self.cfg.syn_backlog {
            self.cookie_mode = true;
            self.stats.cookie_mode_entries += 1;
            // Live registry mirror: the final stats reach the registry only
            // at RouterReport::to_snapshot, but the syn-cookie-engaged
            // trigger needs to see engagement while the flood is running.
            sysobs::obs_count!("net.ct.cookie_mode_entries", 1);
            sysobs::obs_instant!("net.ct.cookie_mode_enter", self.stats.cookie_mode_entries);
            self.pressure_evictions = 0;
            if let Some(s) = &self.shared {
                s.set_cookie_shard(true);
            }
        }
    }

    fn insert(&mut self, key: FlowKey, state: FlowState, now_ns: u64) -> Result<u32, DropReason> {
        let idx = self.alloc_slot(now_ns)?;
        let hash = key.hash();
        let b = self.bucket_of(hash);
        {
            let slot = &mut self.slots[idx as usize];
            slot.key = key;
            slot.last_seen_ns = now_ns;
            slot.hash_next = self.buckets[b];
            slot.twin = NIL;
            slot.nat = None;
        }
        self.buckets[b] = idx;
        self.list_push_head(state, idx);
        self.len += 1;
        if state == FlowState::SynSeen {
            self.half_open += 1;
        }
        self.stats.peak_flows = self.stats.peak_flows.max(self.len as u64);
        self.stats.peak_half_open = self.stats.peak_half_open.max(self.half_open as u64);
        self.stats.flows_created += 1;
        Ok(idx)
    }

    // ---- the per-packet decision ----------------------------------------

    /// Decides one TCP packet's fate: `Ok(())` admits it to routing,
    /// `Err(reason)` sheds it. Drives every state transition, the
    /// admission control, and the stateless fallback.
    ///
    /// # Errors
    ///
    /// The typed [`DropReason`] for any packet the tracker sheds.
    pub fn admit_tcp(
        &mut self,
        key: &FlowKey,
        seg: TcpSummary,
        now_ns: u64,
    ) -> Result<(), DropReason> {
        self.admit_tcp_nat(key, seg, now_ns, true).map(|_| ())
    }

    /// [`Self::admit_tcp`] fused with the NAT lookup the balanced path
    /// needs: the same hash walk that decides admission also returns the
    /// flow's stored rewrite tuple (`None` when the flow carries no NAT
    /// state, or was admitted statelessly in cookie mode). With `create`
    /// false an untracked flow is shed as [`DropReason::NoFlow`] instead of
    /// creating an entry — the VIP guard, where assignment (not plain
    /// admission) is the only legal creator.
    ///
    /// # Errors
    ///
    /// The typed [`DropReason`] for any packet the tracker sheds.
    pub fn admit_tcp_nat(
        &mut self,
        key: &FlowKey,
        seg: TcpSummary,
        now_ns: u64,
        create: bool,
    ) -> Result<Option<NatRewrite>, DropReason> {
        let hash = key.hash();
        let found = self.lookup_slot(key, hash);
        if let Some(idx) = found {
            // Injected state desync: corrupt an established entry to
            // FinWait before processing. The machine must drain the flow
            // cleanly (FinWait forwards, then closes or times out) rather
            // than wedge or corrupt the structure.
            if self.slots[idx as usize].state == FlowState::Established {
                let fire = self
                    .injector
                    .as_mut()
                    .is_some_and(|inj| inj.should_fail(SITE_CT_STATE_DESYNC));
                if fire {
                    self.transition(idx, FlowState::FinWait, now_ns);
                    self.stats.desyncs_injected += 1;
                }
            }
            // Captured pre-admission: a teardown segment (RST, final ACK)
            // removes the entry but is itself forwarded, and still needs
            // its rewrite on the way out.
            let nat = self.slots[idx as usize].nat;
            let twin = self.slots[idx as usize].twin;
            let res = self.admit_existing(idx, seg, now_ns);
            // NAT twin lockstep: if the pair survived the segment (teardown
            // removes both inside `remove`), mirror the primary's state onto
            // the twin so sweeps and drains see one flow, not two.
            if res.is_ok() && twin != NIL && self.slots[idx as usize].key == *key {
                let state = self.slots[idx as usize].state;
                if self.slots[twin as usize].state == state {
                    self.touch(twin, now_ns);
                } else {
                    self.transition(twin, state, now_ns);
                }
            }
            return res.map(|()| nat);
        }
        if !create {
            return Err(DropReason::NoFlow);
        }
        // No entry: only a SYN (or, in fallback mode, a cookie-bearing
        // ACK) may create one. Everything else is shed — the strict
        // stateful stance that makes bare-ACK floods cheap.
        if seg.syn && !seg.ack {
            if self.cookie_mode {
                self.stats.stateless_syns += 1;
                return Ok(None);
            }
            if self.cfg.overload_defense && self.half_open >= self.cfg.syn_backlog {
                let tail = self.lists[FlowState::SynSeen as usize][1];
                debug_assert_ne!(tail, NIL, "half_open > 0 implies a list tail");
                self.remove(tail, EvictCause::HalfOpenPressure);
                self.note_pressure();
                if self.cookie_mode {
                    // The triggering SYN is the first stateless one.
                    self.stats.stateless_syns += 1;
                    return Ok(None);
                }
            }
            self.insert(*key, FlowState::SynSeen, now_ns)?;
            self.stats.pkts[FlowState::SynSeen as usize] += 1;
            return Ok(None);
        }
        if seg.ack && !seg.syn && self.cookie_mode {
            if seg.ack_no == self.cookie(key).wrapping_add(1) {
                self.insert(*key, FlowState::Established, now_ns)?;
                self.stats.cookie_established += 1;
                self.stats.pkts[FlowState::Established as usize] += 1;
                return Ok(None);
            }
            return Err(DropReason::BadCookie);
        }
        Err(DropReason::NoFlow)
    }

    fn admit_existing(&mut self, idx: u32, seg: TcpSummary, now_ns: u64) -> Result<(), DropReason> {
        let state = self.slots[idx as usize].state;
        if seg.rst {
            // RST tears down any state; the packet is forwarded so the
            // peer learns too.
            self.remove(idx, EvictCause::Rst);
            self.stats.pkts[state as usize] += 1;
            return Ok(());
        }
        match state {
            FlowState::SynSeen => {
                if seg.ack && !seg.syn {
                    self.transition(idx, FlowState::Established, now_ns);
                    self.stats.flows_promoted += 1;
                    self.stats.pkts[FlowState::Established as usize] += 1;
                    Ok(())
                } else if seg.syn {
                    // SYN retransmit, or the SYN-ACK leg of the handshake
                    // (same canonical key, reverse direction).
                    self.touch(idx, now_ns);
                    self.stats.pkts[FlowState::SynSeen as usize] += 1;
                    Ok(())
                } else {
                    // Data or FIN on a half-open flow: not a legal
                    // transition; shed the packet, keep the entry (the
                    // handshake may still complete).
                    Err(DropReason::StateViolation)
                }
            }
            FlowState::Established => {
                if seg.fin {
                    self.transition(idx, FlowState::FinWait, now_ns);
                    self.stats.pkts[FlowState::FinWait as usize] += 1;
                } else {
                    self.touch(idx, now_ns);
                    self.stats.pkts[FlowState::Established as usize] += 1;
                }
                Ok(())
            }
            FlowState::FinWait => {
                self.stats.pkts[FlowState::FinWait as usize] += 1;
                if seg.ack && !seg.fin && !seg.syn {
                    // The final ACK of the close handshake.
                    self.remove(idx, EvictCause::Fin);
                } else {
                    // FIN retransmits and stragglers drain until the close
                    // completes or the FinWait timeout reaps the entry.
                    self.touch(idx, now_ns);
                }
                Ok(())
            }
        }
    }

    // ---- NAT entries (load-balancer rewrite state) ----------------------

    /// The rewrite tuple stored for `key`, if any.
    #[must_use]
    pub fn nat_of(&self, key: &FlowKey) -> Option<NatRewrite> {
        self.lookup_slot(key, key.hash())
            .and_then(|i| self.slots[i as usize].nat)
    }

    /// True if `key` is tracked at all (NAT'd or not).
    #[must_use]
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.lookup_slot(key, key.hash()).is_some()
    }

    /// Inserts a NAT'd flow: twin entries under the pre-rewrite key
    /// (`orig`, client↔VIP) and the post-rewrite key (`reply`,
    /// client↔backend), both carrying `nat` and linked so they live and die
    /// together. When rewrite and canonicalization collapse both tuples to
    /// one key (a degenerate hairpin), a single un-twinned entry is stored.
    ///
    /// # Errors
    ///
    /// [`DropReason::StateViolation`] if either key is already tracked;
    /// [`DropReason::FlowTableFull`] if the table cannot make room for both
    /// entries (a partial pair is rolled back — a one-directional rewrite
    /// is never left behind).
    pub fn insert_nat(
        &mut self,
        orig: &FlowKey,
        reply: &FlowKey,
        nat: NatRewrite,
        state: FlowState,
        now_ns: u64,
    ) -> Result<(), DropReason> {
        if self.lookup_slot(orig, orig.hash()).is_some() {
            return Err(DropReason::StateViolation);
        }
        if orig == reply {
            let a = self.insert(*orig, state, now_ns)?;
            self.slots[a as usize].nat = Some(nat);
            self.stats.pkts[state as usize] += 1;
            return Ok(());
        }
        if self.lookup_slot(reply, reply.hash()).is_some() {
            return Err(DropReason::StateViolation);
        }
        let a = self.insert(*orig, state, now_ns)?;
        let b = match self.insert(*reply, state, now_ns) {
            Ok(b) => b,
            Err(e) => {
                // Roll back the first half — unless the second insert's own
                // eviction already took it (possible when the first entry
                // was the oldest half-open).
                if self.slots[a as usize].key == *orig {
                    self.remove_one(a, Self::rollback_cause(state));
                }
                return Err(e);
            }
        };
        if self.slots[a as usize].key != *orig {
            // The second insert evicted the first to make room: the pair
            // cannot exist, so drop the orphan half too.
            self.remove_one(b, Self::rollback_cause(state));
            return Err(DropReason::FlowTableFull);
        }
        self.slots[a as usize].nat = Some(nat);
        self.slots[b as usize].nat = Some(nat);
        self.slots[a as usize].twin = b;
        self.slots[b as usize].twin = a;
        self.stats.pkts[state as usize] += 1;
        Ok(())
    }

    /// The eviction cause a rolled-back half-pair is accounted under: the
    /// same cause capacity pressure would have used.
    fn rollback_cause(state: FlowState) -> EvictCause {
        if state == FlowState::SynSeen {
            EvictCause::HalfOpenPressure
        } else {
            EvictCause::Lru
        }
    }

    /// Refreshes a tracked flow's recency (both twins) without driving the
    /// TCP machine — the UDP path's per-packet touch. Returns `false` if
    /// the key is not tracked.
    pub fn refresh(&mut self, key: &FlowKey, now_ns: u64) -> bool {
        let Some(idx) = self.lookup_slot(key, key.hash()) else {
            return false;
        };
        self.touch(idx, now_ns);
        let twin = self.slots[idx as usize].twin;
        if twin != NIL {
            self.touch(twin, now_ns);
        }
        self.stats.pkts[self.slots[idx as usize].state as usize] += 1;
        true
    }

    /// [`Self::refresh`] fused with the NAT lookup: if `key` is tracked
    /// *and* carries a rewrite, refresh both twins' recency and return the
    /// tuple — one hash walk for the whole balanced datagram path. Flows
    /// without NAT state are left untouched (the caller treats them as
    /// untracked, exactly as the split `nat_of` + `refresh` pair did).
    pub fn refresh_nat(&mut self, key: &FlowKey, now_ns: u64) -> Option<NatRewrite> {
        let idx = self.lookup_slot(key, key.hash())?;
        let nat = self.slots[idx as usize].nat?;
        self.touch(idx, now_ns);
        let twin = self.slots[idx as usize].twin;
        if twin != NIL {
            self.touch(twin, now_ns);
        }
        self.stats.pkts[self.slots[idx as usize].state as usize] += 1;
        Some(nat)
    }

    /// Removes a tracked flow (and its twin) under [`EvictCause::Rst`]-style
    /// explicit teardown — the balancer's eject path for flows whose
    /// backend died. Returns `false` if the key is not tracked.
    pub fn remove_flow(&mut self, key: &FlowKey, cause: EvictCause) -> bool {
        let Some(idx) = self.lookup_slot(key, key.hash()) else {
            return false;
        };
        self.remove(idx, cause);
        true
    }

    /// Removes every NAT'd flow assigned to `backend` (both twins each),
    /// returning entries freed. A full-slab walk — the balancer calls this
    /// only on a health-probe death verdict, never per packet. Without it a
    /// client's SYN retransmit keeps matching the stale rewrite and chases
    /// the dead backend until the idle timeout; ejecting lets the retry
    /// select a healthy one immediately.
    pub fn eject_backend(&mut self, backend: u16, cause: EvictCause) -> usize {
        let before = self.len;
        for i in 0..self.slots.len() {
            let Some(nat) = self.slots[i].nat else {
                continue;
            };
            if nat.backend == backend {
                self.remove(u32::try_from(i).expect("slab fits u32"), cause);
            }
        }
        before - self.len
    }

    // ---- the watchdog sweep ---------------------------------------------

    /// True when [`Conntrack::sweep`] is due.
    #[must_use]
    pub fn due_sweep(&self, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.last_sweep_ns) >= self.cfg.sweep_interval_ns
    }

    /// The watchdog pass: reaps idle entries (per-state timeouts, least
    /// recent first) with bounded work per call, and re-evaluates the
    /// fallback mode with hysteresis. Returns entries reaped.
    pub fn sweep(&mut self, now_ns: u64) -> usize {
        let stalled = self
            .injector
            .as_mut()
            .is_some_and(|inj| inj.should_fail(SITE_CT_TIMER_STALL));
        if stalled {
            // A stalled timer skips the reap but must not wedge the shard:
            // capacity pressure still evicts, and the next sweep catches
            // up on expiries.
            self.stats.timer_stalls += 1;
            self.last_sweep_ns = now_ns;
            return 0;
        }
        let timeouts = [
            self.cfg.syn_timeout_ns,
            self.cfg.established_timeout_ns,
            self.cfg.fin_timeout_ns,
        ];
        let mut budget = self.cfg.sweep_batch;
        let mut reaped = 0usize;
        for (s, &timeout) in timeouts.iter().enumerate() {
            while budget > 0 {
                let tail = self.lists[s][1];
                if tail == NIL {
                    break;
                }
                let idle = now_ns.saturating_sub(self.slots[tail as usize].last_seen_ns);
                if idle < timeout {
                    break;
                }
                // A NAT pair reaps as two entries in one removal; count (and
                // budget) the real work.
                let before = self.len;
                self.remove(tail, EvictCause::Timeout);
                let freed = before - self.len;
                budget = budget.saturating_sub(freed);
                reaped += freed;
            }
        }
        if self.cookie_mode && self.half_open * 2 <= self.cfg.syn_backlog {
            self.cookie_mode = false;
            self.pressure_evictions = 0;
            self.stats.cookie_mode_exits += 1;
            if let Some(s) = &self.shared {
                s.set_cookie_shard(false);
            }
        }
        self.last_sweep_ns = now_ns;
        reaped
    }

    // ---- structure audit -------------------------------------------------

    /// Audits the slab / bucket / list structure: every live entry on
    /// exactly one state list and one bucket chain, gauges consistent,
    /// bounds respected. Fault campaigns assert this after injecting
    /// table-full, timer-stall, and desync faults.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistency found.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.len > self.cfg.max_flows {
            return Err(format!(
                "len {} exceeds max_flows {}",
                self.len, self.cfg.max_flows
            ));
        }
        if self.cfg.overload_defense && self.half_open > self.cfg.syn_backlog {
            return Err(format!(
                "half_open {} exceeds syn_backlog {}",
                self.half_open, self.cfg.syn_backlog
            ));
        }
        let mut on_list = vec![false; self.slots.len()];
        let mut listed = 0usize;
        let mut listed_half = 0usize;
        for (s, &[head, tail]) in self.lists.iter().enumerate() {
            let mut prev = NIL;
            let mut i = head;
            while i != NIL {
                let slot = &self.slots[i as usize];
                if on_list[i as usize] {
                    return Err(format!("slot {i} linked twice"));
                }
                on_list[i as usize] = true;
                if slot.state as usize != s {
                    return Err(format!(
                        "slot {i} on list {s} but in state {:?}",
                        slot.state
                    ));
                }
                if slot.prev != prev {
                    return Err(format!("slot {i} prev link broken"));
                }
                listed += 1;
                if s == FlowState::SynSeen as usize {
                    listed_half += 1;
                }
                prev = i;
                i = slot.next;
                if listed > self.slots.len() {
                    return Err("state list cycle".to_string());
                }
            }
            if self.lists[s][1] != prev || (head == NIL) != (tail == NIL) {
                return Err(format!("list {s} tail mismatch"));
            }
        }
        if listed != self.len {
            return Err(format!(
                "lists hold {listed} entries, len says {}",
                self.len
            ));
        }
        if listed_half != self.half_open {
            return Err(format!(
                "syn-seen list holds {listed_half}, half_open says {}",
                self.half_open
            ));
        }
        let mut chained = 0usize;
        for (b, &head) in self.buckets.iter().enumerate() {
            let mut i = head;
            while i != NIL {
                let slot = &self.slots[i as usize];
                if !on_list[i as usize] {
                    return Err(format!("slot {i} in bucket {b} but on no state list"));
                }
                if self.bucket_of(slot.key.hash()) != b {
                    return Err(format!("slot {i} hashed to the wrong bucket"));
                }
                chained += 1;
                i = slot.hash_next;
                if chained > self.slots.len() {
                    return Err("bucket chain cycle".to_string());
                }
            }
        }
        if chained != self.len {
            return Err(format!(
                "buckets chain {chained} entries, len says {}",
                self.len
            ));
        }
        let mut free = 0usize;
        let mut i = self.free_head;
        while i != NIL {
            if on_list[i as usize] {
                return Err(format!("slot {i} both free and live"));
            }
            free += 1;
            i = self.slots[i as usize].next;
            if free > self.slots.len() {
                return Err("free list cycle".to_string());
            }
        }
        if free + self.len != self.cfg.max_flows {
            return Err(format!(
                "free {free} + live {} != max_flows {}",
                self.len, self.cfg.max_flows
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if !on_list[i] || slot.twin == NIL {
                continue;
            }
            let t = slot.twin as usize;
            if t >= self.slots.len() || !on_list[t] {
                return Err(format!("slot {i} twin {t} is not live"));
            }
            if self.slots[t].twin != u32::try_from(i).expect("slab fits u32") {
                return Err(format!("slot {i} twin link not symmetric"));
            }
            if self.slots[t].state != slot.state {
                return Err(format!(
                    "twin pair ({i},{t}) state split: {:?} vs {:?}",
                    slot.state, self.slots[t].state
                ));
            }
            if slot.nat.is_none() || self.slots[t].nat.is_none() {
                return Err(format!("twin pair ({i},{t}) missing its rewrite tuple"));
            }
        }
        Ok(())
    }

    /// Runs the audit and folds the outcome into the stats (workers call
    /// this once at shutdown so campaigns see violations in the report).
    pub fn audit(&mut self) {
        if self.check_invariants().is_err() {
            self.stats.invariant_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;
    const S: u64 = 1_000_000_000;

    fn cfg(max_flows: usize, backlog: usize) -> ConntrackConfig {
        ConntrackConfig {
            max_flows,
            syn_backlog: backlog,
            ..ConntrackConfig::default()
        }
    }

    fn key(n: u32) -> FlowKey {
        FlowKey::canonical(0x0A00_0000 | n, 0xC0A8_0001, 40_000, 443, 6)
    }

    const SYN: TcpSummary = TcpSummary {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        ack_no: 0,
    };
    const ACK: TcpSummary = TcpSummary {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        ack_no: 0,
    };
    const FIN: TcpSummary = TcpSummary {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        ack_no: 0,
    };
    const RST: TcpSummary = TcpSummary {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        ack_no: 0,
    };

    fn establish(ct: &mut Conntrack, k: &FlowKey, now: u64) {
        ct.admit_tcp(k, SYN, now).expect("syn admitted");
        ct.admit_tcp(k, ACK, now + MS).expect("ack admitted");
    }

    #[test]
    fn handshake_data_and_close_lifecycle() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let k = key(1);
        establish(&mut ct, &k, 0);
        assert_eq!(ct.len(), 1);
        assert_eq!(ct.half_open_len(), 0);
        for i in 0..5 {
            ct.admit_tcp(&k, ACK, (2 + i) * MS).expect("data admitted");
        }
        ct.admit_tcp(&k, FIN, 10 * MS).expect("fin admitted");
        assert_eq!(ct.len(), 1, "fin-wait entry still present");
        ct.admit_tcp(&k, ACK, 11 * MS).expect("final ack admitted");
        assert_eq!(ct.len(), 0, "graceful close removes the entry");
        assert_eq!(ct.stats().removed[EvictCause::Fin as usize], 1);
        ct.check_invariants().expect("clean structure");
    }

    #[test]
    fn rst_tears_down_in_any_state() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let half = key(1);
        ct.admit_tcp(&half, SYN, 0).unwrap();
        ct.admit_tcp(&half, RST, MS).expect("rst forwarded");
        assert_eq!(ct.len(), 0);
        let full = key(2);
        establish(&mut ct, &full, 0);
        ct.admit_tcp(&full, RST, MS).unwrap();
        assert_eq!(ct.len(), 0);
        assert_eq!(ct.stats().removed[EvictCause::Rst as usize], 2);
    }

    #[test]
    fn unknown_non_syn_packets_are_shed() {
        let mut ct = Conntrack::new(cfg(64, 16));
        assert_eq!(ct.admit_tcp(&key(1), ACK, 0), Err(DropReason::NoFlow));
        assert_eq!(ct.admit_tcp(&key(2), FIN, 0), Err(DropReason::NoFlow));
        assert_eq!(ct.admit_tcp(&key(3), RST, 0), Err(DropReason::NoFlow));
        assert_eq!(ct.len(), 0, "shed packets must not create state");
    }

    #[test]
    fn data_on_half_open_is_a_state_violation() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let k = key(1);
        ct.admit_tcp(&k, SYN, 0).unwrap();
        let data = TcpSummary {
            fin: true,
            ack: false,
            ..TcpSummary::default()
        };
        assert_eq!(ct.admit_tcp(&k, data, MS), Err(DropReason::StateViolation));
        assert_eq!(ct.len(), 1, "the half-open entry survives");
        ct.admit_tcp(&k, ACK, 2 * MS).expect("handshake completes");
    }

    #[test]
    fn syn_retransmits_refresh_not_duplicate() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let k = key(1);
        for i in 0..4 {
            ct.admit_tcp(&k, SYN, i * MS).unwrap();
        }
        assert_eq!(ct.len(), 1);
        assert_eq!(ct.half_open_len(), 1);
    }

    #[test]
    fn both_directions_share_one_entry() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let fwd = FlowKey::canonical(0x0A000001, 0x0B000001, 40_000, 443, 6);
        let rev = FlowKey::canonical(0x0B000001, 0x0A000001, 443, 40_000, 6);
        assert_eq!(fwd, rev, "canonical keys collapse directions");
        ct.admit_tcp(&fwd, SYN, 0).unwrap();
        let synack = TcpSummary {
            syn: true,
            ack: true,
            ..TcpSummary::default()
        };
        ct.admit_tcp(&rev, synack, MS)
            .expect("syn-ack leg admitted");
        assert_eq!(ct.len(), 1);
        ct.admit_tcp(&fwd, ACK, 2 * MS).unwrap();
        assert_eq!(ct.half_open_len(), 0);
    }

    #[test]
    fn backlog_pressure_evicts_oldest_half_open_only() {
        let mut ct = Conntrack::new(cfg(64, 4));
        establish(&mut ct, &key(100), 0);
        for i in 0..4 {
            ct.admit_tcp(&key(i), SYN, u64::from(i) * MS).unwrap();
        }
        assert_eq!(ct.half_open_len(), 4);
        // The 5th SYN displaces the oldest half-open, not the established.
        ct.admit_tcp(&key(4), SYN, 10 * MS).unwrap();
        assert_eq!(ct.half_open_len(), 4);
        assert_eq!(ct.len(), 5);
        assert_eq!(ct.stats().removed[EvictCause::HalfOpenPressure as usize], 1);
        // The displaced flow's ACK now finds nothing.
        assert_eq!(ct.admit_tcp(&key(0), ACK, 11 * MS), Err(DropReason::NoFlow));
        // The established flow is untouched.
        ct.admit_tcp(&key(100), ACK, 12 * MS)
            .expect("still tracked");
        ct.check_invariants().expect("clean structure");
    }

    #[test]
    fn sustained_pressure_enters_cookie_mode_and_sweep_exits_it() {
        let backlog = 4;
        let mut ct = Conntrack::new(cfg(64, backlog));
        let mut n = 0u32;
        // Fill the backlog, then churn a full backlog's worth of pressure
        // evictions: the shard must flip to stateless fallback.
        while !ct.cookie_mode() {
            ct.admit_tcp(&key(n), SYN, u64::from(n) * MS).unwrap();
            n += 1;
            assert!(n < 1000, "cookie mode must engage under sustained churn");
        }
        assert_eq!(ct.stats().cookie_mode_entries, 1);
        let live_before = ct.len();
        ct.admit_tcp(&key(9999), SYN, S).expect("stateless forward");
        assert_eq!(ct.len(), live_before, "stateless SYN creates no state");
        assert_eq!(ct.stats().stateless_syns, 2, "trigger SYN + this one");
        // Reap the half-opens (idle past syn timeout) and the mode exits.
        let reaped = ct.sweep(20 * S);
        assert!(reaped > 0);
        assert!(!ct.cookie_mode(), "hysteresis exit after the reap");
        assert_eq!(ct.stats().cookie_mode_exits, 1);
    }

    #[test]
    fn cookie_ack_establishes_and_bad_cookie_is_shed() {
        let mut ct = Conntrack::new(cfg(64, 2));
        let mut n = 0u32;
        while !ct.cookie_mode() {
            ct.admit_tcp(&key(n), SYN, u64::from(n) * MS).unwrap();
            n += 1;
        }
        let k = key(5000);
        ct.admit_tcp(&k, SYN, S).expect("stateless");
        let good = TcpSummary {
            ack: true,
            ack_no: ct.cookie(&k).wrapping_add(1),
            ..TcpSummary::default()
        };
        let bad = TcpSummary {
            ack: true,
            ack_no: 12345,
            ..TcpSummary::default()
        };
        assert_eq!(
            ct.admit_tcp(&key(5001), bad, S + MS),
            Err(DropReason::BadCookie)
        );
        ct.admit_tcp(&k, good, S + 2 * MS)
            .expect("cookie validates");
        assert_eq!(ct.stats().cookie_established, 1);
        // The flow is now a first-class established entry.
        ct.admit_tcp(&k, ACK, S + 3 * MS).expect("data flows");
        ct.check_invariants().expect("clean structure");
    }

    #[test]
    fn full_table_protects_established_flows() {
        // 4 slots, all established: a new SYN has nothing evictable under
        // defense and is shed with the typed reason.
        let mut ct = Conntrack::new(cfg(4, 4));
        for i in 0..4 {
            establish(&mut ct, &key(i), 0);
        }
        assert_eq!(ct.len(), 4);
        assert_eq!(
            ct.admit_tcp(&key(99), SYN, MS),
            Err(DropReason::FlowTableFull)
        );
        assert_eq!(ct.len(), 4, "established entries untouched");
        for i in 0..4 {
            ct.admit_tcp(&key(i), ACK, 2 * MS)
                .expect("still forwarding");
        }
    }

    #[test]
    fn defense_off_lru_evicts_established() {
        let mut ct = Conntrack::new(ConntrackConfig {
            overload_defense: false,
            ..cfg(4, 4)
        });
        for i in 0..4 {
            establish(&mut ct, &key(i), u64::from(i) * MS);
        }
        // The naive tracker makes room by evicting the least-recent entry —
        // an established flow. This is the failure mode E14 measures.
        ct.admit_tcp(&key(99), SYN, S).expect("naive admit");
        assert_eq!(ct.len(), 4);
        assert_eq!(ct.stats().removed[EvictCause::Lru as usize], 1);
        assert_eq!(ct.admit_tcp(&key(0), ACK, S + MS), Err(DropReason::NoFlow));
    }

    #[test]
    fn sweep_reaps_by_per_state_timeouts() {
        let c = ConntrackConfig {
            syn_timeout_ns: 5 * S,
            established_timeout_ns: 300 * S,
            fin_timeout_ns: 30 * S,
            ..cfg(64, 16)
        };
        let mut ct = Conntrack::new(c);
        ct.admit_tcp(&key(1), SYN, 0).unwrap(); // half-open
        establish(&mut ct, &key(2), 0); // established
        establish(&mut ct, &key(3), 0);
        ct.admit_tcp(&key(3), FIN, MS).unwrap(); // fin-wait
        assert_eq!(ct.len(), 3);
        // 40 s in: the half-open (5 s) and fin-wait (30 s) expire; the
        // established flow (300 s) survives.
        let reaped = ct.sweep(40 * S);
        assert_eq!(reaped, 2);
        assert_eq!(ct.len(), 1);
        ct.admit_tcp(&key(2), ACK, 41 * S)
            .expect("established survives");
        // 400 s idle: the established flow goes too.
        assert_eq!(ct.sweep(441 * S), 1);
        assert!(ct.is_empty());
        assert_eq!(ct.stats().removed[EvictCause::Timeout as usize], 3);
    }

    #[test]
    fn sweep_work_is_bounded_per_call() {
        let c = ConntrackConfig {
            sweep_batch: 8,
            ..cfg(256, 256)
        };
        let mut ct = Conntrack::new(c);
        for i in 0..100 {
            ct.admit_tcp(&key(i), SYN, 0).unwrap();
        }
        assert_eq!(ct.sweep(100 * S), 8, "one batch per call");
        assert_eq!(ct.len(), 92);
        assert_eq!(ct.sweep(101 * S), 8);
    }

    #[test]
    fn due_sweep_follows_the_interval() {
        let c = ConntrackConfig {
            sweep_interval_ns: 100 * MS,
            ..cfg(16, 4)
        };
        let mut ct = Conntrack::new(c);
        assert!(ct.due_sweep(100 * MS));
        ct.sweep(100 * MS);
        assert!(!ct.due_sweep(150 * MS));
        assert!(ct.due_sweep(200 * MS));
    }

    #[test]
    fn injected_table_full_sheds_and_preserves_structure() {
        use sysfault::{FaultPlan, Schedule};
        let plan = FaultPlan::new(7).with_site(SITE_CT_TABLE_FULL, Schedule::EveryNth(2));
        let mut ct = Conntrack::new(cfg(64, 16)).with_injector(FaultInjector::new(plan));
        let mut admitted = 0;
        let mut shed = 0;
        for i in 0..20 {
            match ct.admit_tcp(&key(i), SYN, u64::from(i) * MS) {
                Ok(()) => admitted += 1,
                Err(DropReason::FlowTableFull) => shed += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!((admitted, shed), (10, 10));
        assert_eq!(ct.len(), 10);
        ct.check_invariants().expect("structure survives injection");
        assert!(ct.fault_digest() != 0, "campaign digest records the fires");
    }

    #[test]
    fn injected_timer_stall_skips_the_reap_without_wedging() {
        use sysfault::{FaultPlan, Schedule};
        let plan = FaultPlan::new(3).with_site(SITE_CT_TIMER_STALL, Schedule::OneShotAt(1));
        let mut ct = Conntrack::new(cfg(64, 16)).with_injector(FaultInjector::new(plan));
        ct.admit_tcp(&key(1), SYN, 0).unwrap();
        assert_eq!(ct.sweep(100 * S), 0, "stalled sweep reaps nothing");
        assert_eq!(ct.stats().timer_stalls, 1);
        assert_eq!(ct.sweep(200 * S), 1, "next sweep catches up");
        ct.check_invariants().expect("clean after stall");
    }

    #[test]
    fn injected_desync_drains_the_flow_cleanly() {
        use sysfault::{FaultPlan, Schedule};
        let plan = FaultPlan::new(11).with_site(SITE_CT_STATE_DESYNC, Schedule::OneShotAt(1));
        let mut ct = Conntrack::new(cfg(64, 16)).with_injector(FaultInjector::new(plan));
        let k = key(1);
        establish(&mut ct, &k, 0);
        // The next packet hits the desync: entry silently flips to FinWait,
        // and the ACK then completes a "close" the flow never asked for.
        ct.admit_tcp(&k, ACK, 2 * MS).expect("drains, not wedges");
        assert_eq!(ct.stats().desyncs_injected, 1);
        assert!(ct.is_empty(), "desynced flow drained out");
        assert_eq!(ct.admit_tcp(&k, ACK, 3 * MS), Err(DropReason::NoFlow));
        ct.check_invariants()
            .expect("structure intact after desync");
    }

    #[test]
    fn shared_gauge_caps_across_shards() {
        let shared = Arc::new(ConntrackShared::new(3));
        let mut a = Conntrack::new(cfg(16, 16)).with_shared(Arc::clone(&shared));
        let mut b = Conntrack::new(cfg(16, 16)).with_shared(Arc::clone(&shared));
        a.admit_tcp(&key(1), SYN, 0).unwrap();
        a.admit_tcp(&key(2), SYN, 0).unwrap();
        b.admit_tcp(&key(3), SYN, 0).unwrap();
        assert_eq!(shared.live(), 3);
        // Shard B is at the global cap: its only evictable room is its own
        // half-open, so the gauge never exceeds the limit.
        b.admit_tcp(&key(4), SYN, MS).expect("evicts own half-open");
        assert_eq!(shared.live(), 3);
        assert_eq!(b.len(), 1);
        a.admit_tcp(&key(1), RST, 2 * MS).unwrap();
        assert_eq!(shared.live(), 2);
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn peaks_and_audit_are_recorded() {
        let mut ct = Conntrack::new(cfg(8, 8));
        for i in 0..6 {
            ct.admit_tcp(&key(i), SYN, 0).unwrap();
        }
        for i in 0..6 {
            ct.admit_tcp(&key(i), RST, MS).unwrap();
        }
        assert_eq!(ct.stats().peak_flows, 6);
        assert_eq!(ct.stats().peak_half_open, 6);
        ct.audit();
        assert_eq!(ct.stats().invariant_violations, 0);
        let snap = ct.stats().to_snapshot();
        assert_eq!(snap.counter("net.ct.peak_flows"), 6);
        assert_eq!(snap.counter("net.ct.removed.rst"), 6);
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peaks() {
        let mut a = ConntrackStats {
            flows_created: 5,
            peak_flows: 10,
            ..ConntrackStats::default()
        };
        let b = ConntrackStats {
            flows_created: 7,
            peak_flows: 3,
            ..ConntrackStats::default()
        };
        a.merge(&b);
        assert_eq!(a.flows_created, 12);
        assert_eq!(a.peak_flows, 10);
    }

    fn nat(n: u32) -> NatRewrite {
        NatRewrite {
            client_ip: 0x0A00_0000 | n,
            client_port: 40_000,
            vip: 0xC0A8_0001,
            vport: 443,
            backend_ip: 0xAC10_0001,
            backend_port: 8_443,
            backend: 0,
        }
    }

    fn nat_keys(n: u32) -> (FlowKey, FlowKey) {
        let r = nat(n);
        (
            FlowKey::canonical(r.client_ip, r.vip, r.client_port, r.vport, 6),
            FlowKey::canonical(r.client_ip, r.backend_ip, r.client_port, r.backend_port, 6),
        )
    }

    #[test]
    fn nat_twins_live_and_die_together() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let (orig, reply) = nat_keys(1);
        ct.insert_nat(&orig, &reply, nat(1), FlowState::SynSeen, 0)
            .expect("pair inserted");
        assert_eq!(ct.len(), 2, "a NAT flow holds two slots");
        assert_eq!(ct.half_open_len(), 2);
        assert_eq!(ct.nat_of(&orig), Some(nat(1)));
        assert_eq!(ct.nat_of(&reply), Some(nat(1)));
        ct.check_invariants().expect("twin symmetry");
        // The handshake ACK on the orig key promotes BOTH twins.
        ct.admit_tcp(&orig, ACK, MS).expect("promoted");
        assert_eq!(ct.half_open_len(), 0, "twin promoted in lockstep");
        // Packets on the reply key drive the same flow.
        ct.admit_tcp(&reply, ACK, 2 * MS).expect("reply direction");
        // RST on either key removes the pair.
        ct.admit_tcp(&reply, RST, 3 * MS).expect("rst forwarded");
        assert_eq!(ct.len(), 0, "both twins removed");
        assert!(ct.nat_of(&orig).is_none());
        ct.check_invariants().expect("clean after pair teardown");
    }

    #[test]
    fn nat_insert_rejects_collisions_and_rolls_back_partials() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let (orig, reply) = nat_keys(1);
        ct.admit_tcp(&orig, SYN, 0).unwrap();
        assert_eq!(
            ct.insert_nat(&orig, &reply, nat(1), FlowState::SynSeen, MS),
            Err(DropReason::StateViolation),
            "orig key already tracked"
        );
        // A 2-slot table with both slots established: no room for a pair,
        // and no partial pair may survive the failure.
        let mut tiny = Conntrack::new(cfg(2, 2));
        establish(&mut tiny, &key(50), 0);
        establish(&mut tiny, &key(51), 0);
        let (o2, r2) = nat_keys(2);
        assert_eq!(
            tiny.insert_nat(&o2, &r2, nat(2), FlowState::Established, MS),
            Err(DropReason::FlowTableFull)
        );
        assert_eq!(tiny.len(), 2, "no partial pair left behind");
        assert!(!tiny.contains(&o2) && !tiny.contains(&r2));
        tiny.check_invariants().expect("clean after rollback");
    }

    #[test]
    fn nat_refresh_touches_both_twins() {
        let c = ConntrackConfig {
            established_timeout_ns: 10 * S,
            ..cfg(64, 16)
        };
        let mut ct = Conntrack::new(c);
        let (orig, reply) = nat_keys(1);
        ct.insert_nat(&orig, &reply, nat(1), FlowState::Established, 0)
            .unwrap();
        assert!(ct.refresh(&reply, 9 * S), "tracked flow refreshes");
        assert!(!ct.refresh(&key(99), 9 * S), "unknown key does not");
        // Sweep at 15 s: both twins were touched at 9 s, so neither is
        // idle past the 10 s timeout. A half-refreshed pair would lose one
        // direction here.
        assert_eq!(ct.sweep(15 * S), 0);
        assert_eq!(ct.len(), 2);
        // At 25 s both expire together.
        assert_eq!(ct.sweep(25 * S), 2);
        assert!(ct.is_empty());
    }

    #[test]
    fn degenerate_hairpin_key_stores_one_entry() {
        // Rewrite collapses orig and reply to the same canonical key.
        let mut ct = Conntrack::new(cfg(64, 16));
        let (orig, _) = nat_keys(1);
        ct.insert_nat(&orig, &orig, nat(1), FlowState::Established, 0)
            .unwrap();
        assert_eq!(ct.len(), 1);
        assert_eq!(ct.nat_of(&orig), Some(nat(1)));
        ct.admit_tcp(&orig, RST, MS).unwrap();
        assert!(ct.is_empty());
        ct.check_invariants().unwrap();
    }

    #[test]
    fn remove_flow_ejects_the_pair() {
        let mut ct = Conntrack::new(cfg(64, 16));
        let (orig, reply) = nat_keys(1);
        ct.insert_nat(&orig, &reply, nat(1), FlowState::Established, 0)
            .unwrap();
        assert!(ct.remove_flow(&orig, EvictCause::Rst));
        assert_eq!(ct.len(), 0);
        assert!(!ct.remove_flow(&orig, EvictCause::Rst), "already gone");
    }

    #[test]
    fn churn_preserves_invariants() {
        // Deterministic mixed churn across many keys, states, and sweeps.
        let mut ct = Conntrack::new(cfg(32, 8));
        let mut t = 0u64;
        for round in 0u32..2000 {
            let k = key(round % 50);
            let seg = match round % 7 {
                0 | 1 => SYN,
                2 | 3 => ACK,
                4 => FIN,
                5 => RST,
                _ => TcpSummary {
                    syn: true,
                    ack: true,
                    ..TcpSummary::default()
                },
            };
            let _ = ct.admit_tcp(&k, seg, t);
            t += 700 * MS;
            if ct.due_sweep(t) {
                ct.sweep(t);
            }
            if round % 128 == 0 {
                ct.check_invariants().expect("invariants under churn");
            }
        }
        ct.check_invariants().expect("final audit");
        assert!(ct.len() <= 32);
    }
}
