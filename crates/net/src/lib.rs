//! # sysnet — the packet data plane
//!
//! Where the paper's Challenge 3 (bit-precise representation) meets
//! Challenge 4 (managing shared state): a forwarding plane built on the
//! zero-copy [`sysrepr::packet`] views and the [`sysconc::channel`] bounded
//! channels, with no code the substrate rule forbids.
//!
//! Seven layers:
//!
//! * [`lpm`] — longest-prefix-match routing tables: a binary [`lpm::TrieTable`]
//!   (the data plane's lookup structure) and the [`lpm::LinearTable`]
//!   reference it is property-tested against. Both canonicalize prefixes on
//!   insert (`prefix & mask`), fixing the silent never-matches bug an
//!   unmasked entry like `10.1.2.9/24` used to cause. The trie carries a
//!   generation counter so caches can observe route changes. The [`lpm::Routes`]
//!   trait abstracts "something you can route against", so the cache and
//!   pipeline work identically over an exclusive trie or a concurrent view.
//! * [`cowtrie`] — concurrent route updates: [`cowtrie::CowRouteTable`]
//!   publishes each change as a copy-on-write spine clone behind one atomic
//!   root pointer, readers pin an epoch ([`sysmem::epoch`]) and walk a frozen
//!   snapshot with zero synchronization per lookup, and retired nodes are
//!   reclaimed only after every reader provably moved on.
//! * [`cache`] — the per-worker flow → next-hop [`cache::FlowCache`]:
//!   direct-mapped over the shared FNV-1a hash, exact-keyed (collisions
//!   miss, never misroute), generation-invalidated on any table mutation,
//!   with post-invalidation misses attributed separately so route churn is
//!   distinguishable from capacity pressure.
//! * [`pipeline`] — the batched parse → validate → route fast path: total
//!   parsing (LangSec style — reject before acting), per-reason drop
//!   counters, zero allocation per packet, TTL decremented in place with
//!   RFC 1624 incremental checksum fixup.
//! * [`lb`] — L4 load balancing over conntrack: weighted rendezvous backend
//!   selection keyed by the canonical flow hash, NAT rewrite tuples stored
//!   in the flow entry (twin slots, both directions from one lookup),
//!   in-place header rewriting through the mutable [`sysrepr::packet`]
//!   views, and seeded health probes with drain/eject semantics.
//! * [`router`] — the sharded multi-worker router: flows hash-partition
//!   across `std::thread` workers fed through bounded channels
//!   (backpressure, not unbounded queues), per-worker counters aggregated
//!   into a router-wide snapshot. Steady state recycles every frame and
//!   batch buffer through per-worker return channels — zero allocations
//!   per packet after warm-up — and sizes batches adaptively from queue
//!   occupancy, dispatching with `try_send` so one slow worker cannot
//!   head-of-line-block the rest.
//! * [`bench`] — the measured trajectory: sweeps worker counts and batch
//!   sizes, reports packets/sec and p50/p99 per-packet latency, and renders
//!   the `BENCH_router.json` record the ROADMAP's perf north star tracks.
//!
//! ```
//! use sysnet::lpm::TrieTable;
//!
//! let mut table = TrieTable::new();
//! table.insert(u32::from_be_bytes([10, 0, 0, 0]), 8, 1u16).unwrap();
//! table.insert(u32::from_be_bytes([10, 1, 0, 0]), 16, 2u16).unwrap();
//! // Longest prefix wins.
//! assert_eq!(table.lookup(u32::from_be_bytes([10, 1, 9, 9])), Some(2));
//! assert_eq!(table.lookup(u32::from_be_bytes([10, 7, 0, 1])), Some(1));
//! ```

pub mod bench;
pub mod cache;
pub mod conntrack;
pub mod cowtrie;
pub mod ctbench;
pub mod lb;
pub mod lbbench;
pub mod lpm;
pub mod pipeline;
pub mod router;

pub use cache::FlowCache;
pub use conntrack::{
    Conntrack, ConntrackConfig, ConntrackShared, ConntrackStats, FlowKey, NatRewrite,
};
pub use cowtrie::{CowRouteTable, RouteReader, RouteView};
pub use lb::{BackendConfig, BackendPool, BackendState, LbConfig, LbStats};
pub use lpm::{LinearTable, RouteError, Routes, TrieTable};
pub use pipeline::{process_batch, BatchStats, DropReason};
pub use router::{
    CowEpochStats, RouteMode, RouteUpdater, RouterConfig, RouterReport, RouterStats, ShardedRouter,
};
