//! # plos06 — reproduction of Shapiro, *Programming Language Challenges in
//! Systems Codes* (PLOS 2006)
//!
//! The paper is a position paper: four fallacies the PL community holds
//! about systems code, four challenges a C replacement must solve, and the
//! BitC language as the proposed existence proof. This workspace builds the
//! whole system the argument needs and measures every claim:
//!
//! | Crate | Role |
//! |---|---|
//! | [`bitc_core`] | The BitC-style language: HM types + mutation + a VM with *both* unboxed and boxed value representations |
//! | [`bitc_verify`] | The prover: DPLL(T) over linear integer arithmetic, WP-based contract checking |
//! | [`sysmem`] | Six memory managers (region → generational GC) behind one object model |
//! | [`sysconc`] | Locks, TL2 STM, channels, actors, and the bank-composition workload |
//! | [`sysrepr`] | Bit-precise layout, zero-copy packet views, LangSec combinators |
//! | [`microkernel`] | An EROS-flavoured capability kernel whose heap policy is injectable |
//!
//! The [`experiments`] module regenerates every table in EXPERIMENTS.md
//! (`cargo run --release --example experiments -- all`); Criterion versions
//! live in `crates/bench`.

pub use bitc_core;
pub use bitc_verify;
pub use microkernel;
pub use sysconc;
pub use sysmem;
pub use sysrepr;

pub mod experiments;
