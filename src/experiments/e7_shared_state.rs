//! E7 — Managing shared state (Challenge 4).
//!
//! The bank-composition workload under five concurrency models, swept over
//! thread counts, with a continuous auditor watching the invariant. The
//! composition claim is qualitative (the broken two-phase bank exposes
//! intermediate state; the others cannot) and the cost claim is
//! quantitative (what does composable atomicity cost?).

use super::{fmt_rate, Scale, Table};
use sysconc::bank::{
    run_contention, ActorBank, Bank, BrokenComposedBank, CoarseLockBank, FineLockBank, StmBank,
};
use sysconc::stm::stm_stats;

fn ops(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 50_000,
    }
}

/// Runs E7 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let accounts = 64;
    let initial = 1_000;
    let ops = ops(scale);
    let threads_list: &[usize] = match scale {
        Scale::Quick => &[2, 4],
        Scale::Full => &[1, 2, 4, 8],
    };
    let mut t = Table::new(
        "E7 — bank-transfer workload: five concurrency models, continuous audit",
        &[
            "model",
            "threads",
            "transfer rate",
            "audits",
            "audit anomalies",
            "STM aborts",
            "final total ok",
        ],
    );
    for &threads in threads_list {
        let banks: Vec<Box<dyn Bank>> = vec![
            Box::new(CoarseLockBank::new(accounts, initial)),
            Box::new(FineLockBank::new(accounts, initial)),
            Box::new(BrokenComposedBank::new(accounts, initial)),
            Box::new(StmBank::new(accounts, initial)),
            Box::new(ActorBank::new(accounts, initial)),
        ];
        for bank in banks {
            let expected = i64::try_from(accounts).expect("fits") * initial;
            let aborts_before = stm_stats().aborts;
            let r = run_contention(bank.as_ref(), threads, ops);
            let aborts = if bank.name() == "stm" {
                (stm_stats().aborts - aborts_before).to_string()
            } else {
                "-".into()
            };
            t.row(vec![
                r.bank.to_owned(),
                threads.to_string(),
                fmt_rate(r.throughput()),
                r.audits.to_string(),
                r.audit_anomalies.to_string(),
                aborts,
                if bank.audit() == expected {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t.note("broken-composed calls two individually-correct critical sections in sequence — the paper's composition failure; anomalies are audits that watched money vanish mid-transfer.");
    t.note("paper claim: locks don't compose (anomalies > 0 possible only for broken-composed); STM/actors give composable atomicity at a measurable throughput price.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_correct_models_never_show_anomalies() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[6], "yes", "{} lost money outright", row[0]);
            if row[0] != "broken-composed" {
                assert_eq!(row[4], "0", "{} showed an audit anomaly", row[0]);
            }
        }
    }
}
