//! E6 — Heap policy inside the IPC fast path (Fallacy 1 in situ).
//!
//! The kernel's message buffers are allocated from an injectable heap
//! manager. The IPC protocol, the cycle model, and the request stream are
//! identical across policies; only the allocator changes. The paper's
//! claim: a GC in the kernel's fast path turns a flat latency profile into
//! one with spikes, which a microkernel cannot ship.

use super::{fmt_ns, Scale, Table};
use microkernel::kernel::Kernel;
use microkernel::rights::Rights;
use std::time::Instant;
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::stats::PauseHistogram;
use sysmem::Manager;

fn rounds(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1_000,
        Scale::Full => 50_000,
    }
}

fn heap(policy: &str, bytes: usize) -> Box<dyn Manager> {
    // Sized so that collection actually happens during the run — a kernel
    // heap is small by design; an idle GC would be measuring nothing.
    match policy {
        "freelist" => Box::new(FreeListHeap::new(bytes)),
        "mark-sweep" => Box::new(MarkSweepHeap::new(bytes / 16)),
        "semispace" => Box::new(SemiSpaceHeap::new(bytes / 8)),
        "generational" => Box::new(GenerationalHeap::new(bytes / 16, 1 << 12)),
        other => unreachable!("unknown policy {other}"),
    }
}

struct PolicyResult {
    policy: &'static str,
    cycles_per_rt: u64,
    rt_pauses: PauseHistogram,
    gc_max_pause_ns: u64,
    collections: u64,
}

fn drive(policy: &'static str, rounds: usize, words: usize) -> PolicyResult {
    let mut k = Kernel::new(heap(policy, 1 << 20));
    let server = k.spawn_process();
    let client = k.spawn_process();
    let req_s = k.create_endpoint(server).unwrap();
    let req_c = k.grant_cap(server, req_s, client, Rights::SEND).unwrap();
    let rep_s = k.create_endpoint(server).unwrap();
    let rep_c = k.grant_cap(server, rep_s, client, Rights::RECV).unwrap();
    let mut rt_pauses = PauseHistogram::new();
    let mut total_cycles = 0u64;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let cycles = k
            .ping_pong(client, server, (req_s, req_c), (rep_s, rep_c), words)
            .expect("round trip");
        rt_pauses.record(t0.elapsed());
        total_cycles += cycles;
    }
    PolicyResult {
        policy,
        cycles_per_rt: total_cycles / rounds.max(1) as u64,
        rt_pauses,
        gc_max_pause_ns: k.heap_max_pause_ns(),
        collections: k.heap_collections(),
    }
}

/// Runs E6 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let rounds = rounds(scale);
    let words = 16;
    let mut t = Table::new(
        "E6 — IPC round-trip latency under four kernel heap policies",
        &[
            "heap policy",
            "cycles/RT",
            "p50",
            "p99",
            "max",
            "GC max pause",
            "GCs",
        ],
    );
    for policy in ["freelist", "mark-sweep", "semispace", "generational"] {
        let r = drive(policy, rounds, words);
        t.row(vec![
            r.policy.to_owned(),
            r.cycles_per_rt.to_string(),
            fmt_ns(r.rt_pauses.percentile_ns(0.50)),
            fmt_ns(r.rt_pauses.percentile_ns(0.99)),
            fmt_ns(r.rt_pauses.max_ns()),
            fmt_ns(r.gc_max_pause_ns),
            r.collections.to_string(),
        ]);
    }
    t.note(format!("{rounds} round trips of {words}-word messages; protocol cycles identical across policies by construction."));
    t.note("paper claim: the cycle model is policy-independent (transparency), but wall-clock tails blow up when collection lands in the path.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_runs_all_policies() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // Protocol cycles are identical across policies.
        let cycles: Vec<&String> = t.rows.iter().map(|r| &r[1]).collect();
        assert!(cycles.windows(2).all(|w| w[0] == w[1]), "{cycles:?}");
    }
}
