//! E12 — the zero-alloc steady state: flow route cache + frame pooling.
//!
//! PR 4 rebuilt the router's dispatch loop around two C-idiom techniques
//! the paper says safe languages must support (C2: idiomatic manual
//! storage management) and whose payoff is exactly the 1.5–2x factor the
//! paper says the PL community dismisses (F1):
//!
//! * **frame/batch pooling** — workers hand drained buffers back to the
//!   dispatcher over per-worker recycle channels, so after warm-up the
//!   steady state performs (amortized) zero heap allocations per packet.
//!   `router_bench` *measures* this with a counting global allocator and
//!   asserts allocs/packet < 0.05; here we report the pool's reuse rate.
//! * **per-worker flow cache** — a direct-mapped `(src, dst)` → next-hop
//!   cache in front of the trie, invalidated wholesale by the table's
//!   generation counter. Real traffic is flow-skewed; the cache converts
//!   the common case from a 32-level trie walk into one array probe.
//!
//! The A/B: the same skewed stream through the same router with the cache
//! on vs off (`cache_slots = 0`), plus the adversarial unique-flow stream
//! (every packet its own flow) where the cache can only miss — the table
//! shows the win on realistic traffic *and* bounds the regression on the
//! pathological case.

use super::{fmt_ns, fmt_rate, Scale, Table};
use std::time::Instant;
use sysnet::bench::{address_stream, build_tables, frame_stream, SweepConfig, PORTS};
use sysnet::router::{PoolStats, RouterConfig, ShardedRouter};
use sysnet::FlowCache;

/// One measured configuration.
struct Point {
    pps: f64,
    p50_ns: u64,
    p99_ns: u64,
    hit_rate: f64,
    pool: PoolStats,
    forwarded: u64,
    dropped: u64,
}

fn stream_config(scale: Scale, flows: usize) -> SweepConfig {
    let mut cfg = match scale {
        Scale::Quick => SweepConfig::quick(),
        Scale::Full => SweepConfig::full(),
    };
    cfg.flows = flows;
    cfg
}

/// Routes `frames` through a 2-worker router with the given cache sizing;
/// best of `trials` trials (wall-clock on a shared host is scheduler-noisy).
#[allow(clippy::cast_precision_loss)]
fn measure(frames: &[Vec<u8>], routes: usize, cache_slots: usize, trials: usize) -> Point {
    let mut best: Option<Point> = None;
    for _ in 0..trials.max(1) {
        let (trie, _) = build_tables(routes);
        let config = RouterConfig {
            workers: 2,
            batch_size: 64,
            cache_slots,
            ..RouterConfig::default()
        };
        let t0 = Instant::now();
        let mut router = ShardedRouter::start(trie, PORTS, config);
        for frame in frames {
            router.submit(frame);
        }
        let report = router.finish();
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let point = Point {
            pps: report.packets() as f64 / secs,
            p50_ns: report.latency_ns(0.50),
            p99_ns: report.latency_ns(0.99),
            hit_rate: report.cache_hit_rate(),
            pool: report.pool,
            forwarded: report.stats.totals.forwarded,
            dropped: report.stats.totals.dropped_total(),
        };
        if best.as_ref().is_none_or(|b| point.pps > b.pps) {
            best = Some(point);
        }
    }
    best.expect("at least one trial")
}

/// Times route resolution alone — the path the cache shortcuts — over a
/// skewed flow sequence: the bare trie walk vs the cache probe with trie
/// fallback. Returns (trie ns/lookup, cached ns/lookup, hit rate).
#[allow(clippy::cast_precision_loss)]
fn lookup_comparison(routes: usize, flows: usize, lookups: usize, seed: u64) -> (f64, f64, f64) {
    let (trie, _) = build_tables(routes);
    let dsts = address_stream(flows, routes, seed);
    // The same skew the frame stream uses: 7 of 8 packets from the hottest
    // eighth of flows. A fixed stride stands in for the RNG so the timed
    // loops stay allocation- and branch-predictable-free of rand overhead.
    let hot = (flows / 8).max(1);
    let keys: Vec<(u32, u32)> = (0..lookups)
        .map(|i| {
            let f = if i % 8 != 0 {
                (i * 31) % hot
            } else {
                (i * 131) % flows
            };
            #[allow(clippy::cast_possible_truncation)]
            let src = (f as u32).wrapping_mul(0x9E37_79B9);
            (src, dsts[f])
        })
        .collect();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(_, dst) in &keys {
        if let Some(hop) = trie.lookup(dst) {
            acc = acc.wrapping_add(u64::from(hop));
        }
    }
    std::hint::black_box(acc);
    let trie_ns = t0.elapsed().as_nanos() as f64 / keys.len() as f64;

    let mut cache = FlowCache::new(4096);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(src, dst) in &keys {
        if let Some(hop) = cache.lookup_or_route(&trie, src, dst) {
            acc = acc.wrapping_add(u64::from(hop));
        }
    }
    std::hint::black_box(acc);
    let cached_ns = t0.elapsed().as_nanos() as f64 / keys.len() as f64;
    (trie_ns, cached_ns, cache.hit_rate())
}

/// Runs E12 at the given scale.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 — flow cache and frame pooling: the zero-alloc steady state",
        &[
            "stream",
            "cache",
            "hit rate",
            "rate",
            "p50",
            "p99",
            "frame reuse",
        ],
    );

    let trials = match scale {
        Scale::Quick => 1,
        Scale::Full => 3,
    };
    let (flows, lookups) = match scale {
        Scale::Quick => (1024, 200_000),
        Scale::Full => (4096, 2_000_000),
    };
    let skewed = stream_config(scale, flows);
    let unique = stream_config(scale, 0);

    let (trie_ns, cached_ns, probe_hits) =
        lookup_comparison(skewed.routes, flows, lookups, skewed.seed);
    for (name, ns, hits) in [
        ("lookup: trie walk", trie_ns, None),
        ("lookup: flow cache", cached_ns, Some(probe_hits)),
    ] {
        t.row(vec![
            name.into(),
            if hits.is_some() {
                "on (4096)".into()
            } else {
                "off".into()
            },
            hits.map_or_else(|| "—".into(), |h| format!("{:.1} %", h * 100.0)),
            fmt_rate(1e9 / ns.max(1e-9)),
            format!("{ns:.1} ns"),
            "—".into(),
            "—".into(),
        ]);
    }

    let mut reuse = 0.0;
    for (stream_name, cfg) in [("skewed flows", &skewed), ("unique flows", &unique)] {
        let frames = frame_stream(cfg);
        for (cache_name, slots) in [("on (4096)", 4096usize), ("off", 0)] {
            let p = measure(&frames, cfg.routes, slots, trials);
            assert_eq!(
                p.forwarded + p.dropped,
                frames.len() as u64,
                "conservation: every frame accounted for"
            );
            if stream_name == "skewed flows" && slots > 0 {
                reuse = p.pool.frame_reuse_rate();
            }
            t.row(vec![
                stream_name.into(),
                cache_name.into(),
                if slots > 0 {
                    format!("{:.1} %", p.hit_rate * 100.0)
                } else {
                    "—".into()
                },
                fmt_rate(p.pps),
                fmt_ns(p.p50_ns),
                fmt_ns(p.p99_ns),
                format!("{:.1} %", p.pool.frame_reuse_rate() * 100.0),
            ]);
        }
    }

    t.note(format!(
        "on the lookup path the cache is {:.1}x cheaper than the trie walk — \
         the F1-sized factor — but the end-to-end A/B rows are near parity: \
         on this single-core host the dispatcher (memcpy + hash + channel), \
         not route lookup, bounds throughput, so the probe's job end-to-end \
         is to cost nothing, including on the adversarial unique-flow stream \
         where it can only miss",
        trie_ns / cached_ns.max(1e-9)
    ));
    t.note(format!(
        "frame reuse {:.1} % at steady state: the pool is C2's idiomatic \
         manual storage management — buffers cycle dispatcher → worker → \
         recycle channel, (amortized) zero allocations per packet after \
         warm-up (asserted <0.05 allocs/pkt by router_bench's counting \
         allocator)",
        reuse * 100.0
    ));
    t.note(
        "the pool + adaptive dispatch (not the cache) are what moved the \
         end-to-end number: BENCH_router.json w1/b64 went 7.95M → 12.01M pps \
         against PR 3, and the 4-worker backwards scaling is gone",
    );
    t.note(
        "caches are per-worker (no shared state, C4 by construction) and \
         invalidated wholesale by the route table's generation counter — \
         correctness is the differential suite in crates/net/tests/\
         cache_properties.rs, not this table",
    );
    t
}
