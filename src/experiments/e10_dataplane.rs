//! E10 — The packet data plane: trie vs linear-scan LPM, one worker vs
//! sharded.
//!
//! The `sysnet` crate promotes the old `packet_router` example into a real
//! forwarding plane; this experiment measures the two structural decisions
//! that promotion made:
//!
//! * **lookup structure** — ns/lookup for the O(n) linear-scan reference vs
//!   the O(32) binary trie as the route table grows. The linear scan was
//!   fine at 4 routes; the trie must win by a ≥64-route table or the
//!   structure isn't paying for itself.
//! * **sharding** — end-to-end packets/sec and p50/p99 per-packet latency
//!   for the full parse → validate → route pipeline at 1 vs N workers
//!   hash-partitioning flows over bounded channels. On a single-core host
//!   extra CPU-bound workers cannot add throughput, so the table records
//!   the host's core count alongside the sweep.

use super::{fmt_ns, fmt_rate, Scale, Table};
use sysnet::bench::{lookup_comparison, run_sweep, SweepConfig};

const SEED: u64 = 0x5EED_0E10;

fn route_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 64],
        Scale::Full => vec![4, 64, 256],
    }
}

fn sweep_config(scale: Scale) -> SweepConfig {
    let mut cfg = match scale {
        Scale::Quick => SweepConfig::quick(),
        Scale::Full => SweepConfig::full(),
    };
    cfg.batch_sizes = vec![64]; // the batch sweep belongs to router_bench
    cfg
}

/// Runs E10 at the given scale.
#[must_use]
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10 — packet data plane: LPM structure and worker sharding",
        &[
            "config",
            "routes",
            "workers",
            "rate",
            "p50",
            "p99",
            "forwarded",
            "dropped",
        ],
    );

    let lookups = match scale {
        Scale::Quick => 100_000,
        Scale::Full => 2_000_000,
    };
    let mut speedup_64 = 0.0;
    for routes in route_sizes(scale) {
        let point = lookup_comparison(routes, lookups, SEED);
        if routes >= 64 {
            speedup_64 = point.speedup();
        }
        for (name, ns) in [
            ("lpm lookup: linear", point.linear_ns),
            ("lpm lookup: trie", point.trie_ns),
        ] {
            t.row(vec![
                name.into(),
                format!("{}", point.routes),
                "—".into(),
                fmt_rate(1e9 / ns.max(1e-9)),
                format!("{ns:.1} ns"),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
        }
    }

    let cfg = sweep_config(scale);
    let report = run_sweep(&cfg);
    for p in &report.sweep {
        t.row(vec![
            "pipeline stream".into(),
            format!("{}", cfg.routes),
            format!("{}", p.workers),
            fmt_rate(p.pps),
            fmt_ns(p.p50_ns),
            fmt_ns(p.p99_ns),
            format!("{}", p.forwarded),
            format!("{}", p.dropped),
        ]);
    }

    t.note(format!(
        "trie speedup over linear scan at the largest table: {speedup_64:.1}x \
         (O(32) vs O(n): the gap widens with every route added)"
    ));
    t.note(format!(
        "pipeline: {} packets per config, batch 64, zero-copy sysrepr views, \
         flows hash-partitioned across bounded sysconc channels",
        cfg.packets
    ));
    t.note(format!(
        "host exposes {} core(s): worker scaling is only visible with >1 core \
         (pinned-CI numbers stay flat by construction)",
        report.host_cores
    ));
    t
}
