//! E18 — scenario campaigns: availability, recovery, and replay under
//! composed fault + traffic + control-plane schedules.
//!
//! `sysscenario` composes the repo's three seeded mechanisms — `sysfault`
//! schedules, `FrameForge` traffic, and scripted route/backend churn — on
//! one virtual clock, and this experiment runs the shipped campaign:
//!
//! * **standard scenarios** — flash crowd, route-flap storm, cascading
//!   backend death with drain coordination, slowloris trickle, mixed
//!   attack/benign. Each row reports availability (delivered/offered over
//!   benign traffic), the worst and final tick goodput (recovery), outage
//!   ticks, and the campaign's triple-run replay verdict (plain run,
//!   replay, and traced run must agree on every digest);
//! * **pinned regressions** — one scenario per previously-fixed headline
//!   bug (TTL forwarding loop, no-op-insert cache nuke, premature epoch
//!   free, half-pair NAT insert, parser overread). A resurfaced bug fails
//!   its row's expectations and the campaign;
//! * **population fuzzing** — persistent byte-string populations mutated
//!   and selected for outcome-class novelty against the `sysrepr` total
//!   parsers and the BitC VM. The packet run must rediscover the seeded
//!   trusting-parser bug and shrink it; the note reports the budget it
//!   took.
//!
//! `examples/scenario_bench.rs` runs the same campaign and records
//! `BENCH_scenario.json`; this table is the EXPERIMENTS.md rendering.

use super::{Scale, Table};
use sysscenario::engine::CampaignEntry;
use sysscenario::fuzz::{run_fuzz, FuzzConfig, FuzzTarget};
use sysscenario::library;

fn row_of(t: &mut Table, kind: &str, e: &CampaignEntry) {
    let o = &e.outcome;
    t.row(vec![
        o.name.clone(),
        kind.to_string(),
        format!("{}", o.ticks),
        format!("{}", o.flows),
        format!("{:.1}%", 100.0 * o.availability()),
        format!("{:.2}", o.worst_tick_goodput),
        format!("{:.2}", o.final_tick_goodput),
        format!("{}", o.outage_ticks),
        format!("{}/{}", o.delivered, o.offered),
        format!("{}", o.peak_flows),
        format!("{}", e.postmortems),
        if e.replay_verified { "✓" } else { "✗" }.to_string(),
        if o.expectations_ok() { "✓" } else { "✗" }.to_string(),
    ]);
}

/// Runs E18 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let (standard, regressions) = match scale {
        Scale::Quick => (
            library::quick_scale(library::standard()),
            library::quick_scale(library::regressions()),
        ),
        Scale::Full => (library::standard(), library::regressions()),
    };
    let scenarios = sysscenario::run_campaign(&standard);
    let pinned = sysscenario::run_campaign(&regressions);
    let fuzz_iters = match scale {
        Scale::Quick => 3_000,
        Scale::Full => 30_000,
    };
    let fuzz: Vec<_> = [FuzzTarget::Packet, FuzzTarget::Dns, FuzzTarget::Bitc]
        .into_iter()
        .map(|target| {
            run_fuzz(&FuzzConfig {
                iterations: fuzz_iters,
                ..FuzzConfig::quick(target)
            })
        })
        .collect();

    let mut t = Table::new(
        "E18 — scenario campaigns: availability, recovery, replay",
        &[
            "scenario",
            "kind",
            "ticks",
            "flows",
            "avail",
            "worst tick",
            "final tick",
            "outage",
            "delivered",
            "peak flows",
            "pm",
            "replay",
            "expect",
        ],
    );
    for e in &scenarios {
        row_of(&mut t, "standard", e);
    }
    for e in &pinned {
        row_of(&mut t, "regression", e);
    }

    let all = || scenarios.iter().chain(&pinned);
    t.note(format!(
        "replay: every row ran three times (plain, replay, traced) from its single u64 seed; \
         'replay ✓' means all three agreed on the outcome digest — {} of {} rows verified, and \
         traced runs also matched on the trace-shape digest.",
        all().filter(|e| e.replay_verified).count(),
        all().count(),
    ));
    t.note(format!(
        "expectations: {} of {} rows met their declared oracles (availability floors, drop-class \
         counts, audit cleanliness); a pinned regression that fails here means a fixed headline \
         bug resurfaced.",
        all().filter(|e| e.outcome.expectations_ok()).count(),
        all().count(),
    ));
    for f in &fuzz {
        let shrunk = f.crashes.first().map_or_else(String::new, |c| {
            format!(", shrunk to {} bytes", c.minimized.len())
        });
        t.note(format!(
            "fuzz[{}]: {} iterations / {} executions, population {}, {} distinct outcome \
             classes, {} crash class(es){}{}.",
            f.target.name(),
            f.iterations,
            f.executions,
            f.population,
            f.distinct_features,
            f.crashes.len(),
            shrunk,
            if f.seeded_bug_found {
                "; rediscovered the seeded trusting-parser overread"
            } else {
                ""
            },
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_renders_the_campaign_and_finds_the_seeded_bug() {
        let t = run(Scale::Quick);
        // Five standard scenarios plus five pinned regressions.
        assert_eq!(t.rows.len(), 10);
        assert!(t.rows.iter().all(|r| r[11] == "✓"), "a replay failed");
        assert!(t.rows.iter().all(|r| r[12] == "✓"), "an oracle failed");
        assert!(t
            .notes
            .iter()
            .any(|n| n.contains("rediscovered the seeded trusting-parser overread")));
    }
}
