//! E13 — deterministic concurrency checking: the `syscheck` model checker
//! turned on the repo's own concurrency bugs.
//!
//! The paper's Challenge 4 is shared state: C gives systems programmers
//! raw atomics and no way to know their interleavings are right, and the
//! conventional answer — stress tests with real threads — is a coin flip
//! that cannot reproduce what it finds. PR 5's answer is a loom-style
//! cooperative checker: every atomic, lock, condvar, and spawn in
//! `sysconc` routes through `syscheck::shim`, a scheduler enumerates
//! interleavings (bounded-exhaustive DFS with a preemption bound, or
//! seeded random for big state spaces), every failure replays from a
//! `u64` seed, and `sysfault`'s shrinker reduces the failing schedule to
//! its essential preemptions.
//!
//! This table runs five models: three that must come out clean (spinlock
//! mutual exclusion, coarse-bank audit conservation, channel rendezvous)
//! and two with known bugs the checker must *find deterministically* —
//! the `BrokenComposedBank` audit anomaly (money vanishes mid-transfer)
//! and a `BrokenSignal` lost wakeup (naked condvar wait without re-check).
//! Both known bugs must surface in well under the 10k-schedule budget, in
//! both DFS and seeded-random modes, and shrink to ≤ 2 preemptions.

use super::{Scale, Table};
use std::sync::Arc;
use syscheck::{explore, explore_random, shrink, Config};
use sysconc::bank::{Bank, BrokenComposedBank, CoarseLockBank};
use sysconc::channel::{channel, BrokenSignal};
use sysconc::spinlock::SpinLock;

/// Two threads increment under the spinlock; mutual exclusion means no
/// schedule loses an update.
fn spinlock_model() -> u64 {
    let lock = Arc::new(SpinLock::new(0u64));
    let l = Arc::clone(&lock);
    let t = syscheck::shim::spawn(move || {
        *l.lock() += 1;
    });
    *lock.lock() += 1;
    t.join().unwrap();
    let v = *lock.lock();
    assert_eq!(v, 2, "spinlock lost an update");
    v
}

/// A transfer races an audit on the coarse-lock bank; one lock covers all
/// accounts, so the audit can never observe money in flight.
fn coarse_bank_model() -> u64 {
    let bank = Arc::new(CoarseLockBank::new(2, 100));
    let b = Arc::clone(&bank);
    let t = syscheck::shim::spawn(move || {
        b.transfer(0, 1, 30);
    });
    let seen = bank.audit();
    assert_eq!(seen, 200, "audit saw vanished money");
    t.join().unwrap();
    u64::try_from(bank.audit()).unwrap_or(0)
}

/// One rendezvous over the unbounded channel: the receiver must always get
/// the value, whichever side runs first.
fn channel_model() -> u64 {
    let (tx, rx) = channel::<u64>();
    let t = syscheck::shim::spawn(move || {
        tx.send(7).unwrap();
    });
    let v = rx.recv().unwrap();
    t.join().unwrap();
    assert_eq!(v, 7);
    v
}

/// The known-buggy composed bank: debit and credit are individually locked
/// but not jointly, so an audit between them sees the total dip — the
/// checker must find the interleaving that stress tests only sometimes hit.
fn broken_bank_model() -> u64 {
    let bank = Arc::new(BrokenComposedBank::new(2, 100));
    let b = Arc::clone(&bank);
    let t = syscheck::shim::spawn(move || {
        b.transfer(0, 1, 30);
    });
    let seen = bank.audit();
    assert_eq!(seen, 200, "audit saw vanished money");
    t.join().unwrap();
    u64::try_from(bank.audit()).unwrap_or(0)
}

/// The known lost wakeup: `BrokenSignal::wait` samples the flag, drops the
/// lock, then re-locks and waits with no re-check — a notify in the window
/// is lost and the waiter deadlocks.
fn lost_wakeup_model() -> u64 {
    let sig = Arc::new(BrokenSignal::new());
    let s = Arc::clone(&sig);
    let t = syscheck::shim::spawn(move || s.notify());
    sig.wait();
    t.join().unwrap();
    1
}

fn clean_row(t: &mut Table, name: &str, cfg: &Config, model: fn() -> u64) {
    let ex = explore(cfg, model);
    assert!(
        ex.failure.is_none(),
        "{name} must verify clean: {:?}",
        ex.failure
    );
    t.row(vec![
        name.into(),
        "dfs".into(),
        ex.schedules.to_string(),
        ex.distinct_states.to_string(),
        if ex.complete {
            "clean (exhaustive)".into()
        } else {
            "clean (budget)".into()
        },
        "—".into(),
        "0".into(),
    ]);
}

fn bug_rows(t: &mut Table, name: &str, cfg: &Config, base_seed: u64, model: fn() -> u64) {
    let dfs = explore(cfg, model);
    let failure = dfs.failure.as_ref().expect("DFS must find the seeded bug");
    let minimal = shrink::shrink_failure(cfg, failure, model);
    t.row(vec![
        name.into(),
        "dfs".into(),
        dfs.schedules.to_string(),
        dfs.distinct_states.to_string(),
        format!("found ({})", failure.kind),
        "—".into(),
        minimal.deviations.len().to_string(),
    ]);

    let rnd = explore_random(cfg, base_seed, model);
    let failure = rnd
        .failure
        .as_ref()
        .expect("random schedules must find the seeded bug");
    let minimal = shrink::shrink_failure(cfg, failure, model);
    t.row(vec![
        name.into(),
        "random".into(),
        rnd.schedules.to_string(),
        rnd.distinct_states.to_string(),
        format!("found ({})", failure.kind),
        failure
            .seed
            .map_or_else(|| "—".into(), |s| format!("{s:#x}")),
        minimal.deviations.len().to_string(),
    ]);
}

/// Runs E13 at the given scale.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let budget = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let cfg = Config {
        max_schedules: budget,
        ..Config::default()
    };
    let mut t = Table::new(
        "E13 — deterministic concurrency checking (syscheck)",
        &[
            "model",
            "mode",
            "schedules",
            "states",
            "outcome",
            "seed",
            "min preempts",
        ],
    );

    clean_row(&mut t, "spinlock mutex", &cfg, spinlock_model);
    clean_row(&mut t, "coarse-bank audit", &cfg, coarse_bank_model);
    clean_row(&mut t, "channel rendezvous", &cfg, channel_model);
    bug_rows(
        &mut t,
        "broken-bank anomaly",
        &cfg,
        0xE13_0001,
        broken_bank_model,
    );
    bug_rows(&mut t, "lost wakeup", &cfg, 0xE13_0002, lost_wakeup_model);

    t.note(format!(
        "every shim operation is a scheduling decision point; dfs explores \
         bounded-exhaustively (preemption bound {}, budget {budget} \
         schedules), random draws seeded schedules — both rediscover the \
         seeded bugs deterministically, every run",
        cfg.preemption_bound
    ));
    t.note(
        "states = distinct terminal digests: the clean models' count is the \
         real nondeterminism of the model (1 = every interleaving agrees); \
         a found row stops at its first failing schedule",
    );
    t.note(
        "seed replays the exact failing schedule (syscheck::replay_seed); \
         min preempts is the schedule shrunk through sysfault's minimizer \
         to the fewest forced preemptions that still fail — both bugs are \
         one-to-two-preemption bugs, which is why stress tests miss them",
    );
    t.note(
        "exploration is sequential-consistency only (shim atomics map to \
         SeqCst); weak-memory reorderings are out of scope, as in loom's \
         default mode",
    );
    t
}
