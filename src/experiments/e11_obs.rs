//! E11 — What observability costs: the sysobs overhead budget, measured.
//!
//! The paper's systems programmers reject instrumented runtimes because the
//! instrumentation is always-on and its cost is asserted, not measured.
//! `sysobs` makes the opposite bet: per-site mode checks cheap enough to
//! leave compiled into the hot paths, with the cost of every mode *measured*
//! against a genuinely uninstrumented compiled baseline. This experiment is
//! that measurement, on the two hottest paths in the repo:
//!
//! * **router stream** (the E10 workload): packets/sec through the sharded
//!   router with (a) instrumentation compiled out (`instrument: false` —
//!   the monomorphized baseline), (b) compiled in but disabled (one relaxed
//!   atomic load per site), (c) counters only, (d) full flight-recorder
//!   tracing;
//! * **IPC ping-pong** (the E6 workload): wall ns per round trip under the
//!   three runtime modes (the kernel keeps its instrumentation compiled in;
//!   `disabled` is its reference point).
//!
//! The measurement is drift-proofed for small hosts: every *round*
//! measures all configurations back to back, and each configuration
//! reports its **median across rounds** — a paired design, so slow drift
//! in host throughput (thermal, co-tenants) hits every arm alike instead
//! of masquerading as instrumentation cost, and the median discards the
//! scheduler hiccups that corrupt a best-of estimator one arm at a time.
//! The budget this experiment enforces (see `ci` and the obs_bench
//! example): disabled ≤ 5% below the uninstrumented baseline on the router
//! workload, counters ≤ 15%.

use super::{fmt_ns, fmt_rate, Scale, Table};
use microkernel::kernel::Kernel;
use microkernel::rights::Rights;
use std::fmt::Write as _;
use std::time::Instant;
use sysmem::freelist::FreeListHeap;
use sysnet::bench::{build_tables, frame_stream, SweepConfig, PORTS};
use sysnet::router::{run_stream, RouterConfig};
use sysobs::Mode;

/// One router configuration's measurement.
#[derive(Debug, Clone)]
pub struct RouterPoint {
    /// Configuration label (`uninstrumented`, `disabled`, `counters`,
    /// `sampled`, `tracing`).
    pub mode: &'static str,
    /// Median-across-rounds packets per second.
    pub pps: f64,
    /// p50 per-packet latency (ns) from the median round.
    pub p50_ns: u64,
    /// p99 per-packet latency (ns) from the median round.
    pub p99_ns: u64,
    /// Throughput overhead vs the uninstrumented baseline, in percent
    /// (positive = slower than baseline; 0 for the baseline itself).
    pub overhead_pct: f64,
}

/// One IPC configuration's measurement.
#[derive(Debug, Clone)]
pub struct IpcPoint {
    /// Mode label (`disabled`, `counters`, `sampled`, `tracing`).
    pub mode: &'static str,
    /// Median-across-rounds wall nanoseconds per round trip.
    pub ns_per_rt: u64,
    /// Overhead vs the `disabled` mode, in percent.
    pub overhead_pct: f64,
}

/// The full E11 record, rendered to `BENCH_obs.json` by the `obs_bench`
/// example.
#[derive(Debug, Clone)]
pub struct ObsBenchReport {
    /// Cores the host exposes (single-core CI flattens worker scaling).
    pub host_cores: usize,
    /// Packets per router repetition.
    pub packets: usize,
    /// IPC round trips per repetition.
    pub rounds: usize,
    /// Measurement rounds (each round runs every configuration once;
    /// points report the median across rounds).
    pub reps: usize,
    /// Router workload, one point per configuration.
    pub router: Vec<RouterPoint>,
    /// IPC workload, one point per mode.
    pub ipc: Vec<IpcPoint>,
}

impl ObsBenchReport {
    /// The router point for `mode`, if measured.
    #[must_use]
    pub fn router_point(&self, mode: &str) -> Option<&RouterPoint> {
        self.router.iter().find(|p| p.mode == mode)
    }

    /// The IPC point for `mode`, if measured.
    #[must_use]
    pub fn ipc_point(&self, mode: &str) -> Option<&IpcPoint> {
        self.ipc.iter().find(|p| p.mode == mode)
    }

    /// Renders the report as the `BENCH_obs.json` record (hand-rolled: the
    /// container has no serde, and the schema is flat).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"bench\": \"obs\",");
        let _ = writeln!(s, "  \"schema\": 2,");
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(s, "  \"router_packets\": {},", self.packets);
        let _ = writeln!(s, "  \"ipc_rounds\": {},", self.rounds);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"router\": [");
        for (i, p) in self.router.iter().enumerate() {
            let comma = if i + 1 == self.router.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"mode\": \"{}\", \"pps\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"overhead_pct\": {:.2}}}{comma}",
                p.mode, p.pps, p.p50_ns, p.p99_ns, p.overhead_pct
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"ipc\": [");
        for (i, p) in self.ipc.iter().enumerate() {
            let comma = if i + 1 == self.ipc.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"mode\": \"{}\", \"ns_per_rt\": {}, \"overhead_pct\": {:.2}}}{comma}",
                p.mode, p.ns_per_rt, p.overhead_pct
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn sweep_config(scale: Scale) -> SweepConfig {
    let mut cfg = match scale {
        Scale::Quick => SweepConfig::quick(),
        Scale::Full => SweepConfig::full(),
    };
    // One fixed shape: the E10 sweep already covers workers × batch; E11
    // varies only the observability configuration.
    cfg.worker_counts = vec![2];
    cfg.batch_sizes = vec![64];
    if matches!(scale, Scale::Full) {
        // Longer passes: the budget referees single-digit percentages, and
        // scheduler noise shrinks with pass length.
        cfg.packets *= 2;
    }
    cfg
}

fn reps(scale: Scale) -> usize {
    // A full pass is tens of milliseconds, so best-of can afford a wide
    // net: on a small host the scheduler perturbs individual passes by
    // >10%, and the budget assertions referee single-digit claims.
    match scale {
        Scale::Quick => 2,
        Scale::Full => 25,
    }
}

fn ipc_rounds(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 20_000,
    }
}

/// Runs the router stream once and returns (pps, p50, p99).
fn router_once(cfg: &SweepConfig, frames: &[Vec<u8>], instrument: bool) -> (f64, u64, u64) {
    let (trie, _) = build_tables(cfg.routes);
    let rc = RouterConfig {
        workers: 2,
        batch_size: 64,
        queue_depth: cfg.queue_depth,
        instrument,
        ..RouterConfig::default()
    };
    let (report, elapsed) = run_stream(trie, PORTS, rc, frames);
    let secs = elapsed.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let pps = report.packets() as f64 / secs;
    (pps, report.latency_ns(0.50), report.latency_ns(0.99))
}

/// One round's arm setup: mode on, sampler shifts at their defaults, rings
/// cleared so tracing rounds are comparable.
fn arm(mode: Mode) {
    sysobs::set_mode(mode);
    sysobs::sampler::sampler().reset_sites(); // no shift carry-over between arms
    sysobs::clear();
}

/// Mean wall-ns per IPC round trip over one pass of `rounds` ping-pongs.
fn ipc_once(rounds: usize) -> u64 {
    let mut k = Kernel::new(Box::new(FreeListHeap::new(1 << 20)));
    let server = k.spawn_process();
    let client = k.spawn_process();
    let req_s = k.create_endpoint(server).unwrap();
    let req_c = k.grant_cap(server, req_s, client, Rights::SEND).unwrap();
    let rep_s = k.create_endpoint(server).unwrap();
    let rep_c = k.grant_cap(server, rep_s, client, Rights::RECV).unwrap();
    let t0 = Instant::now();
    for _ in 0..rounds {
        k.ping_pong(client, server, (req_s, req_c), (rep_s, rep_c), 16)
            .expect("round trip");
    }
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / rounds.max(1) as u64
}

/// The sample whose `pps` is the median of the set (rounds are odd, so
/// this is the true middle element).
fn median_by_pps(samples: &mut [(f64, u64, u64)]) -> (f64, u64, u64) {
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    samples[samples.len() / 2]
}

fn median_u64(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn overhead_pct(baseline: f64, value: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (baseline - value) / baseline * 100.0
}

/// Measures every configuration and returns the raw report (also consumed
/// by the `obs_bench` example for `BENCH_obs.json`).
#[must_use]
pub fn measure(scale: Scale) -> ObsBenchReport {
    let cfg = sweep_config(scale);
    let frames = frame_stream(&cfg);
    let n = reps(scale);
    let rounds = ipc_rounds(scale);

    // Warmup: a cold first pass (page cache, allocator pools, branch
    // predictors) would deflate whichever arm runs first. One throwaway
    // pass of each workload before any timed round.
    arm(Mode::Disabled);
    let _ = router_once(&cfg, &frames, false);
    let _ = ipc_once(rounds.min(2_000));

    let configs: [(&'static str, bool, Mode); 5] = [
        ("uninstrumented", false, Mode::Disabled),
        ("disabled", true, Mode::Disabled),
        ("counters", true, Mode::Counters),
        ("sampled", true, Mode::Sampled),
        ("tracing", true, Mode::Tracing),
    ];
    let modes: [(&'static str, Mode); 4] = [
        ("disabled", Mode::Disabled),
        ("counters", Mode::Counters),
        ("sampled", Mode::Sampled),
        ("tracing", Mode::Tracing),
    ];

    // Paired rounds: every round measures all arms back to back, so host
    // drift between rounds cancels out of the cross-arm ratios.
    let rounds_n = n | 1; // odd, for a true median
    let mut router_samples: Vec<Vec<(f64, u64, u64)>> = vec![Vec::new(); configs.len()];
    let mut ipc_samples: Vec<Vec<u64>> = vec![Vec::new(); modes.len()];
    for _ in 0..rounds_n {
        for (i, (_, instrument, mode)) in configs.iter().enumerate() {
            arm(*mode);
            router_samples[i].push(router_once(&cfg, &frames, *instrument));
        }
        for (i, (_, mode)) in modes.iter().enumerate() {
            arm(*mode);
            ipc_samples[i].push(ipc_once(rounds));
        }
    }
    sysobs::set_mode(Mode::Disabled);
    sysobs::clear();

    let mut router = Vec::new();
    let mut baseline_pps = 0.0f64;
    for (i, (name, _, _)) in configs.iter().enumerate() {
        let (pps, p50, p99) = median_by_pps(&mut router_samples[i]);
        if *name == "uninstrumented" {
            baseline_pps = pps;
        }
        router.push(RouterPoint {
            mode: name,
            pps,
            p50_ns: p50,
            p99_ns: p99,
            overhead_pct: overhead_pct(baseline_pps, pps),
        });
    }

    let mut ipc = Vec::new();
    let mut baseline_ns = 0u64;
    for (i, (name, _)) in modes.iter().enumerate() {
        let ns = median_u64(&mut ipc_samples[i]);
        if *name == "disabled" {
            baseline_ns = ns;
        }
        #[allow(clippy::cast_precision_loss)]
        let pct = if baseline_ns == 0 {
            0.0
        } else {
            (ns as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
        };
        ipc.push(IpcPoint {
            mode: name,
            ns_per_rt: ns,
            overhead_pct: pct,
        });
    }

    ObsBenchReport {
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        packets: cfg.packets,
        rounds,
        reps: rounds_n,
        router,
        ipc,
    }
}

/// Runs E11 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let report = measure(scale);
    let mut t = Table::new(
        "E11 — observability overhead: flight recorder and metrics, measured",
        &[
            "workload",
            "config",
            "rate / latency",
            "p50",
            "p99",
            "overhead",
        ],
    );
    for p in &report.router {
        t.row(vec![
            "router stream".into(),
            p.mode.into(),
            fmt_rate(p.pps),
            fmt_ns(p.p50_ns),
            fmt_ns(p.p99_ns),
            format!("{:+.1}%", p.overhead_pct),
        ]);
    }
    for p in &report.ipc {
        t.row(vec![
            "ipc ping-pong".into(),
            p.mode.into(),
            format!("{}/RT", fmt_ns(p.ns_per_rt)),
            "—".into(),
            "—".into(),
            format!("{:+.1}%", p.overhead_pct),
        ]);
    }
    t.note(format!(
        "router: {} packets, 2 workers × batch 64, median of {} paired rounds; \
         `uninstrumented` is a monomorphized compiled-out baseline, the other four \
         flip the global sysobs mode at runtime",
        report.packets, report.reps
    ));
    t.note(format!(
        "ipc: {} round trips of 16-word messages, median of {} paired rounds, freelist \
         heap; kernel instrumentation stays compiled in, so `disabled` is its reference",
        report.rounds, report.reps
    ));
    t.note(format!(
        "budget (enforced by obs_bench on the full run): disabled ≤5%, counters ≤15%, and \
         adaptive-sampled ≤5% below uninstrumented on the router workload; sampled ≤15% and \
         tracing ≤120% over disabled on the IPC round trip; host exposes {} core(s)",
        report.host_cores
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_measures_all_configurations() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 9, "5 router configs + 4 ipc modes");
        assert_eq!(
            sysobs::mode(),
            Mode::Disabled,
            "experiment restores the mode"
        );
    }

    #[test]
    fn e11_report_json_is_well_formed() {
        let r = measure(Scale::Quick);
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for mode in [
            "uninstrumented",
            "disabled",
            "counters",
            "sampled",
            "tracing",
        ] {
            assert!(json.contains(mode), "{json}");
        }
        assert!(r.router_point("tracing").is_some());
        assert!(
            r.router.iter().all(|p| p.pps > 0.0),
            "every config routed packets"
        );
        assert!(
            r.ipc.iter().all(|p| p.ns_per_rt > 0),
            "every mode completed round trips"
        );
    }
}
