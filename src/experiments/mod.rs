//! The experiment harness: one module per table in EXPERIMENTS.md.
//!
//! The paper (a position paper) publishes no tables; these experiments
//! are the measurements its claims imply, as indexed in DESIGN.md. Each
//! `run(scale)` returns a rendered table; `cargo run --release --example
//! experiments -- <e1..e13|all>` prints them, and `crates/bench` holds the
//! Criterion versions for statistically careful timing.

pub mod e10_dataplane;
pub mod e11_obs;
pub mod e12_cache;
pub mod e13_check;
pub mod e14_conntrack;
pub mod e15_churn;
pub mod e16_postmortem;
pub mod e17_lb;
pub mod e18_scenario;
pub mod e1_alloc;
pub mod e2_boxing;
pub mod e3_optimizer;
pub mod e4_ffi;
pub mod e5_verify;
pub mod e6_ipc;
pub mod e7_shared_state;
pub mod e8_repr;
pub mod e9_faults;

use std::fmt;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for tests and CI (seconds).
    Quick,
    /// Paper-scale sizes for EXPERIMENTS.md (minutes).
    Full,
}

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "E1 — allocator throughput and pauses").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:<width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "> {n}")?;
        }
        Ok(())
    }
}

/// Formats nanoseconds compactly.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Formats a rate (per second) compactly.
#[must_use]
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} /s")
    }
}

/// Runs every experiment at the given scale, returning rendered tables.
#[must_use]
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_alloc::run(scale),
        e2_boxing::run(scale),
        e3_optimizer::run(scale),
        e4_ffi::run(scale),
        e5_verify::run(scale),
        e6_ipc::run(scale),
        e7_shared_state::run(scale),
        e8_repr::run(scale),
        e9_faults::run(scale),
        e9_faults::run_net(scale),
        e10_dataplane::run(scale),
        e11_obs::run(scale),
        e12_cache::run(scale),
        e13_check::run(scale),
        e14_conntrack::run(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| longer | 22    |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn formatters_pick_sane_units() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(50_000), "50.0 µs");
        assert_eq!(fmt_ns(50_000_000), "50.0 ms");
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M/s");
        assert_eq!(fmt_rate(2_500.0), "2.5 K/s");
        assert_eq!(fmt_rate(25.0), "25 /s");
    }
}
