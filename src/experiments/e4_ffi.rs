//! E4 — The legacy boundary (Fallacy 4).
//!
//! "The legacy problem is insurmountable" is the excuse the paper rejects:
//! if calls across the new-language/legacy boundary are cheap, systems can
//! be rewritten one component at a time. This experiment measures the cost
//! of a call under every arrangement: work done natively, work called
//! across the VM→native boundary, and work done in-language, for both value
//! representations.

use super::{fmt_ns, Scale, Table};
use bitc_core::compile::compile_program_with_natives;
use bitc_core::ffi::NativeRegistry;
use bitc_core::parser::parse_program;
use bitc_core::vm::{Boxed, Rep, Unboxed, Vm};
use std::time::Instant;

fn calls(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 10_000,
        Scale::Full => 1_000_000,
    }
}

/// A VM loop that performs `n` calls to `callee`, which is either a native
/// (`host-add`) or an in-language function (`vm-add`).
fn call_loop_src(n: u64, callee: &str) -> String {
    format!(
        "(define vm-add (lambda (a b) (+ a b)))
         (let ((i 0) (acc 0))
           (begin
             (while (< i {n})
               (set! acc ({callee} acc 1))
               (set! i (+ i 1)))
             acc))"
    )
}

fn run_vm<R: Rep>(src: &str, reg: &NativeRegistry) -> (u64, i64) {
    let p = parse_program(src).expect("parses");
    let sigs = reg.signatures();
    let sigs_ref: Vec<(&str, usize)> = sigs.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    let bc = compile_program_with_natives(&p, &sigs_ref).expect("compiles");
    let mut vm = Vm::<R>::new(&bc, reg).expect("vm");
    let t0 = Instant::now();
    let r = vm.run_int().expect("runs");
    (
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        r,
    )
}

/// Runs E4 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let n = calls(scale);
    let reg = NativeRegistry::with_defaults();
    let mut t = Table::new(
        "E4 — call cost across the legacy (FFI) boundary",
        &["configuration", "total", "per call", "result"],
    );
    // Pure native baseline: the same accumulate loop in Rust.
    let t0 = Instant::now();
    let mut acc: i64 = 0;
    for _ in 0..n {
        acc = std::hint::black_box(acc.wrapping_add(1));
    }
    let native_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    t.row(vec![
        "native loop (no boundary)".into(),
        fmt_ns(native_ns),
        fmt_ns(native_ns / n.max(1)),
        acc.to_string(),
    ]);

    for (label, callee) in [
        ("VM→VM call", "vm-add"),
        ("VM→native call (FFI)", "host-add"),
    ] {
        let src = call_loop_src(n, callee);
        let (u_ns, u_r) = run_vm::<Unboxed>(&src, &reg);
        t.row(vec![
            format!("unboxed, {label}"),
            fmt_ns(u_ns),
            fmt_ns(u_ns / n.max(1)),
            u_r.to_string(),
        ]);
        let (b_ns, b_r) = run_vm::<Boxed>(&src, &reg);
        t.row(vec![
            format!("boxed, {label}"),
            fmt_ns(b_ns),
            fmt_ns(b_ns / n.max(1)),
            b_r.to_string(),
        ]);
    }
    // Chunky native work called once vs computed in-language: amortization.
    let big = i64::try_from(n).expect("fits");
    let src_native = format!("(host-sum-to {big})");
    let (one_call_ns, one_r) = run_vm::<Unboxed>(&src_native, &reg);
    t.row(vec![
        "one native call doing all the work".into(),
        fmt_ns(one_call_ns),
        fmt_ns(one_call_ns),
        one_r.to_string(),
    ]);
    t.note("paper claim (inverted fallacy): the boundary tax is a constant tens-of-ns per crossing — small enough that component-at-a-time migration is viable, and amortizable by batching.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_produces_consistent_results() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        // The three accumulate loops must agree on the final value.
        assert_eq!(t.rows[0][3], t.rows[1][3]);
        assert_eq!(t.rows[1][3], t.rows[3][3]);
    }
}
