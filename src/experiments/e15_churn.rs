//! E15 — lock-free route updates: copy-on-write epoch publication vs the
//! locked generation-clear baseline, under live route-flap churn.
//!
//! The paper's Challenge 4 case study, round two. PR 7 left route tables
//! frozen at router start; real control planes flap routes constantly, and
//! the obvious fix — one mutex over the trie, locked by every worker for
//! every batch — is exactly the "lock the world" answer Shapiro's systems
//! programmers reject. The epoch answer (`sysmem::epoch` + the COW trie in
//! `sysnet::cowtrie`) lets writers clone an O(depth) spine and swap one
//! atomic root pointer while readers pay zero synchronization per lookup.
//!
//! Three sections in one table:
//!
//! * **churn** — the A/B arm: the full synthetic stream forwarded while an
//!   updater thread flaps a route at a target rate, for both
//!   [`sysnet::router::RouteMode`]s. The flapped prefix is outside every
//!   measured flow, so the streams are identical — only the publication
//!   cost differs. Invalidation misses (the split counter from this PR's
//!   bugfix) show each publication's cache-nuke cost explicitly.
//! * **visibility** — publish → first-observation latency: a fresh epoch
//!   pin against the COW root vs a lock round-trip on the mutex table.
//! * **models** — the reclamation protocol under `syscheck`: the safe
//!   three-epoch domain verifies exhaustively at preemption bound 2, the
//!   seeded off-by-one (`Domain::new_with_premature_reclaim_bug`) is
//!   rediscovered and shrunk, and COW publication is proven visible to the
//!   next pinned read. The same models run as tier-1 tests in
//!   `crates/mem/tests/epoch_model.rs` and `crates/net/tests/cowtrie_model.rs`.

use super::{fmt_ns, fmt_rate, Scale, Table};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use syscheck::shim::{AtomicBool, AtomicUsize};
use syscheck::{explore, shrink, Config};
use sysmem::epoch::Domain;
use sysnet::bench::{run_churn_sweep, update_visibility, SweepConfig, FLAP_LEN, FLAP_PREFIX};
use sysnet::{CowRouteTable, Routes as _};

/// One reader races one writer over a two-slot canary "structure"; the
/// collect sink "frees" by clearing a shim-atomic alive flag, so a
/// premature reclamation shows up as an assertion instead of real UB.
/// Same model as `crates/mem/tests/epoch_model.rs`.
fn reclaim_model(domain: &Arc<Domain<usize>>) -> u64 {
    let alive = Arc::new([AtomicBool::new(true), AtomicBool::new(true)]);
    let current = Arc::new(AtomicUsize::new(0));
    let handle = domain.register();

    let (a, c) = (Arc::clone(&alive), Arc::clone(&current));
    let reader = syscheck::shim::spawn(move || {
        let guard = handle.pin();
        let i = c.load(Ordering::SeqCst);
        assert!(
            a[i].load(Ordering::SeqCst),
            "pinned reader dereferenced a reclaimed canary (slot {i})"
        );
        drop(guard);
    });

    let unlinked = current.swap(1, Ordering::SeqCst);
    domain.retire(unlinked);
    let mut freed = domain.collect(|i| alive[i].store(false, Ordering::SeqCst));
    reader.join().unwrap();
    for _ in 0..2 {
        freed += domain.collect(|i| alive[i].store(false, Ordering::SeqCst));
    }
    assert_eq!(freed, 1, "exactly the unlinked canary is reclaimed");
    u64::from(alive[0].load(Ordering::SeqCst)) << 1 | u64::from(alive[1].load(Ordering::SeqCst))
}

fn safe_epoch_model() -> u64 {
    reclaim_model(&Arc::new(Domain::new()))
}

fn premature_epoch_model() -> u64 {
    reclaim_model(&Arc::new(Domain::new_with_premature_reclaim_bug()))
}

/// A published COW update must be visible to the next pinned read: the
/// writer publishes then raises a shim flag; a reader that observes the
/// flag and pins afterwards must see the new hop.
fn cow_visibility_model() -> u64 {
    let table: Arc<CowRouteTable<u16>> = Arc::new(CowRouteTable::new());
    table.insert(FLAP_PREFIX, FLAP_LEN, 1).unwrap();
    let reader = table.reader();
    let published = Arc::new(AtomicBool::new(false));

    let (t, p) = (Arc::clone(&table), Arc::clone(&published));
    let writer = syscheck::shim::spawn(move || {
        t.insert(FLAP_PREFIX, FLAP_LEN, 2).unwrap();
        p.store(true, Ordering::SeqCst);
    });

    let saw = published.load(Ordering::SeqCst);
    let view = reader.pin();
    let hop = view.lookup(FLAP_PREFIX | 1);
    if saw {
        assert_eq!(hop, Some(2), "published update invisible to a later pin");
    }
    drop(view);
    writer.join().unwrap();
    u64::from(saw) << 8 | u64::from(hop.unwrap_or(0))
}

fn clean_model_row(t: &mut Table, name: &str, cfg: &Config, model: fn() -> u64) {
    let ex = explore(cfg, model);
    assert!(
        ex.failure.is_none(),
        "{name} must verify clean: {:?}",
        ex.failure
    );
    t.row(vec![
        format!("model: {name}"),
        "dfs".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        ex.schedules.to_string(),
        if ex.complete {
            "clean (exhaustive)".into()
        } else {
            "clean (budget)".into()
        },
    ]);
}

fn bug_model_row(t: &mut Table, name: &str, cfg: &Config, model: fn() -> u64) {
    let ex = explore(cfg, model);
    let failure = ex.failure.as_ref().expect("DFS must find the seeded bug");
    let minimal = shrink::shrink_failure(cfg, failure, model);
    t.row(vec![
        format!("model: {name}"),
        "dfs".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        ex.schedules.to_string(),
        format!(
            "found ({}), {} preempt repro",
            failure.kind,
            minimal.deviations.len()
        ),
    ]);
}

/// Runs E15 at the given scale.
///
/// # Panics
///
/// Panics if a clean model fails, the seeded bug goes unfound, or the
/// churn sweep returns no zero-churn baseline.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let cfg = match scale {
        Scale::Quick => SweepConfig {
            packets: 20_000,
            worker_counts: vec![2, 4],
            churn_rates: vec![0, 10_000],
            visibility_samples: 64,
            ..SweepConfig::quick()
        },
        Scale::Full => SweepConfig {
            churn_rates: vec![0, 100, 1_000, 10_000],
            visibility_samples: 512,
            ..SweepConfig::full()
        },
    };

    let mut t = Table::new(
        "E15 — route-flap churn: cow-epoch vs locked generation-clear",
        &[
            "case",
            "mode",
            "updates/s",
            "applied",
            "throughput",
            "inval misses",
            "p50 / p99",
            "outcome",
        ],
    );

    let points = run_churn_sweep(&cfg);
    let baseline = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode_name() == mode && p.target_updates_per_sec == 0)
            .map(|p| p.pps)
    };
    for p in &points {
        let vs_zero = baseline(p.mode_name()).map_or_else(
            || "—".into(),
            |b| format!("{:.0} % of zero-churn", 100.0 * p.pps / b.max(1.0)),
        );
        t.row(vec![
            "churn".into(),
            p.mode_name().into(),
            p.target_updates_per_sec.to_string(),
            p.updates_applied.to_string(),
            fmt_rate(p.pps),
            p.invalidation_misses.to_string(),
            format!("{} / {}", fmt_ns(p.p50_ns), fmt_ns(p.p99_ns)),
            vs_zero,
        ]);
    }

    if let Some(v) = update_visibility(cfg.visibility_samples) {
        t.row(vec![
            "visibility".into(),
            "cow-epoch".into(),
            "—".into(),
            v.samples.to_string(),
            "—".into(),
            "—".into(),
            format!("{} / {}", fmt_ns(v.cow_p50_ns), fmt_ns(v.cow_p99_ns)),
            "publish → fresh pin".into(),
        ]);
        t.row(vec![
            "visibility".into(),
            "locked-gen-clear".into(),
            "—".into(),
            v.samples.to_string(),
            "—".into(),
            "—".into(),
            format!("{} / {}", fmt_ns(v.locked_p50_ns), fmt_ns(v.locked_p99_ns)),
            "publish → lock round-trip".into(),
        ]);
    }

    let check = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    clean_model_row(&mut t, "epoch 3-epoch reclaim", &check, safe_epoch_model);
    bug_model_row(
        &mut t,
        "epoch off-by-one free",
        &check,
        premature_epoch_model,
    );
    clean_model_row(
        &mut t,
        "cow publish visibility",
        &check,
        cow_visibility_model,
    );

    t.note(
        "churn: the full stream forwarded while an updater thread flaps one \
         /30 next hop at the target rate; the prefix is outside every \
         measured flow, so both modes route identical packets and only the \
         publication mechanism differs",
    );
    t.note(
        "inval misses = cache misses attributed to post-publication refills \
         (the split counter this PR's bugfix added) — each publication \
         clears the per-worker flow caches in both modes; the locked mode \
         additionally serializes every worker batch behind the table mutex",
    );
    t.note(
        "models: preemption-bound-2 DFS over syscheck's shim scheduler; the \
         safe domain must be exhaustive and clean, the seeded premature \
         reclaim must be found and shrink to ≤ 2 forced preemptions, and a \
         COW publication must be visible to the next pinned read",
    );
    t
}
