//! E3 — "The optimizer can fix it" (Fallacy 3).
//!
//! The boxed VM gets the optimizer, pass by pass (const-fold → inline →
//! peephole → DCE), and is compared against the unboxed-by-design VM running
//! the *unoptimized* program. The paper's claim: optimization recovers part
//! of the representation gap but not the structural cost of boxing itself.

use super::{fmt_ns, Scale, Table};
use bitc_core::ffi::NativeRegistry;
use bitc_core::opt::{compile_optimized, OptLevel};
use bitc_core::parser::parse_program;
use bitc_core::vm::{Boxed, Unboxed, Vm};
use std::time::Instant;

fn workload(scale: Scale) -> String {
    let n = match scale {
        Scale::Quick => 20_000,
        Scale::Full => 1_000_000,
    };
    // Inlinable helper + folding opportunities + a hot loop: the shape the
    // optimizer is best at.
    format!(
        "(define scale (lambda (x) (* x (+ 2 2))))
         (define offset (lambda (x) (+ x (- 10 3))))
         (let ((i 0) (acc 0))
           (begin
             (while (< i {n})
               (set! acc (+ acc (offset (scale i))))
               (set! i (+ i 1)))
             acc))"
    )
}

/// Runs E3 and renders the table.
///
/// # Panics
///
/// Panics if the workload fails to compile or run (a bug, not an input
/// condition).
#[must_use]
pub fn run(scale: Scale) -> Table {
    let src = workload(scale);
    let program = parse_program(&src).expect("workload parses");
    bitc_core::infer::infer_program(&program).expect("workload typechecks");
    let reg = NativeRegistry::new();
    let mut t = Table::new(
        "E3 — optimizer ablation on the boxed VM vs unboxed-by-design",
        &[
            "configuration",
            "time",
            "vs boxed -O0",
            "instructions",
            "static code size",
            "result",
        ],
    );
    let mut baseline_ns = 0u64;
    let mut expected = None;
    for level in OptLevel::ALL {
        let bc = compile_optimized(&program, level).expect("compiles");
        let mut vm = Vm::<Boxed>::new(&bc, &reg).expect("vm");
        let t0 = Instant::now();
        let result = vm.run_int().expect("runs");
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if level == OptLevel::None {
            baseline_ns = ns;
            expected = Some(result);
        }
        assert_eq!(expected, Some(result), "optimizer changed semantics");
        #[allow(clippy::cast_precision_loss)]
        let speedup = baseline_ns as f64 / ns.max(1) as f64;
        t.row(vec![
            format!("boxed {level}"),
            fmt_ns(ns),
            format!("{speedup:.2}x"),
            vm.stats.instructions.to_string(),
            bc.instruction_count().to_string(),
            result.to_string(),
        ]);
    }
    // The ceiling: unboxed representation, no optimizer at all.
    let bc = compile_optimized(&program, OptLevel::None).expect("compiles");
    let mut vm = Vm::<Unboxed>::new(&bc, &reg).expect("vm");
    let t0 = Instant::now();
    let result = vm.run_int().expect("runs");
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    #[allow(clippy::cast_precision_loss)]
    let speedup = baseline_ns as f64 / ns.max(1) as f64;
    t.row(vec![
        "unboxed (no optimizer)".into(),
        fmt_ns(ns),
        format!("{speedup:.2}x"),
        vm.stats.instructions.to_string(),
        bc.instruction_count().to_string(),
        result.to_string(),
    ]);
    t.note("paper claim: each pass helps, but the unboxed representation without any optimizer still beats the fully optimized boxed build — representation is not an optimizer problem.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_all_configurations_agree_on_results() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        let results: Vec<&String> = t.rows.iter().map(|r| &r[5]).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    }

    #[test]
    fn e3_optimizer_reduces_executed_instructions() {
        let t = run(Scale::Quick);
        let parse = |s: &str| s.parse::<u64>().unwrap();
        let o0 = parse(&t.rows[0][3]);
        let full = parse(&t.rows[4][3]);
        assert!(full < o0, "full {full} < O0 {o0}");
    }
}
