//! E9 — Availability under a deterministic fault campaign.
//!
//! The robustness counterpart to E6: the same kernel IPC fast path, now run
//! under a seeded `sysfault` plan that drops messages in transit, injects
//! kernel-heap and manager-level allocation failures, and aborts STM
//! transactions. The recovery machinery on trial: IPC deadlines plus the
//! watchdog sweep, bounded retry with exponential backoff, graceful OOM
//! shedding of non-essential processes, and STM retry budgets.
//!
//! Three claims measured per fault rate:
//! * **availability** — fraction of round trips (and transactions) that
//!   still complete, at what retry and cycle cost;
//! * **replayability** — the same seed reproduces the identical fault log
//!   (digests compared across two full campaign runs);
//! * **invariant preservation** — after the campaign, every kernel
//!   invariant contract still verifies under `bitc-verify`.

use super::{Scale, Table};
use bitc_verify::vcgen::is_verified;
use microkernel::invariants::invariant_suite;
use microkernel::kernel::{Kernel, Syscall, SITE_IPC_DROP, SITE_KERNEL_OOM};
use microkernel::rights::Rights;
use sysconc::stm::{atomically_faulted, RetryBudget, TVar, SITE_STM_ABORT};
use sysfault::{FaultPlan, Schedule, SharedInjector};
use sysmem::faulty::{FaultyHeap, SITE_OOM};
use sysmem::freelist::FreeListHeap;
use sysnet::conntrack::{
    ConntrackConfig, SITE_CT_STATE_DESYNC, SITE_CT_TABLE_FULL, SITE_CT_TIMER_STALL,
};
use sysnet::ctbench::{ct_table, CT_PORTS};
use sysnet::pipeline::DropReason;
use sysnet::router::{
    run_stream, RouterConfig, RouterReport, SITE_NET_FRAME_DROP, SITE_NET_RECYCLE_LOSS,
    SITE_NET_WORKER_STALL,
};
use sysrepr::packet::{PacketBuilder, TCP_ACK, TCP_SYN};

const CAMPAIGN_SEED: u64 = 0x9E37_79B9;
const DEADLINE_CYCLES: u64 = 2_000;
const MAX_RETRIES: u32 = 4;

fn rounds(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 150,
        Scale::Full => 5_000,
    }
}

fn plan_for(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(SITE_IPC_DROP, Schedule::Probability(rate))
        .with_site(SITE_KERNEL_OOM, Schedule::Probability(rate / 2.0))
        .with_site(SITE_OOM, Schedule::Probability(rate / 4.0))
}

struct CampaignResult {
    completed: usize,
    total_retries: u64,
    clean_cycles_sum: u64,
    clean_rounds: u64,
    retried_cycles_sum: u64,
    retried_rounds: u64,
    shed: u64,
    reaps: u64,
    drops: u64,
    digest: u64,
}

/// One full kernel campaign at a fixed fault rate. Deterministic in
/// `(rate, rounds, seed)`: the whole point.
fn kernel_campaign(rate: f64, rounds: usize, seed: u64) -> CampaignResult {
    let injector = SharedInjector::new(plan_for(rate, seed));
    let heap = FaultyHeap::new(Box::new(FreeListHeap::new(1 << 20)), injector.clone());
    let mut k = Kernel::new(Box::new(heap));
    k.set_injector(injector.clone());

    let server = k.spawn_process();
    let client = k.spawn_process();
    k.set_essential(server, true).expect("live pid");
    k.set_essential(client, true).expect("live pid");
    let req_s = k.create_endpoint(server).expect("endpoint");
    let req_c = k
        .grant_cap(server, req_s, client, Rights::SEND)
        .expect("grant");
    let rep_s = k.create_endpoint(server).expect("endpoint");
    let rep_c = k
        .grant_cap(server, rep_s, client, Rights::RECV)
        .expect("grant");
    // Expendable background processes: graceful OOM degradation sheds these
    // (newest first) instead of failing the essential workload.
    for _ in 0..8 {
        let p = k.spawn_process();
        let _ = k.syscall(p, Syscall::AllocPage { words: 32 });
    }

    let mut r = CampaignResult {
        completed: 0,
        total_retries: 0,
        clean_cycles_sum: 0,
        clean_rounds: 0,
        retried_cycles_sum: 0,
        retried_rounds: 0,
        shed: 0,
        reaps: 0,
        drops: 0,
        digest: 0,
    };
    for _ in 0..rounds {
        match k.ping_pong_resilient(
            client,
            server,
            (req_s, req_c),
            (rep_s, rep_c),
            4,
            DEADLINE_CYCLES,
            MAX_RETRIES,
        ) {
            Ok(out) => {
                r.completed += 1;
                r.total_retries += u64::from(out.retries);
                if out.retries == 0 {
                    r.clean_cycles_sum += out.cycles;
                    r.clean_rounds += 1;
                } else {
                    r.retried_cycles_sum += out.cycles;
                    r.retried_rounds += 1;
                }
            }
            Err(_) => {
                // An abandoned round trip must leave the kernel reusable:
                // the next round starts from ready processes. (A panic here
                // would fail the whole experiment — availability under
                // faults is exactly the claim.)
            }
        }
    }
    let stats = k.fault_stats();
    r.shed = stats.shed_processes;
    r.reaps = stats.watchdog_reaps;
    r.drops = stats.dropped_messages;
    r.digest = injector.digest();
    r
}

/// Budgeted STM transactions under injected aborts at `rate`; returns
/// (committed, attempted).
fn stm_campaign(rate: f64, txns: usize, seed: u64) -> (usize, usize) {
    let injector = SharedInjector::new(
        FaultPlan::new(seed).with_site(SITE_STM_ABORT, Schedule::Probability(rate)),
    );
    let counter = TVar::new(0i64);
    let budget = RetryBudget {
        max_attempts: 8,
        backoff_base_us: 0,
    };
    let mut ok = 0;
    for _ in 0..txns {
        let committed = atomically_faulted(budget, &injector, |tx| {
            let v = tx.read(&counter)?;
            tx.write(&counter, v + 1)
        })
        .is_ok();
        if committed {
            ok += 1;
        }
    }
    (ok, txns)
}

#[allow(clippy::cast_precision_loss)]
fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        return "—".to_string();
    }
    format!("{:.1}%", 100.0 * num as f64 / den as f64)
}

/// Runs E9 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let rounds = rounds(scale);
    let mut t = Table::new(
        "E9 — availability and recovery under a seeded fault campaign",
        &[
            "fault rate",
            "RT avail",
            "avg retries",
            "recovery cost",
            "shed",
            "reaps",
            "drops",
            "STM avail",
            "invariants",
            "replay",
        ],
    );
    let mut verified_after_all = true;
    for rate in [0.0, 0.05, 0.10, 0.20] {
        let r = kernel_campaign(rate, rounds, CAMPAIGN_SEED);
        let replay = kernel_campaign(rate, rounds, CAMPAIGN_SEED);
        let replay_ok = r.digest == replay.digest && r.completed == replay.completed;
        let (stm_ok, stm_n) = stm_campaign(rate, rounds, CAMPAIGN_SEED ^ 0xA5A5);
        // Post-campaign invariant check: the recovery machinery must not
        // have cost the kernel its contracts.
        let proven = invariant_suite().iter().filter(|p| is_verified(p)).count();
        let suite_len = invariant_suite().len();
        verified_after_all &= proven == suite_len;
        #[allow(clippy::cast_precision_loss)]
        let avg_retries = if r.completed == 0 {
            "—".to_string()
        } else {
            format!("{:.2}", r.total_retries as f64 / r.completed as f64)
        };
        // Recovery cost: extra cycles a recovered round trip pays over a
        // clean one (averages compared; "—" when one class is empty).
        let recovery = if r.retried_rounds == 0 || r.clean_rounds == 0 {
            "—".to_string()
        } else {
            let clean = r.clean_cycles_sum / r.clean_rounds;
            let retried = r.retried_cycles_sum / r.retried_rounds;
            format!("+{} cyc", retried.saturating_sub(clean))
        };
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            pct(r.completed, rounds),
            avg_retries,
            recovery,
            r.shed.to_string(),
            r.reaps.to_string(),
            r.drops.to_string(),
            pct(stm_ok, stm_n),
            format!("{proven}/{suite_len}"),
            if replay_ok {
                format!("{:016x} ✓", r.digest)
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    t.note(format!(
        "{rounds} resilient round trips per rate (4-word payloads, deadline {DEADLINE_CYCLES} \
         cycles, ≤{MAX_RETRIES} retries, exponential backoff); sites: kernel.ipc.drop@rate, \
         kernel.oom@rate/2, mem.oom@rate/4, stm.abort@rate; seed {CAMPAIGN_SEED:#x}."
    ));
    t.note(
        "replay column: each campaign ran twice from its seed; matching fault-log digests mean \
         byte-for-byte reproducibility of what fired, where, in what order.",
    );
    t.note(if verified_after_all {
        "post-campaign bitc-verify check: every kernel invariant contract still proves."
    } else {
        "post-campaign bitc-verify check FAILED: an invariant no longer proves."
    });
    t
}

// ---- E9b: the same campaign discipline, aimed at the data plane --------

fn net_flows(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Full => 2_000,
    }
}

/// Round-robin TCP stream: every flow handshakes (SYN, then the ACK),
/// then streams `data_rounds` payload packets, interleaved so the whole
/// population is concurrently live in the tracker.
fn net_stream(flows: usize, data_rounds: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(flows * (2 + data_rounds));
    for round in 0..(2 + data_rounds) {
        for f in 0..flows {
            #[allow(clippy::cast_possible_truncation)]
            let (src, dst) = (
                [172, 16, (f >> 8) as u8, f as u8],
                [10 + (f % 3) as u8, (f >> 8) as u8, f as u8, 1],
            );
            #[allow(clippy::cast_possible_truncation)]
            let sport = 1024 + (f as u16 & 0x3FFF);
            let mut b = PacketBuilder::tcp()
                .src_ip(src)
                .dst_ip(dst)
                .src_port(sport)
                .dst_port(443);
            b = match round {
                0 => b.tcp_flags(TCP_SYN),
                1 => b.tcp_flags(TCP_ACK),
                _ => b.tcp_flags(TCP_ACK).payload(&[0x5A; 48]),
            };
            frames.push(b.build());
        }
    }
    frames
}

/// One seeded campaign over every `net.*` site at `rate`, through the
/// tracked sharded router. Deterministic in `(rate, flows, seed)`.
fn net_campaign(rate: f64, flows: usize, seed: u64) -> RouterReport {
    let plan = FaultPlan::new(seed)
        .with_site(SITE_NET_FRAME_DROP, Schedule::Probability(rate))
        .with_site(SITE_NET_WORKER_STALL, Schedule::Probability(rate / 2.0))
        .with_site(SITE_NET_RECYCLE_LOSS, Schedule::Probability(rate / 4.0))
        .with_site(SITE_CT_TABLE_FULL, Schedule::Probability(rate / 2.0))
        .with_site(SITE_CT_TIMER_STALL, Schedule::Probability(rate / 2.0))
        .with_site(SITE_CT_STATE_DESYNC, Schedule::Probability(rate / 4.0));
    let config = RouterConfig {
        workers: 2,
        queue_depth: 64,
        // Roomy sizing: the whole population is half-open at once during
        // round 0, and overload is E14's subject, not this campaign's —
        // every drop in the table should be injected, not organic.
        conntrack: Some(ConntrackConfig {
            max_flows: (flows * 2).max(64),
            syn_backlog: flows.max(32),
            ..ConntrackConfig::default()
        }),
        fault_plan: Some(plan),
        ..RouterConfig::default()
    };
    let frames = net_stream(flows, 4);
    let (report, _) = run_stream(ct_table(), CT_PORTS, config, &frames);
    report
}

/// Runs E9b — the data-plane follow-on — and renders the table.
#[must_use]
pub fn run_net(scale: Scale) -> Table {
    let flows = net_flows(scale);
    let mut t = Table::new(
        "E9b — data-plane availability under seeded net.* faults",
        &[
            "fault rate",
            "delivered",
            "frame drops",
            "stalls",
            "recycle loss",
            "table-full",
            "timer stalls",
            "desyncs",
            "ct audits",
            "replay",
        ],
    );
    for rate in [0.0, 0.02, 0.05, 0.10] {
        let r = net_campaign(rate, flows, CAMPAIGN_SEED);
        let replay = net_campaign(rate, flows, CAMPAIGN_SEED);
        let replay_ok = r.faults.dispatch_digest == replay.faults.dispatch_digest
            && r.faults.worker_digest == replay.faults.worker_digest
            && r.stats.totals.forwarded == replay.stats.totals.forwarded;
        let totals = &r.stats.totals;
        let submitted = totals.total_frames() + r.faults.injected_frame_drops;
        let ct = r.conntrack.unwrap_or_default();
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            pct(
                usize::try_from(totals.forwarded).expect("fits"),
                usize::try_from(submitted).expect("fits"),
            ),
            r.faults.injected_frame_drops.to_string(),
            r.faults.injected_stalls.to_string(),
            format!(
                "{} (-{} bufs)",
                r.faults.recycle_losses, r.faults.frames_lost
            ),
            totals.dropped[DropReason::FlowTableFull as usize].to_string(),
            ct.timer_stalls.to_string(),
            ct.desyncs_injected.to_string(),
            if ct.invariant_violations == 0 {
                "0 ✓".to_string()
            } else {
                format!("{} VIOLATED", ct.invariant_violations)
            },
            if replay_ok {
                let d = r.faults.dispatch_digest ^ r.faults.worker_digest;
                format!("{d:016x} ✓")
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    t.note(format!(
        "{flows} tracked TCP flows (handshake + 4 data packets each, round-robin) through a \
         2-worker router; sites: net.dispatch.frame_drop@rate, net.worker.stall@rate/2, \
         net.recycle.loss@rate/4, net.conntrack.table_full@rate/2, timer_stall@rate/2, \
         state_desync@rate/4; seed {CAMPAIGN_SEED:#x}.",
    ));
    t.note(
        "ct audits: post-run structural audit failures across every shard — any nonzero value \
         means an injected fault corrupted the flow table. replay: both campaign runs must fold \
         to identical dispatcher and per-worker fault-log digests.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_runs_all_rates_without_panicking() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn zero_rate_campaign_is_fully_available() {
        let rounds = 100;
        let r = kernel_campaign(0.0, rounds, 1);
        assert_eq!(r.completed, rounds);
        assert_eq!(r.total_retries, 0);
        assert_eq!(r.drops + r.reaps + r.shed, 0);
    }

    #[test]
    fn ten_percent_campaign_stays_available() {
        // The ISSUE's acceptance bar: a 10% campaign completes with nonzero
        // availability and zero panics.
        let rounds = 200;
        let r = kernel_campaign(0.10, rounds, CAMPAIGN_SEED);
        assert!(r.completed > 0, "availability must stay above zero");
        assert!(r.drops > 0, "the campaign must actually inject faults");
    }

    #[test]
    fn campaigns_replay_identically_from_their_seed() {
        let a = kernel_campaign(0.15, 120, 42);
        let b = kernel_campaign(0.15, 120, 42);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_retries, b.total_retries);
        let c = kernel_campaign(0.15, 120, 43);
        assert_ne!(a.digest, c.digest, "different seed, different campaign");
    }

    #[test]
    fn e9b_net_campaign_replays_and_keeps_audits_clean() {
        let t = run_net(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[8], "0 ✓", "an injected fault corrupted a shard");
            assert!(row[9].ends_with('✓'), "campaign digests must replay");
        }
    }

    #[test]
    fn e9b_faulted_rates_actually_inject() {
        let r = net_campaign(0.10, 120, CAMPAIGN_SEED);
        assert!(r.faults.total_injected() > 0, "no faults fired at 10%");
        let clean = net_campaign(0.0, 120, CAMPAIGN_SEED);
        assert_eq!(clean.faults.total_injected(), 0);
        assert_eq!(
            clean.stats.totals.forwarded,
            120 * 6,
            "zero-rate campaign must deliver the whole stream"
        );
    }

    #[test]
    fn invariants_still_prove_after_a_campaign() {
        let _ = kernel_campaign(0.20, 100, 7);
        for p in invariant_suite() {
            assert!(is_verified(&p), "{} must still verify", p.name);
        }
    }
}
