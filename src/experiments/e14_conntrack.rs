//! E14 — Connection tracking under load and under attack.
//!
//! The robustness counterpart to E10: the same sharded data plane, now
//! running the `sysnet::conntrack` flow layer. Two questions, one table:
//!
//! * **scale** — what does stateful tracking cost as the live benign flow
//!   population grows? (pps, p50/p99/p999 per-packet latency; the
//!   benign-only rows);
//! * **overload** — when a SYN flood joins the benign traffic, how much
//!   established-flow goodput survives with the overload defense on —
//!   half-open admission control, LRU+timeout eviction, SYN-cookie
//!   stateless fallback — versus the defense off? (the attack rows).
//!
//! The headline the paper's robustness story needs: goodput retained at
//! the hottest attack mix, defense on, against the collapse of the same
//! mix with the defense off. `examples/conntrack_bench.rs` runs the same
//! harness with a counting allocator and records `BENCH_conntrack.json`;
//! this table is the EXPERIMENTS.md rendering.

use super::{fmt_ns, fmt_rate, Scale, Table};
use sysnet::ctbench::{run_ct_bench, CtBenchConfig, CtPoint};

fn config_for(scale: Scale) -> CtBenchConfig {
    match scale {
        // Smaller than the bench's own quick mode: this also runs inside
        // `cargo test` at debug optimization.
        Scale::Quick => CtBenchConfig {
            scale_flows: vec![2_000, 10_000],
            attack_flows: 2_000,
            attack_mixes: vec![0.9],
            data_per_flow: 4,
            min_benign_packets: 20_000,
            workers: 2,
            trials: 1,
            ..CtBenchConfig::quick()
        },
        Scale::Full => CtBenchConfig::full(),
    }
}

fn row_of(t: &mut Table, p: &CtPoint, baseline: Option<&CtPoint>) {
    let goodput = match baseline {
        Some(b) if p.attack_mix > 0.0 => format!("{:.1}%", 100.0 * p.goodput_retained(b)),
        _ => "—".to_string(),
    };
    t.row(vec![
        format!("{}", p.benign_flows),
        format!("{:.0}%", p.attack_mix * 100.0),
        if p.defense { "on" } else { "OFF" }.to_string(),
        fmt_rate(p.pps),
        fmt_ns(p.p50_ns),
        fmt_ns(p.p99_ns),
        fmt_ns(p.p999_ns),
        format!("{:.1}%", 100.0 * p.benign_delivery()),
        goodput,
        format!("{}/{}", p.peak_flows, p.capacity),
        format!(
            "{}|{}",
            p.cookie_mode_entries + p.cookie_established,
            p.stateless_syns
        ),
        p.dropped_no_flow.to_string(),
    ]);
}

/// Runs E14 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let cfg = config_for(scale);
    let report = run_ct_bench(&cfg);
    let mut t = Table::new(
        "E14 — conntrack scale and SYN-flood overload defense",
        &[
            "benign flows",
            "attack mix",
            "defense",
            "pps",
            "p50",
            "p99",
            "p999",
            "benign delivery",
            "goodput retained",
            "peak/capacity",
            "cookie ev|stateless",
            "shed (no-flow)",
        ],
    );
    let baseline = report.baseline().copied();
    for p in report.scale.iter().chain(report.attack.iter()) {
        row_of(&mut t, p, baseline.as_ref());
    }
    t.note(format!(
        "{} workers, SYN backlog {}/shard, {} data packets per benign flow (floored so small \
         populations still stream ≥{} packets); attack rows run {} benign flows against a \
         uniformly interleaved SYN flood.",
        report.workers,
        report.syn_backlog,
        report.data_per_flow,
        cfg.min_benign_packets,
        cfg.attack_flows,
    ));
    if let (Some(h), Some(b)) = (report.headline(), baseline.as_ref()) {
        t.note(format!(
            "headline: at the {:.0}% attack mix the defense retains {:.1}% of baseline \
             established-flow goodput; the table never exceeded its shared capacity gauge.",
            h.attack_mix * 100.0,
            100.0 * h.goodput_retained(b)
        ));
    }
    if let Some(off) = report.attack.iter().find(|p| !p.defense) {
        t.note(format!(
            "defense-off contrast at the same mix: {:.1}% benign delivery — the flood owns the \
             table (peak half-open {}) and established flows are cannibalized by naive LRU.",
            100.0 * off.benign_delivery(),
            off.peak_half_open
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_renders_scale_and_attack_rows() {
        let t = run(Scale::Quick);
        // Two benign-only scale rows, then the attack matrix: baseline,
        // one defended mix, and the defense-off contrast.
        assert_eq!(t.rows.len(), 5);
        assert!(t.notes.iter().any(|n| n.contains("headline")));
        assert!(t.notes.iter().any(|n| n.contains("defense-off")));
    }
}
