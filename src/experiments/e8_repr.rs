//! E8 — Control over data representation (Challenge 3).
//!
//! Parse the same packet stream three ways: zero-copy bit-precise views
//! (what C programmers write, made safe), the LangSec combinator recognizer,
//! and the allocating "boxed" parser (what a uniformly-managed runtime
//! produces). Same accept/reject behaviour — the property tests prove the
//! three recognize the same language — different costs.

use super::{fmt_rate, Scale, Table};
use std::time::Instant;
use sysrepr::boxed::BoxedPacket;
use sysrepr::langsec::{ipv4_header, Input};
use sysrepr::packet::{EthernetView, PacketBuilder};

fn packet_count(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5_000,
        Scale::Full => 200_000,
    }
}

/// Builds a deterministic synthetic packet stream (mixed sizes, a few
/// corrupt packets to keep the parsers honest).
#[must_use]
pub fn make_stream(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let payload = vec![u8::try_from(i % 251).expect("fits"); (i * 7) % 512];
            let mut b = PacketBuilder::udp()
                .src_ip([10, 0, (i >> 8) as u8, i as u8])
                .dst_ip([10, 1, 2, 3])
                .src_port(u16::try_from(1024 + (i % 60_000)).expect("fits"))
                .dst_port(53)
                .payload(&payload);
            if i % 97 == 0 {
                b = b.corrupt_checksum();
            }
            b.build()
        })
        .collect()
}

/// Runs E8 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let stream = make_stream(packet_count(scale));
    let total_bytes: usize = stream.iter().map(Vec::len).sum();
    let mut t = Table::new(
        "E8 — packet parsing: zero-copy views vs combinators vs boxed parser",
        &[
            "parser",
            "packets/s",
            "MB/s",
            "checksum payload",
            "allocations/packet",
        ],
    );

    // Zero-copy views.
    let t0 = Instant::now();
    let mut check = 0u64;
    for bytes in &stream {
        let ip = EthernetView::parse(bytes).unwrap().ipv4().unwrap();
        let udp = ip.udp().unwrap();
        check = check.wrapping_add(u64::from(udp.dst_port()));
        check = check.wrapping_add(udp.payload().iter().map(|&b| u64::from(b)).sum::<u64>());
    }
    let ns = t0.elapsed().as_nanos() as f64;
    #[allow(clippy::cast_precision_loss)]
    t.row(vec![
        "zero-copy views".into(),
        fmt_rate(stream.len() as f64 / (ns / 1e9)),
        format!("{:.0}", total_bytes as f64 / (ns / 1e9) / 1e6),
        check.to_string(),
        "0".into(),
    ]);

    // LangSec combinators (header only — they recognize IPv4).
    let t0 = Instant::now();
    let mut check_c = 0u64;
    for bytes in &stream {
        let (hdr, _) = ipv4_header(Input::new(&bytes[14..])).unwrap();
        check_c = check_c.wrapping_add(u64::from(hdr.ttl));
    }
    let ns = t0.elapsed().as_nanos() as f64;
    #[allow(clippy::cast_precision_loss)]
    t.row(vec![
        "langsec combinators (hdr)".into(),
        fmt_rate(stream.len() as f64 / (ns / 1e9)),
        format!("{:.0}", total_bytes as f64 / (ns / 1e9) / 1e6),
        check_c.to_string(),
        "0".into(),
    ]);

    // Boxed parser.
    let t0 = Instant::now();
    let mut check_b = 0u64;
    let mut allocs = 0usize;
    for bytes in &stream {
        let p = BoxedPacket::parse(bytes).unwrap();
        check_b = check_b.wrapping_add(u64::from(p.dst_port().unwrap_or(0)));
        check_b = check_b.wrapping_add(p.payload().iter().map(|&b| u64::from(b)).sum::<u64>());
        allocs += p.allocation_count();
    }
    let ns = t0.elapsed().as_nanos() as f64;
    #[allow(clippy::cast_precision_loss)]
    t.row(vec![
        "boxed (allocating)".into(),
        fmt_rate(stream.len() as f64 / (ns / 1e9)),
        format!("{:.0}", total_bytes as f64 / (ns / 1e9) / 1e6),
        check_b.to_string(),
        format!("{:.0}", allocs as f64 / stream.len() as f64),
    ]);
    if let (Some(a), Some(b)) = (t.rows.first(), t.rows.get(2)) {
        if a[3] != b[3] {
            t.note("WARNING: checksum mismatch between zero-copy and boxed parsers");
        }
    }
    t.note("paper claim: representation control is not a luxury — the zero-copy path allocates nothing and wins by an integer factor; boxing pays a dozen heap cells per packet.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_zero_copy_and_boxed_agree_on_payload_checksums() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][3], t.rows[2][3], "parsers disagree");
        assert_eq!(t.rows[0][4], "0");
        assert_ne!(t.rows[2][4], "0");
    }

    #[test]
    fn stream_contains_corrupt_packets_that_fail_checksum() {
        let stream = make_stream(200);
        let bad = stream
            .iter()
            .filter(|b| {
                EthernetView::parse(b)
                    .and_then(|e| e.ipv4())
                    .and_then(|ip| ip.verify_checksum())
                    .is_err()
            })
            .count();
        assert!(
            bad > 0,
            "failure injection must produce some corrupt packets"
        );
    }
}
