//! E2 — Boxed vs unboxed representation (Fallacy 2).
//!
//! The same BitC programs, the same bytecode, two value representations.
//! The paper claims the boxed representation's cost is structural (extra
//! allocation + indirection + cache misses) and cannot be assumed away; the
//! table reports the slowdown factor per kernel and the memory-bloat model.

use super::{fmt_ns, Scale, Table};
use bitc_core::compile::compile_source;
use bitc_core::ffi::NativeRegistry;
use bitc_core::layout::{array_bytes, bloat_factor};
use bitc_core::types::Type;
use bitc_core::vm::{Boxed, Rep, Unboxed, Vm};
use std::time::Instant;

/// The benchmark kernels: classic inner loops of systems code.
#[must_use]
pub fn kernels(scale: Scale) -> Vec<(&'static str, String)> {
    let (n_loop, n_vec, n_fib) = match scale {
        Scale::Quick => (20_000, 4_000, 18),
        Scale::Full => (2_000_000, 200_000, 27),
    };
    vec![
        (
            "sum-loop",
            format!(
                "(let ((i 0) (acc 0))
                   (begin
                     (while (< i {n_loop}) (set! acc (+ acc i)) (set! i (+ i 1)))
                     acc))"
            ),
        ),
        (
            "vector-walk",
            format!(
                "(let ((v (make-vector {n_vec} 1)) (i 0) (acc 0))
                   (begin
                     (while (< i {n_vec}) (vec-set! v i (* i 3)) (set! i (+ i 1)))
                     (set! i 0)
                     (while (< i {n_vec}) (set! acc (+ acc (vec-ref v i))) (set! i (+ i 1)))
                     acc))"
            ),
        ),
        (
            "fib-calls",
            format!(
                "(define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
                 (fib {n_fib})"
            ),
        ),
    ]
}

fn time_run<R: Rep>(src: &str) -> (u64, i64, u64) {
    let bc = compile_source(src).expect("kernel compiles");
    let reg = NativeRegistry::new();
    let mut vm = Vm::<R>::new(&bc, &reg).expect("vm constructs");
    let t0 = Instant::now();
    let result = vm.run_int().expect("kernel runs");
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (ns, result, vm.stats.value_allocations)
}

/// Runs E2 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2 — boxed vs unboxed value representation (same bytecode)",
        &[
            "kernel",
            "unboxed",
            "boxed",
            "slowdown",
            "boxed allocs",
            "result check",
        ],
    );
    for (name, src) in kernels(scale) {
        let (u_ns, u_res, _) = time_run::<Unboxed>(&src);
        let (b_ns, b_res, b_allocs) = time_run::<Boxed>(&src);
        #[allow(clippy::cast_precision_loss)]
        let slow = b_ns as f64 / u_ns.max(1) as f64;
        t.row(vec![
            name.to_owned(),
            fmt_ns(u_ns),
            fmt_ns(b_ns),
            format!("{slow:.2}x"),
            b_allocs.to_string(),
            if u_res == b_res {
                "ok".into()
            } else {
                format!("MISMATCH {u_res}!={b_res}")
            },
        ]);
    }
    let (u_mem, b_mem) = array_bytes(&Type::Int, 1_000_000);
    t.note(format!(
        "memory model, 1M-element int array: unboxed {u_mem} B vs boxed {b_mem} B ({:.2}x bloat)",
        bloat_factor(&Type::Int, 1_000_000)
    ));
    t.note("paper claim: boxing costs an integer factor (≫ the 10-20% folklore), concentrated in allocation and indirection.");
    t
}

/// F1 — the figure-style series behind E2: boxed/unboxed slowdown as a
/// function of working-set size.
///
/// The paper's Fallacy 2 discussion locates boxing's cost in *cache
/// behaviour*: a boxed array is a pointer array plus scattered cells, so
/// once the working set outgrows the cache the indirections become misses.
/// The series sweeps a vector-sum kernel from cache-resident to
/// cache-busting sizes; the slowdown column is the "figure".
#[must_use]
pub fn run_figure(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1 << 10, 1 << 12, 1 << 14, 1 << 16],
        Scale::Full => &[1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20],
    };
    let mut t = Table::new(
        "F1 — boxing slowdown vs working-set size (vector sum, ns/element)",
        &[
            "elements",
            "unboxed ns/elem",
            "boxed ns/elem",
            "slowdown",
            "boxed bytes (model)",
        ],
    );
    let budget: usize = match scale {
        Scale::Quick => 1 << 17,
        Scale::Full => 1 << 23,
    };
    for &n in sizes {
        // Write then sum a vector of n elements; several passes so every
        // size touches the same total number of elements.
        let passes = (budget / n.max(1)).max(1);
        let src = format!(
            "(let ((v (make-vector {n} 1)) (p 0) (acc 0))
               (begin
                 (while (< p {passes})
                   (let ((i 0))
                     (while (< i {n})
                       (set! acc (+ acc (vec-ref v i)))
                       (set! i (+ i 1))))
                   (set! p (+ p 1)))
                 acc))"
        );
        let (u_ns, u_res, _) = time_run::<Unboxed>(&src);
        let (b_ns, b_res, _) = time_run::<Boxed>(&src);
        assert_eq!(u_res, b_res, "representation divergence at n={n}");
        let elems = (n * passes) as u64;
        #[allow(clippy::cast_precision_loss)]
        let slow = b_ns as f64 / u_ns.max(1) as f64;
        let (_, boxed_bytes) = array_bytes(&Type::Int, n);
        t.row(vec![
            n.to_string(),
            format!("{:.1}", u_ns as f64 / elems as f64),
            format!("{:.1}", b_ns as f64 / elems as f64),
            format!("{slow:.2}x"),
            boxed_bytes.to_string(),
        ]);
    }
    t.note("series shape: the slowdown is already large in cache (allocation cost) and does not shrink as the boxed working set outgrows cache levels — representation cost is not amortizable.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_kernels_agree_across_representations() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[5], "ok", "representation divergence in {}", row[0]);
        }
    }

    #[test]
    fn f1_series_is_consistent() {
        let t = run_figure(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e2_boxed_allocates_unboxed_does_not() {
        for (_, src) in kernels(Scale::Quick) {
            let (_, _, u_allocs) = time_run::<Unboxed>(&src);
            let (_, _, b_allocs) = time_run::<Boxed>(&src);
            // Unboxed only allocates for vectors; boxed allocates per value.
            assert!(
                b_allocs > u_allocs * 10,
                "boxed {b_allocs} vs unboxed {u_allocs}"
            );
        }
    }
}
