//! E16 — Always-on observability: sampled tracing cost, feedback
//! convergence, and anomaly-triggered black-box postmortems.
//!
//! E11 prices the observability *modes*; this experiment exercises the
//! machinery that makes the sampled mode deployable as an always-on
//! default:
//!
//! * **overhead curve** — router throughput under `Mode::Sampled` at fixed
//!   sampling shifts (1-in-1 … 1-in-256) and under adaptive control,
//!   against the compiled-out baseline. The curve is the evidence behind
//!   the ≤5% sampled-router budget `obs_bench` enforces;
//! * **feedback convergence** — a synthetic hot site (millions of calls/s)
//!   and a cold site (hundreds) driven through the controller for several
//!   windows: the hot site must be pushed to a sparse shift while the cold
//!   site converges to shift 0 (every occurrence recorded), keeping total
//!   ring-write spend inside the overhead budget;
//! * **anomaly campaign** — five seeded incidents, one per watch in
//!   [`TriggerEngine::standard`]: epoch-advancement lag, a watchdog reap,
//!   a backpressure stall burst, SYN-cookie engagement, and a drop-rate
//!   spike. Each incident must produce **exactly one** postmortem naming
//!   its trigger, and the drop-spike postmortem must contain a causal
//!   trace that crosses the dispatcher/worker thread boundary
//!   (`net.dispatch` → `net.frame.*`), proving a sampled packet
//!   reconstructs end to end from the black box alone.
//!
//! The campaign runs the *production* wiring: live registry counters at
//! the real sites, the standard watch set, head sampling pinned to 1-in-1
//! so the run is deterministic. The integration test
//! (`tests/obs_postmortem.rs`) asserts the exactly-one property in an
//! isolated process; the table here renders the same outcomes.

use super::{fmt_rate, Scale, Table};
use microkernel::kernel::{Kernel, Syscall};
use microkernel::rights::Rights;
use std::sync::Arc;
use sysfault::{FaultPlan, Schedule};
use sysmem::epoch::Domain;
use sysmem::freelist::FreeListHeap;
use sysnet::bench::{build_tables, frame_stream, SweepConfig, PORTS};
use sysnet::conntrack::ConntrackConfig;
use sysnet::ctbench::{ct_table, CT_PORTS};
use sysnet::router::{run_stream, RouterConfig, SITE_NET_WORKER_STALL};
use sysobs::sampler::{sampler, SampleSite, DEFAULT_EVENT_COST_NS, MAX_SHIFT};
use sysobs::{Mode, Postmortem, TriggerEngine};
use sysrepr::packet::{PacketBuilder, TCP_ACK, TCP_SYN};

const CAMPAIGN_SEED: u64 = 0xE16_0B5;

/// One point on the sampled-tracing overhead curve.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Row label (`uninstrumented`, `shift 0 (1-in-1)`, …, `adaptive`).
    pub label: String,
    /// Best-of-reps packets per second.
    pub pps: f64,
    /// Throughput overhead vs the uninstrumented baseline, percent.
    pub overhead_pct: f64,
}

/// One controller window in the convergence measurement.
#[derive(Debug, Clone)]
pub struct ConvergencePoint {
    /// Window index (1-based).
    pub window: usize,
    /// Hot site's shift after the window's retune.
    pub hot_shift: u32,
    /// Cold site's shift after the window's retune.
    pub cold_shift: u32,
    /// Ring-write spend this window as a percent of one core, computed
    /// from admitted events × the estimated per-event cost.
    pub spend_pct: f64,
}

/// One injected incident's outcome in the anomaly campaign.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The watch this incident targets (postmortems must name it).
    pub trigger: &'static str,
    /// Postmortems naming the expected trigger at the incident's poll.
    pub expected_fired: usize,
    /// All postmortems emitted at the incident's poll (side effects of a
    /// scenario may legitimately trip a second watch).
    pub total_fired: usize,
    /// Events captured in the expected postmortem's recorder tail.
    pub events: usize,
    /// Causal traces reconstructed from that tail.
    pub traces: usize,
    /// True when some causal trace in the postmortem crosses a thread
    /// boundary and walks `net.dispatch` → `net.frame.*`.
    pub cross_worker_trace: bool,
    /// The `sysfault` digest the postmortem carries, if the scenario ran
    /// under an active fault plan.
    pub fault_digest: Option<u64>,
}

fn sweep_config(scale: Scale) -> SweepConfig {
    let mut cfg = match scale {
        Scale::Quick => SweepConfig::quick(),
        Scale::Full => SweepConfig::full(),
    };
    if matches!(scale, Scale::Full) {
        // Match E11's pass length: the adaptive arm needs several 10 ms
        // controller windows per pass, or its convergence transient (the
        // pre-fan-out first window) dominates the measurement.
        cfg.packets *= 2;
    }
    cfg
}

fn reps(scale: Scale) -> usize {
    // Rounds of the paired measurement (forced odd for a true median).
    match scale {
        Scale::Quick => 3,
        Scale::Full => 9,
    }
}

/// Runs the router stream once and returns packets/sec.
fn router_pps(cfg: &SweepConfig, frames: &[Vec<u8>], instrument: bool) -> f64 {
    let (trie, _) = build_tables(cfg.routes);
    let rc = RouterConfig {
        workers: 2,
        batch_size: 64,
        queue_depth: cfg.queue_depth,
        instrument,
        ..RouterConfig::default()
    };
    let (report, elapsed) = run_stream(trie, PORTS, rc, frames);
    #[allow(clippy::cast_precision_loss)]
    let pps = report.packets() as f64 / elapsed.as_secs_f64().max(1e-9);
    pps
}

/// The sampled-tracing overhead curve: fixed shifts, then adaptive.
/// Paired design (like E11): every round measures all arms back to back
/// and each arm reports its median across rounds, so host drift cancels
/// out of the cross-arm ratios instead of masquerading as sampling cost.
#[must_use]
pub fn overhead_curve(scale: Scale) -> Vec<OverheadPoint> {
    let cfg = sweep_config(scale);
    let frames = frame_stream(&cfg);
    let rounds = reps(scale) | 1;

    let arms: Vec<(String, bool, Option<u32>)> =
        std::iter::once(("uninstrumented".into(), false, None))
            .chain(
                [0u32, 4, 8]
                    .into_iter()
                    .map(|s| (format!("shift {s} (1-in-{})", 1u32 << s), true, Some(s))),
            )
            .chain(std::iter::once(("adaptive".into(), true, None)))
            .collect();

    let measure_arm = |instrument: bool, shift: Option<u32>| -> f64 {
        let mode = if instrument {
            Mode::Sampled
        } else {
            Mode::Disabled
        };
        sysobs::set_mode(mode);
        sampler().set_fixed_shift(if instrument { shift } else { None });
        sampler().reset_sites();
        sysobs::clear();
        let pps = router_pps(&cfg, &frames, instrument);
        sysobs::set_mode(Mode::Disabled);
        pps
    };

    // Warmup pass, then paired rounds.
    let _ = measure_arm(false, None);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); arms.len()];
    for _ in 0..rounds {
        for (i, (_, instrument, shift)) in arms.iter().enumerate() {
            samples[i].push(measure_arm(*instrument, *shift));
        }
    }
    sampler().set_fixed_shift(None);

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let baseline = median(&mut samples[0]);
    arms.iter()
        .enumerate()
        .map(|(i, (label, _, _))| {
            let pps = if i == 0 {
                baseline
            } else {
                median(&mut samples[i])
            };
            let overhead_pct = if baseline <= 0.0 || i == 0 {
                0.0
            } else {
                (baseline - pps) / baseline * 100.0
            };
            OverheadPoint {
                label: label.clone(),
                pps,
                overhead_pct,
            }
        })
        .collect()
}

/// Drives a synthetic hot site and cold site through the controller for
/// `windows` retune windows and reports the shift trajectory.
#[must_use]
pub fn convergence(windows: usize) -> Vec<ConvergencePoint> {
    static HOT: SampleSite = SampleSite::new();
    static COLD: SampleSite = SampleSite::new();
    // 10 ms synthetic window; the hot site models ~20M calls/s, the cold
    // site ~20K/s — the E11 router and watchdog rates, roughly.
    const WINDOW_NS: u64 = 10_000_000;
    const HOT_CALLS: u64 = 200_000;
    const COLD_CALLS: u64 = 200;

    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Sampled);
    sampler().set_fixed_shift(None);
    // This driver owns the window boundaries; a wall-clock retune firing
    // mid-drive on a slow host would consume the deltas mid-window.
    sampler().set_auto_tick(false);
    sampler().reset_sites();
    let mut out = Vec::with_capacity(windows);
    let (mut hot_adm, mut cold_adm) = (0u64, 0u64);
    for w in 0..windows {
        for _ in 0..HOT_CALLS {
            let _ = sysobs::sampler::admit(&HOT, "e16.synthetic.hot");
        }
        for _ in 0..COLD_CALLS {
            let _ = sysobs::sampler::admit(&COLD, "e16.synthetic.cold");
        }
        sampler().retune(WINDOW_NS);
        let admitted = (HOT.admitted() - hot_adm) + (COLD.admitted() - cold_adm);
        (hot_adm, cold_adm) = (HOT.admitted(), COLD.admitted());
        #[allow(clippy::cast_precision_loss)]
        let spend_pct = admitted as f64 * DEFAULT_EVENT_COST_NS as f64 / WINDOW_NS as f64 * 100.0;
        out.push(ConvergencePoint {
            window: w + 1,
            hot_shift: HOT.shift(),
            cold_shift: COLD.shift(),
            spend_pct,
        });
    }
    sampler().set_auto_tick(true);
    sysobs::set_mode(prev);
    out
}

/// TCP frames routed by [`ct_table`] (same addressing as the E9b campaign).
fn routable_frames(n: usize, flags: u8) -> Vec<Vec<u8>> {
    (0..n)
        .map(|f| {
            #[allow(clippy::cast_possible_truncation)]
            let (src, dst) = (
                [172, 16, (f >> 8) as u8, f as u8],
                [10 + (f % 3) as u8, (f >> 8) as u8, f as u8, 1],
            );
            #[allow(clippy::cast_possible_truncation)]
            let sport = 1024 + (f as u16 & 0x3FFF);
            PacketBuilder::tcp()
                .src_ip(src)
                .dst_ip(dst)
                .src_port(sport)
                .dst_port(443)
                .tcp_flags(flags)
                .build()
        })
        .collect()
}

fn has_cross_worker_trace(pm: &Postmortem) -> bool {
    pm.causal_traces().iter().any(|t| {
        t.crosses_threads()
            && t.path.iter().any(|n| n == "net.dispatch")
            && t.path.iter().any(|n| n.starts_with("net.frame."))
    })
}

/// Runs one scenario's workload, polls the engine, and folds the fired
/// postmortems into an outcome. A trailing quiet poll re-arms every
/// delta watch before the next incident.
fn incident(
    eng: &mut TriggerEngine,
    trigger: &'static str,
    digest: Option<u64>,
    workload: impl FnOnce(),
) -> ScenarioOutcome {
    workload();
    let pms = eng.poll(digest);
    let expected: Vec<&Postmortem> = pms.iter().filter(|p| p.trigger == trigger).collect();
    let head = expected.first();
    let outcome = ScenarioOutcome {
        trigger,
        expected_fired: expected.len(),
        total_fired: pms.len(),
        events: head.map_or(0, |p| p.events.len()),
        traces: head.map_or(0, |p| p.causal_traces().len()),
        cross_worker_trace: head.is_some_and(|p| has_cross_worker_trace(p)),
        fault_digest: head.and_then(|p| p.fault_digest),
    };
    let _ = eng.poll(None); // quiet poll: deltas are zero, watches re-arm
    outcome
}

/// The seeded anomaly campaign: five incidents, one per standard watch.
/// Deterministic — head sampling is pinned to 1-in-1 for the duration so
/// every dispatched batch roots a causal trace.
#[must_use]
pub fn campaign(scale: Scale) -> Vec<ScenarioOutcome> {
    let flows = match scale {
        Scale::Quick => 96,
        Scale::Full => 512,
    };
    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Sampled);
    sampler().set_fixed_shift(Some(0));
    sampler().reset_sites();
    sysobs::clear();
    sysfault::publish_active_digest(0);

    let mut eng = TriggerEngine::standard();
    let _ = eng.poll(None); // baseline: every delta watch arms
    let mut out = Vec::with_capacity(5);

    // 1. Epoch-advancement lag: a pinned reader blocks `try_advance`, each
    //    blocked attempt counts one `mem.epoch.advance_stalls`.
    out.push(incident(&mut eng, "epoch-advance-lag", None, || {
        let domain: Arc<Domain<u64>> = Arc::new(Domain::new());
        let handle = domain.register();
        let guard = handle.pin();
        let _ = domain.try_advance(); // advances past the pinned epoch
        for _ in 0..24 {
            let _ = domain.try_advance(); // blocked: the reader lags behind
        }
        drop(guard);
    }));

    // 2. Watchdog reap: an overdue Recv with a deadline; the sweep reaps it
    //    and bumps `kernel.watchdog_reaps`. A few traced round trips first
    //    so the postmortem tail holds linked send/recv spans.
    out.push(incident(&mut eng, "watchdog-fired", None, || {
        let mut k = Kernel::new(Box::new(FreeListHeap::new(1 << 20)));
        let server = k.spawn_process();
        let client = k.spawn_process();
        let req_s = k.create_endpoint(server).expect("endpoint");
        let req_c = k
            .grant_cap(server, req_s, client, Rights::SEND)
            .expect("grant");
        let rep_s = k.create_endpoint(server).expect("endpoint");
        let rep_c = k
            .grant_cap(server, rep_s, client, Rights::RECV)
            .expect("grant");
        for _ in 0..4 {
            k.ping_pong(client, server, (req_s, req_c), (rep_s, rep_c), 16)
                .expect("round trip");
        }
        k.set_ipc_deadline(server, Some(500)).expect("live pid");
        k.syscall(server, Syscall::Recv { cap: req_s })
            .expect("recv posts");
        for _ in 0..40 {
            k.schedule(); // drives cycles past the deadline; sweep reaps
        }
    }));

    // 3. Backpressure stall: one worker, depth-1 queue, batch size 1, and
    //    injected worker stalls — the dispatcher requeues constantly. The
    //    plan's log digest is published so the postmortem links back to it.
    let stall_plan =
        FaultPlan::new(CAMPAIGN_SEED).with_site(SITE_NET_WORKER_STALL, Schedule::Probability(0.5));
    let stall_digest = {
        let rc = RouterConfig {
            workers: 1,
            batch_size: 1,
            queue_depth: 1,
            fault_plan: Some(stall_plan),
            ..RouterConfig::default()
        };
        let frames = routable_frames(flows * 4, TCP_ACK);
        let (report, _) = run_stream(ct_table(), CT_PORTS, rc, &frames);
        report.faults.dispatch_digest ^ report.faults.worker_digest
    };
    sysfault::publish_active_digest(stall_digest);
    out.push(incident(
        &mut eng,
        "backpressure-stall",
        sysfault::active_digest(),
        || {},
    ));
    sysfault::publish_active_digest(0);

    // 4. SYN-cookie engagement: a flood of distinct half-opens through a
    //    shard with a tiny backlog. Kept under 64 frames so the flood's own
    //    drops cannot double as a drop-rate spike.
    out.push(incident(&mut eng, "syn-cookie-engaged", None, || {
        let rc = RouterConfig {
            workers: 2,
            queue_depth: 64,
            conntrack: Some(ConntrackConfig {
                max_flows: 256,
                syn_backlog: 8,
                ..ConntrackConfig::default()
            }),
            ..RouterConfig::default()
        };
        let frames = routable_frames(48, TCP_SYN);
        let _ = run_stream(ct_table(), CT_PORTS, rc, &frames);
    }));

    // 5. Drop-rate spike — and the causal-trace acceptance check: benign
    //    traffic plus a burst of malformed frames; the postmortem's tail
    //    must reconstruct dispatcher → worker paths for sampled packets.
    out.push(incident(&mut eng, "drop-rate-spike", None, || {
        let rc = RouterConfig {
            workers: 2,
            queue_depth: 64,
            ..RouterConfig::default()
        };
        let mut frames = routable_frames(flows, TCP_ACK);
        frames.extend((0..200).map(|i| vec![0x45u8; 8 + (i % 4)])); // truncated IPv4
        let _ = run_stream(ct_table(), CT_PORTS, rc, &frames);
    }));

    sampler().set_fixed_shift(None);
    sysobs::set_mode(prev);
    out
}

/// The CI smoke path: one seeded drop-rate spike under sampled mode.
/// Returns the fired postmortem's JSON for the artifact check, or `None`
/// if the watch did not fire (CI fails on that).
#[must_use]
pub fn smoke_postmortem() -> Option<String> {
    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Sampled);
    sampler().set_fixed_shift(Some(0));
    sampler().reset_sites();
    sysobs::clear();

    let mut eng = TriggerEngine::standard();
    let _ = eng.poll(None); // baseline
    let rc = RouterConfig {
        workers: 2,
        queue_depth: 64,
        ..RouterConfig::default()
    };
    let mut frames = routable_frames(96, TCP_ACK);
    frames.extend((0..200).map(|i| vec![0x45u8; 8 + (i % 4)])); // truncated IPv4
    let _ = run_stream(ct_table(), CT_PORTS, rc, &frames);
    let pms = eng.poll(None);

    sampler().set_fixed_shift(None);
    sysobs::set_mode(prev);
    pms.into_iter()
        .find(|p| p.trigger == "drop-rate-spike")
        .map(|p| p.to_json())
}

/// Runs E16 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16 — always-on observability: sampling cost, convergence, postmortems",
        &["phase", "case", "result", "detail"],
    );

    for p in overhead_curve(scale) {
        t.row(vec![
            "overhead".into(),
            p.label,
            fmt_rate(p.pps),
            format!("{:+.1}% vs uninstrumented", p.overhead_pct),
        ]);
    }

    let conv = convergence(3);
    for c in &conv {
        t.row(vec![
            "convergence".into(),
            format!("window {}", c.window),
            format!("hot shift {}, cold shift {}", c.hot_shift, c.cold_shift),
            format!(
                "ring-write spend {:.2}% of core (budget {:.2}%)",
                c.spend_pct,
                sampler().budget_pct()
            ),
        ]);
    }

    for s in campaign(scale) {
        let result = if s.expected_fired == 1 {
            "1 postmortem ✓".to_string()
        } else {
            format!("{} postmortems ✗", s.expected_fired)
        };
        let mut detail = format!("{} events, {} causal traces", s.events, s.traces);
        if s.trigger == "drop-rate-spike" {
            detail.push_str(if s.cross_worker_trace {
                ", cross-worker trace ✓"
            } else {
                ", cross-worker trace MISSING"
            });
        }
        if let Some(d) = s.fault_digest {
            detail.push_str(&format!(", fault digest {d:#x}"));
        }
        t.row(vec!["campaign".into(), s.trigger.into(), result, detail]);
    }

    if let Some(last) = conv.last() {
        t.note(format!(
            "convergence drives a synthetic hot site (~20M calls/s) and cold site (~20K/s) \
             through the adaptive controller; final shifts {} / {} (max {MAX_SHIFT}) keep the \
             hot path sparse while cold anomalies record every occurrence.",
            last.hot_shift, last.cold_shift
        ));
    }
    t.note(format!(
        "campaign: five seeded incidents against the standard watch set, head sampling pinned \
         to 1-in-1, seed {CAMPAIGN_SEED:#x}. Each incident must yield exactly one postmortem \
         naming its trigger; the drop-spike postmortem must reconstruct a dispatcher→worker \
         causal trace from the frozen ring alone.",
    ));
    t
}
