//! E5 — Application constraint checking (Challenge 1).
//!
//! The kernel's invariants are expressed as contracts and discharged by the
//! prover; seeded-bug variants must be refuted with concrete
//! counterexamples. This is the BitC workflow the paper proposes, end to
//! end: write the invariant next to the code, let the tool check it.

use super::{fmt_ns, Scale, Table};
use bitc_verify::vcgen::{verify_procedure, VcOutcome};
use microkernel::invariants::{invariant_suite, seeded_bug_suite};
use std::time::Instant;

/// Runs E5 and renders the table.
#[must_use]
pub fn run(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E5 — kernel invariants discharged by the prover (and seeded bugs refuted)",
        &[
            "invariant",
            "VCs",
            "outcome",
            "decision time",
            "counterexample",
        ],
    );
    for (suite, expect_proof) in [(invariant_suite(), true), (seeded_bug_suite(), false)] {
        for proc in suite {
            let t0 = Instant::now();
            let results = verify_procedure(&proc);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let all_proved = results.iter().all(|(_, o)| *o == VcOutcome::Proved);
            let first_cex = results.iter().find_map(|(_, o)| match o {
                VcOutcome::Refuted(m) => Some(m.clone()),
                _ => None,
            });
            let outcome = if all_proved {
                "proved".to_owned()
            } else if first_cex.is_some() {
                "refuted".to_owned()
            } else {
                "unknown".to_owned()
            };
            debug_assert_eq!(all_proved, expect_proof, "{}", proc.name);
            t.row(vec![
                proc.name.clone(),
                results.len().to_string(),
                outcome,
                fmt_ns(ns),
                first_cex.unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t.note("paper claim: the bread-and-butter systems invariants (rights monotonicity, bounds, state machines) sit inside a decidable fragment a small automated prover dispatches in microseconds.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_proves_all_real_invariants_and_refutes_all_bugs() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows[..6] {
            assert_eq!(row[2], "proved", "{} must prove", row[0]);
        }
        for row in &t.rows[6..] {
            assert_eq!(row[2], "refuted", "{} must be refuted", row[0]);
            assert_ne!(row[4], "-", "{} must carry a counterexample", row[0]);
        }
    }
}
