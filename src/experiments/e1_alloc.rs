//! E1 — Allocator throughput and pause tails (Fallacy 1 / Challenge 2).
//!
//! The paper's claim: systems code cannot accept GC's costs and
//! unpredictability, and region/manual disciplines are both fast *and*
//! predictable. This experiment runs the identical allocation trace through
//! six managers and reports throughput plus the pause distribution.

use super::{fmt_rate, Scale, Table};
use sysmem::arena::RegionHeap;
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::rc::RcHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::workload::{
    run_region_workload, run_workload, Lifetime, ReclaimStrategy, WorkloadReport, WorkloadSpec,
};
use sysmem::Manager;

fn spec(scale: Scale) -> WorkloadSpec {
    WorkloadSpec {
        ops: match scale {
            Scale::Quick => 20_000,
            Scale::Full => 400_000,
        },
        min_words: 2,
        max_words: 32,
        nrefs: 2,
        link_prob: 0.2,
        lifetime: Lifetime::Exponential { mean_ops: 64.0 },
        seed: 0x51A5_u64 ^ 0x9e37_79b9,
    }
}

fn heap_bytes(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1 << 22,
        Scale::Full => 1 << 26,
    }
}

fn add_row(t: &mut Table, r: &WorkloadReport, strategy: &str) {
    t.row(vec![
        r.manager.to_owned(),
        strategy.to_owned(),
        fmt_rate(r.throughput()),
        format!("{}", r.op_pauses.percentile_ns(0.50)),
        format!("{}", r.op_pauses.percentile_ns(0.99)),
        format!("{}", r.op_pauses.max_ns()),
        r.collections.to_string(),
        r.integrity_errors.to_string(),
    ]);
}

/// Runs E1 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let spec = spec(scale);
    let bytes = heap_bytes(scale);
    let mut t = Table::new(
        "E1 — allocator throughput and pause tails (identical trace, six managers)",
        &[
            "manager",
            "reclaim",
            "alloc rate",
            "p50 ns",
            "p99 ns",
            "max ns",
            "GCs",
            "integrity errs",
        ],
    );

    // Each manager's run is hermetic: construct, drive, read stats, drop.
    // Keeping six 64 MB heaps resident simultaneously perturbs the later
    // runs (first-touch faulting at high RSS skews pauses by 10x+), so the
    // scopes below are load-bearing experimental methodology.
    {
        let mut region = RegionHeap::new(bytes);
        let r = run_region_workload(&mut region, &spec, 256);
        add_row(&mut t, &r, "region scope");
    }
    {
        let mut freelist = FreeListHeap::new(bytes);
        let r = run_workload(&mut freelist, &spec, ReclaimStrategy::ExplicitFree);
        add_row(&mut t, &r, "explicit free");
    }
    let cyclic = {
        let mut rc = RcHeap::new(bytes);
        let r = run_workload(&mut rc, &spec, ReclaimStrategy::RootRelease);
        add_row(&mut t, &r, "refcount");
        rc.cyclic_garbage_bytes()
    };
    {
        let mut ms = MarkSweepHeap::new(bytes);
        let r = run_workload(&mut ms, &spec, ReclaimStrategy::RootRelease);
        add_row(&mut t, &r, "trace (mark-sweep)");
    }
    {
        let mut ss = SemiSpaceHeap::new(bytes * 2);
        let r = run_workload(&mut ss, &spec, ReclaimStrategy::RootRelease);
        add_row(&mut t, &r, "trace (semispace)");
    }
    // Nursery must hold several object lifetimes' worth of allocation or
    // everything survives to promotion and the generational hypothesis
    // never gets to act; 1/16 of the heap is the classic ratio.
    let barrier_hits = {
        let mut generational = GenerationalHeap::new(bytes, (bytes / 16).max(1 << 16));
        let r = run_workload(&mut generational, &spec, ReclaimStrategy::RootRelease);
        add_row(&mut t, &r, "trace (generational)");
        generational.stats().barrier_hits
    };
    t.note(format!(
        "refcount cyclic garbage left behind: {cyclic} bytes (reclaimed by trial deletion on demand)"
    ));
    t.note(format!("generational write-barrier hits: {barrier_hits}"));
    t.note("paper claim: manual/region are fast with flat tails; tracing GCs pay pause spikes (max ≫ p50).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_clean_at_quick_scale() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        // No manager may corrupt data.
        for row in &t.rows {
            assert_eq!(row[7], "0", "integrity errors in {}", row[0]);
        }
    }
}
