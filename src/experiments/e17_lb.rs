//! E17 — L4 load balancing: NAT rewrite cost, churn immunity, failover.
//!
//! The `sysnet::lb` layer on top of E14's conntrack: weighted rendezvous
//! backend selection, in-place NAT rewrite with RFC 1624 incremental
//! checksum fixup, and active health checks with drain/eject semantics.
//! Three questions, one table plus a failover block:
//!
//! * **rewrite cost** — what does per-packet NAT rewriting cost against
//!   the no-LB tracked control? (the baseline vs steady rows; the
//!   acceptance floor is ≥ 90 % of control pps);
//! * **churn immunity** — does a port-scan storm or a slowloris
//!   population dent benign VIP delivery? (the storm/slowloris rows);
//! * **failover** — after a scripted backend death (a seeded `sysfault`
//!   probe site, so the run replays), how fast does goodput return?
//!   (the failover notes; the budget is one health-probe interval).
//!
//! `examples/lb_bench.rs` runs the same harness with a counting allocator
//! and records `BENCH_lb.json`; this table is the EXPERIMENTS.md rendering.

use super::{fmt_ns, fmt_rate, Scale, Table};
use sysnet::lbbench::{run_lb_bench, FailoverConfig, LbBenchConfig, LbPoint};

fn config_for(scale: Scale) -> LbBenchConfig {
    match scale {
        // Smaller than the bench's own quick mode: this also runs inside
        // `cargo test` at debug optimization.
        Scale::Quick => LbBenchConfig {
            flows: 1_000,
            min_benign_packets: 10_000,
            slowloris_flows: 2_000,
            slowloris_rounds: 48,
            workers: 2,
            trials: 1,
            ..LbBenchConfig::quick()
        },
        Scale::Full => LbBenchConfig::full(),
    }
}

fn row_of(t: &mut Table, p: &LbPoint) {
    t.row(vec![
        p.scenario.name().to_string(),
        format!("{}", p.flows),
        fmt_rate(p.pps),
        fmt_ns(p.p50_ns),
        fmt_ns(p.p99_ns),
        format!("{:.1}%", 100.0 * p.benign_delivery()),
        if p.storm_sent == 0 {
            "—".to_string()
        } else {
            format!("{}/{}", p.storm_forwarded, p.storm_sent)
        },
        p.assigned.to_string(),
        p.rewrites_to_backend.to_string(),
        p.peak_flows.to_string(),
    ]);
}

/// Runs E17 and renders the table.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let cfg = config_for(scale);
    let report = run_lb_bench(&cfg, &FailoverConfig::default());
    let mut t = Table::new(
        "E17 — L4 load balancing: rewrite cost, churn, failover",
        &[
            "scenario",
            "flows",
            "pps",
            "p50",
            "p99",
            "benign delivery",
            "storm fwd",
            "assigned",
            "rewrites",
            "peak flows",
        ],
    );
    for p in &report.scenarios {
        row_of(&mut t, p);
    }
    t.note(format!(
        "{} workers over {} backends (weights follow the pool config); every scenario except \
         the control runs the full VIP → backend NAT rewrite + TTL path on each forwarded \
         packet.",
        report.workers, report.backends,
    ));
    if let Some(ratio) = report.rewrite_pps_ratio() {
        t.note(format!(
            "headline: the rewriting steady state sustains {:.1}% of the no-LB control's pps \
             (acceptance floor 90% at full scale; the quick run is noisy).",
            100.0 * ratio
        ));
    }
    let f = &report.failover;
    t.note(format!(
        "failover: a seeded probe-site death orphaned {} of {} flows ({} slots ejected, twins \
         included); goodput {:.0}% → {:.0}% → {:.0}% pre/during/post, recovered in {} \
         (budget: one probe interval, {}).",
        f.victims,
        f.flows,
        f.flows_ejected,
        100.0 * f.goodput_pre,
        100.0 * f.goodput_during,
        100.0 * f.goodput_post,
        f.recovery_ns.map_or_else(|| "∞".to_string(), fmt_ns),
        fmt_ns(f.probe_interval_ns),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_renders_all_scenarios_and_the_failover_note() {
        let t = run(Scale::Quick);
        // The control, the steady state, the storm, and the slowloris rows.
        assert_eq!(t.rows.len(), 4);
        assert!(t.notes.iter().any(|n| n.contains("headline")));
        assert!(t.notes.iter().any(|n| n.contains("failover")));
        assert!(t.notes.iter().any(|n| n.contains("recovered in")));
    }
}
