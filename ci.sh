#!/usr/bin/env sh
# Repo CI: build, test, lint. Run from the repo root.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
