#!/usr/bin/env sh
# Repo CI: format, build, test, lint. Run from the repo root.
set -eu

cargo fmt --all -- --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Data-plane smoke: the end-to-end example (asserts conservation and the
# canonicalization fix), the E10/E12 experiments at quick scale, the flow
# cache + pool differential suite, and the bench with its steady-state
# allocs/packet ≈ 0 assertion. router_bench --quick never rewrites the
# recorded BENCH_router.json.
cargo run --release --example packet_router
cargo run --release --example experiments -- e10 e12
cargo test -q -p sysnet --test cache_properties
cargo run --release --example router_bench -- --quick

# Observability smoke: E11 at quick scale, the obs bench without the budget
# gate (a loaded CI box can't referee a 5% throughput claim — obs_bench
# --quick never rewrites BENCH_obs.json), and the flight-recorder dump
# (asserts non-empty trace, replayable fault + shape digests).
cargo run --release --example experiments -- e11
cargo run --release --example obs_bench -- --quick
cargo run --release --example flight_recorder > /dev/null

# Concurrency-checker smoke: the syscheck litmus suite, the shimmed model
# tests next to the code they check (sysconc primitives, router
# dispatch/recycle, kernel IPC/watchdog interleavings), and E13 at quick
# scale — DFS + seeded-random rediscovery of both seeded bugs, shrunk to
# minimal preemption traces. All deterministic; no wall-clock stress.
cargo test -q -p syscheck
cargo test -q -p sysconc checker_
cargo test -q -p sysnet --test router_model
cargo test -q -p microkernel --test ipc_interleavings
cargo run --release --example experiments -- e13

# Conntrack smoke: the hostile-segment + differential property suite, the
# adversarial TcpView parse suite, the shared-gauge syscheck models, the
# E14/E9b experiments at quick scale, and the bench smoke — which asserts
# the capacity bound and < 0.05 steady-state allocs/packet but never
# rewrites the recorded BENCH_conntrack.json.
cargo test -q -p sysnet --test conntrack_properties
cargo test -q -p sysrepr --test tcp_adversarial
cargo test -q -p sysnet --test conntrack_model
cargo run --release --example experiments -- e14 e9net
cargo run --release --example conntrack_bench -- --quick

# Postmortem smoke: seed a drop-rate spike under sampled mode (live drop
# counters, the standard watch set, a frozen flight-recorder capture),
# then check the emitted artifact is valid JSON naming its trigger and
# carrying causal traces, and that the recorded BENCH_obs.json is the
# schema-2 form with the `sampled` arm whose budget obs_bench enforces.
# E16 at quick scale covers the rest of the campaign (exactly one
# postmortem per incident, dispatcher→worker trace reconstruction).
cargo run --release --example obs_bench -- --postmortem-smoke
python3 - <<'EOF'
import json
pm = json.load(open("POSTMORTEM_smoke.json"))
assert pm["postmortem"] == 1, pm
assert pm["trigger"] == "drop-rate-spike", pm["trigger"]
assert pm["event_count"] > 0 and pm["events"], "postmortem must carry the recorder tail"
assert pm["causal_traces"], "postmortem must carry causal traces"
assert any(k.startswith("net.drop.") for k in pm["metrics"]["counters"]), \
    "metrics snapshot must hold the drop counters that fired the watch"
bench = json.load(open("BENCH_obs.json"))
assert bench["schema"] == 2, bench["schema"]
assert {p["mode"] for p in bench["router"]} >= {"uninstrumented", "disabled", "counters", "sampled", "tracing"}
assert {p["mode"] for p in bench["ipc"]} >= {"disabled", "counters", "sampled", "tracing"}
EOF
rm -f POSTMORTEM_smoke.json
cargo test -q --test obs_model --test obs_sampler_props --test obs_postmortem
cargo run --release --example experiments -- e16

# Route-churn smoke: the epoch-reclamation models (safe domain exhaustive
# at preemption bound 2; the seeded premature free found and shrunk), the
# COW publication-visibility models, the epoch unit tests, and E15 at
# quick scale — churn A/B both route modes plus the model rows. The
# recorded BENCH_router.json is only rewritten by a full router_bench run,
# never here.
cargo test -q -p sysmem --test epoch_model
cargo test -q -p sysmem --lib epoch
cargo test -q -p sysnet --test cowtrie_model
cargo run --release --example experiments -- e15

# Load-balancer smoke: the hairpin/NAT-twin property suite (rides in
# conntrack_properties above), the gauge-conservation syscheck model under
# concurrent twin-insert + ejection, E17 at quick scale, and the bench
# smoke — failover recovery and allocs are asserted at every scale, but
# the ≥90% rewrite-ratio floor only on full runs (tiny CI streams are too
# noisy to referee it) and lb_bench --quick never rewrites the recorded
# BENCH_lb.json. The recorded artifact must keep its schema-1 shape with
# all four scenarios and a recovery within one probe interval.
cargo test -q -p sysnet --test lb_model
cargo run --release --example experiments -- e17
cargo run --release --example lb_bench -- --quick
python3 - <<'EOF'
import json
bench = json.load(open("BENCH_lb.json"))
assert bench["schema"] == 1, bench["schema"]
names = {s["name"] for s in bench["scenarios"]}
assert names >= {"baseline_no_lb", "steady", "portscan_storm", "slowloris"}, names
assert bench["headline"]["rewrite_pps_ratio"] >= 0.90, bench["headline"]
f = bench["failover"]
assert f["recovery_ns"] <= f["probe_interval_ns"], f
assert all(s["steady_allocs_per_packet"] < 0.05 for s in bench["scenarios"]), bench["scenarios"]
EOF

# Scenario-campaign smoke: the sysscenario suite (engine + fuzzer units,
# the adversarial dnat/snat suite, the replay-determinism properties),
# E18 at quick scale, and the campaign bench in quick mode — which
# asserts the triple-run replay check, every scenario/regression oracle,
# and that the packet fuzzer rediscovers the seeded trusting-parser bug
# and shrinks it, but never rewrites the recorded BENCH_scenario.json.
# Every crash artifact the quick run wrote must reproduce through its
# embedded --repro path; artifacts are scratch, so they are cleaned up.
cargo test -q -p sysscenario
cargo run --release --example experiments -- e18
cargo run --release --example scenario_bench -- --quick
for f in CRASH_*.json; do
    [ -e "$f" ] || continue
    cargo run --release --example scenario_bench -- --repro "$f"
done
rm -f CRASH_*.json
python3 - <<'EOF'
import json
bench = json.load(open("BENCH_scenario.json"))
assert bench["bench"] == "scenario" and bench["schema"] == 1, bench
names = {s["name"] for s in bench["scenarios"]}
assert names >= {"flash-crowd", "route-flap-storm", "cascading-backend-death",
                 "slowloris-trickle", "mixed-attack-benign"}, names
pins = {s["name"] for s in bench["regressions"]}
assert pins >= {"regress-ttl-loop", "regress-noop-insert-cache-nuke",
                "regress-premature-epoch-free", "regress-half-pair-nat",
                "regress-parser-overread"}, pins
rows = bench["scenarios"] + bench["regressions"]
assert all(r["replay_verified"] for r in rows), "a scenario did not replay"
assert all(r["expectations_ok"] for r in rows), "a pinned oracle failed"
assert {f["target"] for f in bench["fuzz"]} == {"packet", "dns", "bitc"}
h = bench["headline"]
assert h["all_expectations_pass"] and h["all_replays_verified"] and h["seeded_bug_found"], h
EOF
