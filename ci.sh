#!/usr/bin/env sh
# Repo CI: build, test, lint. Run from the repo root.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Data-plane smoke: the end-to-end example (asserts conservation and the
# canonicalization fix) and the E10 experiment at quick scale. router_bench
# --quick never rewrites the recorded BENCH_router.json.
cargo run --release --example packet_router
cargo run --release --example experiments -- e10
cargo run --release --example router_bench -- --quick
