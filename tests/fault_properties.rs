//! Property tests: arbitrary fault plans against the kernel and a
//! shadow-modelled heap.
//!
//! Each case derives a `FaultPlan` from a proptest-generated seed and runs
//! it against the real recovery machinery. Three properties must hold no
//! matter what the plan injects:
//!
//! * **capability monotonicity** — a process's authority set never grows
//!   except through an explicit grant, faults or no faults;
//! * **no-leak accounting** — once the campaign quiesces, kernel heap
//!   occupancy is back at (or, after shedding, below) its post-setup
//!   baseline: every in-flight message buffer was released on delivery,
//!   reap, or cancellation;
//! * **zero-on-alloc** — fresh allocations read all-zero even when the
//!   block being recycled was poisoned on free.
//!
//! On failure the case does not just report the generated seed: it runs
//! `sysfault::shrink::minimize` against the violated property to reduce the
//! plan to a minimal replayable form (fewest sites, schedules pinned to
//! `OneShotAt`) and panics with that plan, so the bug reproduces from a
//! one-line constructor instead of a campaign-sized schedule.

use std::collections::HashMap;

use microkernel::kernel::{Kernel, Syscall, SITE_IPC_DROP, SITE_KERNEL_OOM};
use microkernel::rights::Rights;
use proptest::prelude::*;
use sysfault::{shrink, FaultPlan, Schedule, SharedInjector};
use sysmem::faulty::{FaultyHeap, SITE_OOM};
use sysmem::freelist::FreeListHeap;
use sysmem::{object_bytes, Handle, Manager};

/// SplitMix64 step: the test's own source of derived randomness, so plans
/// and workloads are pure functions of the proptest seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an arbitrary plan: each known site independently absent or given
/// a random schedule of a random kind.
fn plan_from_seed(seed: u64) -> FaultPlan {
    let mut s = seed;
    let mut plan = FaultPlan::new(seed);
    for site in [SITE_IPC_DROP, SITE_KERNEL_OOM, SITE_OOM] {
        let schedule = match mix(&mut s) % 4 {
            0 => None,
            1 => Some(Schedule::EveryNth(1 + mix(&mut s) % 8)),
            #[allow(clippy::cast_precision_loss)]
            2 => Some(Schedule::Probability((mix(&mut s) % 30) as f64 / 100.0)),
            _ => Some(Schedule::OneShotAt(mix(&mut s) % 24)),
        };
        if let Some(sched) = schedule {
            plan.set_site(site, sched);
        }
    }
    plan
}

/// Runs one kernel campaign under `plan`; returns a violation description
/// if capability monotonicity or heap accounting breaks, `None` when the
/// kernel survives intact. Used both as the property and as the shrinker's
/// failure oracle.
fn kernel_violation(plan: &FaultPlan) -> Option<String> {
    let injector = SharedInjector::new(plan.clone());
    let heap = FaultyHeap::new(Box::new(FreeListHeap::new(1 << 18)), injector);
    let mut k = Kernel::new(Box::new(heap));
    k.set_injector(
        SharedInjector::new(plan.clone()), // kernel sites get their own stream
    );

    let server = k.spawn_process();
    let client = k.spawn_process();
    k.set_essential(server, true).expect("live pid");
    k.set_essential(client, true).expect("live pid");
    let req_s = k.create_endpoint(server).expect("endpoint");
    let req_c = k
        .grant_cap(server, req_s, client, Rights::SEND)
        .expect("grant");
    let rep_s = k.create_endpoint(server).expect("endpoint");
    let rep_c = k
        .grant_cap(server, rep_s, client, Rights::RECV)
        .expect("grant");
    for _ in 0..4 {
        let p = k.spawn_process();
        let _ = k.syscall(p, Syscall::AllocPage { words: 16 });
    }

    let client_authority = k.authority(client);
    let server_authority = k.authority(server);
    let baseline = k.heap_live_bytes();

    for _ in 0..20 {
        let _ = k.ping_pong_resilient(client, server, (req_s, req_c), (rep_s, rep_c), 4, 800, 3);
    }
    // Quiesce: enough watchdog sweeps to reap anything a failed final
    // attempt left blocked (deadlines are still armed from the campaign).
    for _ in 0..100 {
        k.schedule();
    }

    if !k.authority(client).is_subset(&client_authority) {
        return Some("client authority grew without a grant".into());
    }
    if !k.authority(server).is_subset(&server_authority) {
        return Some("server authority grew without a grant".into());
    }
    let after = k.heap_live_bytes();
    if after > baseline {
        return Some(format!(
            "kernel heap leaked: {baseline} bytes live at setup, {after} after"
        ));
    }
    None
}

/// Drives a derived alloc/write/free workload against a `FaultyHeap` while
/// a shadow model tracks what must be live and what every word must read.
fn heap_violation(plan: &FaultPlan) -> Option<String> {
    let injector = SharedInjector::new(plan.clone());
    let mut h = FaultyHeap::new(Box::new(FreeListHeap::new(1 << 16)), injector);
    let mut shadow: HashMap<Handle, (usize, Vec<u64>)> = HashMap::new();
    let mut order: Vec<Handle> = Vec::new();
    let mut shadow_bytes = 0usize;
    let mut s = plan.seed ^ 0xDEAD;

    for step in 0..300u64 {
        if !mix(&mut s).is_multiple_of(3) || order.is_empty() {
            let nrefs = (mix(&mut s) % 3) as usize;
            let nwords = 1 + (mix(&mut s) % 8) as usize;
            // try_alloc is the injection point: an Err here (injected or
            // real OOM) must simply leave the heap unchanged.
            let Ok(obj) = h.try_alloc(nrefs, nwords) else {
                continue;
            };
            for i in 0..nwords {
                match h.get_word(obj, i) {
                    Ok(0) => {}
                    Ok(w) => {
                        return Some(format!(
                            "fresh allocation read {w:#x} at word {i} (step {step}); \
                             recycled blocks must be zeroed, not poisoned"
                        ))
                    }
                    Err(e) => return Some(format!("fresh allocation unreadable: {e}")),
                }
            }
            let mut words = Vec::with_capacity(nwords);
            for i in 0..nwords {
                let v = mix(&mut s);
                if let Err(e) = h.set_word(obj, i, v) {
                    return Some(format!("write to live object failed: {e}"));
                }
                words.push(v);
            }
            shadow_bytes += object_bytes(nrefs, nwords);
            shadow.insert(obj, (nrefs, words));
            order.push(obj);
        } else {
            let victim = order.swap_remove((mix(&mut s) as usize) % order.len());
            let (nrefs, words) = shadow
                .remove(&victim)
                .expect("shadow tracks every live handle");
            shadow_bytes -= object_bytes(nrefs, words.len());
            if let Err(e) = h.free(victim) {
                return Some(format!("free of live object failed: {e}"));
            }
        }
        if h.live_bytes() != shadow_bytes {
            return Some(format!(
                "accounting diverged at step {step}: heap reports {} live bytes, shadow {}",
                h.live_bytes(),
                shadow_bytes
            ));
        }
    }
    // Every surviving object still reads back exactly what was written:
    // frees of neighbours (and their poisoning) must not have touched it.
    for (obj, (_, words)) in &shadow {
        for (i, want) in words.iter().enumerate() {
            match h.get_word(*obj, i) {
                Ok(got) if got == *want => {}
                other => {
                    return Some(format!(
                        "live object corrupted: word {i} is {other:?}, wanted {want:#x}"
                    ))
                }
            }
        }
    }
    for obj in order {
        if let Err(e) = h.free(obj) {
            return Some(format!("final drain free failed: {e}"));
        }
    }
    if h.live_bytes() != 0 {
        return Some(format!(
            "{} bytes still live after freeing everything",
            h.live_bytes()
        ));
    }
    None
}

/// Shrinks a failing plan and formats the panic payload.
fn report(plan: &FaultPlan, err: &str, oracle: impl FnMut(&FaultPlan) -> bool) -> String {
    let minimal = shrink::minimize(plan, oracle);
    format!("violation under plan {plan}: {err}\nminimal replayable plan: {minimal}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_plans_preserve_kernel_caps_and_accounting(seed in any::<u64>()) {
        let plan = plan_from_seed(seed);
        if let Some(err) = kernel_violation(&plan) {
            let msg = report(&plan, &err, |p| kernel_violation(p).is_some());
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn arbitrary_plans_keep_the_heap_zeroed_and_balanced(seed in any::<u64>()) {
        let plan = plan_from_seed(seed);
        if let Some(err) = heap_violation(&plan) {
            let msg = report(&plan, &err, |p| heap_violation(p).is_some());
            prop_assert!(false, "{}", msg);
        }
    }
}

/// The shrinker itself must produce a plan that (a) still trips the oracle
/// and (b) is replayable: pinned `OneShotAt` schedules only. Exercised here
/// with a deliberately failing oracle so the test suite proves the shrink
/// path works even while the real properties above hold.
#[test]
fn shrinker_reduces_failing_plans_to_replayable_form() {
    let plan = FaultPlan::new(99)
        .with_site(SITE_IPC_DROP, Schedule::Probability(0.4))
        .with_site(SITE_KERNEL_OOM, Schedule::EveryNth(3))
        .with_site(SITE_OOM, Schedule::Probability(0.2));
    // Oracle: "campaign loses at least one round trip" — true for this plan.
    let fails = |p: &FaultPlan| {
        let injector = SharedInjector::new(p.clone());
        let heap = FaultyHeap::new(Box::new(FreeListHeap::new(1 << 18)), injector);
        let mut k = Kernel::new(Box::new(heap));
        k.set_injector(SharedInjector::new(p.clone()));
        let server = k.spawn_process();
        let client = k.spawn_process();
        k.set_essential(server, true).unwrap();
        k.set_essential(client, true).unwrap();
        let req_s = k.create_endpoint(server).unwrap();
        let req_c = k.grant_cap(server, req_s, client, Rights::SEND).unwrap();
        let rep_s = k.create_endpoint(server).unwrap();
        let rep_c = k.grant_cap(server, rep_s, client, Rights::RECV).unwrap();
        (0..12).any(|_| {
            k.ping_pong_resilient(client, server, (req_s, req_c), (rep_s, rep_c), 2, 600, 0)
                .is_err()
        })
    };
    assert!(
        fails(&plan),
        "the seeded plan must trip the oracle to begin with"
    );
    let minimal = shrink::minimize(&plan, fails);
    assert!(
        fails(&minimal),
        "minimized plan must still reproduce the failure"
    );
    assert!(!minimal.is_empty(), "an empty plan cannot drop messages");
    for (site, sched) in minimal.sites() {
        assert!(
            matches!(sched, Schedule::OneShotAt(_)) || matches!(sched, Schedule::EveryNth(_)),
            "{site} kept a noisy schedule: {sched:?}"
        );
    }
}
