//! Property tests for the adaptive sampler (`sysobs::sampler`).
//!
//! Two claims, for arbitrary inputs rather than the hand-picked cases in
//! the unit tests:
//!
//! * **exact determinism** — a site pinned at shift `s` admits exactly
//!   `ceil(calls / 2^s)` of `calls` draws, for any `(s, calls)`: admission
//!   is call numbers `0, N, 2N, …`, not a coin flip, so a replayed
//!   campaign samples identically;
//! * **convergence** — for an arbitrary mix of 1–4 sites with arbitrary
//!   per-window call rates, a few controller windows drive every site's
//!   shift to within ±2 of the analytic fixed point
//!   `max(0, ceil(log2(rate / share)))`, i.e. the observed sampling rate
//!   converges to the 1-in-N the budget implies for that site — hot sites
//!   sparse, cold sites at shift 0.
//!
//! The sampler is process-global (sites register with one controller), so
//! every test serializes on one lock and restores adaptive mode before
//! releasing it.

use proptest::prelude::*;
use std::sync::Mutex;
use sysobs::sampler::{admit, sampler, SampleSite, DEFAULT_EVENT_COST_NS, MAX_SHIFT};

static SAMPLER_LOCK: Mutex<()> = Mutex::new(());

fn leaked_site() -> &'static SampleSite {
    Box::leak(Box::new(SampleSite::new()))
}

/// Synthetic controller window length (10 ms, the real `TICK_NS`).
const WINDOW_NS: u64 = 10_000_000;

/// The controller's analytic fixed point for a site seeing `rate` calls/s
/// when `active` sites split the budget.
fn expected_shift(rate: f64, active: usize) -> u32 {
    #[allow(clippy::cast_precision_loss)]
    let target = sampler().budget_pct() / 100.0 * 1e9 / DEFAULT_EVENT_COST_NS as f64;
    #[allow(clippy::cast_precision_loss)]
    let share = (target / active as f64).max(1e-9);
    if rate <= share {
        0
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let s = (rate / share).log2().ceil() as u32;
        s.min(MAX_SHIFT)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pinned_site_admits_exactly_ceil_calls_over_n(shift in 0u32..=10, calls in 1u64..4096) {
        let _guard = SAMPLER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        sampler().set_fixed_shift(Some(shift));
        let site = leaked_site();
        let mut admitted = 0u64;
        for _ in 0..calls {
            if admit(site, "prop.sampler.pinned") {
                admitted += 1;
            }
        }
        sampler().set_fixed_shift(None);
        let n = 1u64 << shift;
        prop_assert_eq!(admitted, calls.div_ceil(n), "shift {} over {} calls", shift, calls);
        prop_assert_eq!(site.admitted(), admitted);
        prop_assert_eq!(site.calls(), calls);
    }

    #[test]
    fn arbitrary_site_mixes_converge_to_their_budget_share(seed in any::<u64>()) {
        let _guard = SAMPLER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        sampler().set_fixed_shift(None);
        // This test owns the window boundaries: a wall-clock retune firing
        // mid-drive (slow host) would consume the deltas the synthetic
        // window below is about to measure.
        sampler().set_auto_tick(false);
        // Zero every previously registered site's window so only this
        // case's sites count as active when the budget is split.
        sampler().reset_sites();

        // Derive a mix from the seed: 1–4 sites, 16..=65536 calls/window.
        let mut s = seed;
        let mut mix = |lo: u64, hi: u64| {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            lo + (s >> 33) % (hi - lo + 1)
        };
        let nsites = usize::try_from(mix(1, 4)).expect("small");
        let sites: Vec<(&'static SampleSite, u64)> = (0..nsites)
            .map(|_| (leaked_site(), mix(16, 65_536)))
            .collect();

        // Three controller windows: drive each site's calls, then retune
        // over the synthetic window.
        for _ in 0..3 {
            for (site, calls) in &sites {
                for _ in 0..*calls {
                    let _ = admit(site, "prop.sampler.mix");
                }
            }
            sampler().retune(WINDOW_NS);
        }
        sampler().set_auto_tick(true);

        for (site, calls) in &sites {
            #[allow(clippy::cast_precision_loss)]
            let rate = *calls as f64 * 1e9 / WINDOW_NS as f64;
            let want = expected_shift(rate, nsites);
            let got = site.shift();
            prop_assert!(
                got.abs_diff(want) <= 2,
                "site at {} calls/window ({} sites): shift {} not within 2 of fixed point {}",
                calls, nsites, got, want
            );
            // Sampling stayed deterministic throughout: every admitted
            // call was a masked call number, so admitted never exceeds
            // the shift-0 bound and is never zero (call 0 always wins).
            prop_assert!(site.admitted() >= 1 && site.admitted() <= site.calls());
        }
    }
}

/// The convergence property's headline case, pinned: a hot site must end
/// sparse while a simultaneous cold site records everything.
#[test]
fn hot_and_cold_sites_split_the_budget() {
    let _guard = SAMPLER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sampler().set_fixed_shift(None);
    sampler().set_auto_tick(false);
    sampler().reset_sites();
    let hot = leaked_site();
    let cold = leaked_site();
    for _ in 0..3 {
        for _ in 0..200_000 {
            let _ = admit(hot, "prop.sampler.hot");
        }
        for _ in 0..64 {
            let _ = admit(cold, "prop.sampler.cold");
        }
        sampler().retune(WINDOW_NS);
    }
    sampler().set_auto_tick(true);
    assert!(
        hot.shift() >= 5,
        "hot site (~20M calls/s) must sample sparsely, got shift {}",
        hot.shift()
    );
    assert_eq!(cold.shift(), 0, "cold site records every occurrence");
}
