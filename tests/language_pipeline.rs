//! Cross-crate integration: the whole language pipeline must agree with
//! itself — interpreter, unboxed VM, boxed VM, and every optimizer level
//! produce identical results on identical programs (differential testing).

use bitc_core::ffi::NativeRegistry;
use bitc_core::interp::{run_source, Value};
use bitc_core::opt::{compile_optimized, OptLevel};
use bitc_core::parser::parse_program;
use bitc_core::vm::{run_boxed, run_unboxed, Boxed, Unboxed, Vm};
use proptest::prelude::*;

const CORPUS: &[&str] = &[
    // Arithmetic and primitives.
    "(+ (* 3 4) (- 10 (div 9 2)))",
    "(mod (* 123 456) 1000)",
    "(if (and (< 1 2) (not (> 3 4))) 100 200)",
    // Let, shadowing, polymorphism.
    "(let ((x 2) (y 3)) (let ((x (* x y))) (+ x y)))",
    "(let ((id (lambda (a) a))) (if (id #t) (id 41) 0))",
    // Closures and higher-order functions.
    "(define compose (lambda (f g) (lambda (x) (f (g x)))))
     (define add1 (lambda (x) (+ x 1)))
     (define dbl (lambda (x) (* x 2)))
     ((compose dbl add1) 20)",
    "(let ((make-counter (lambda (start)
         (lambda (step) (+ start step)))))
       ((make-counter 100) 23))",
    // Mutation, loops, assignment conversion.
    "(let ((n 0))
       (let ((bump (lambda (k) (set! n (+ n k)))))
         (begin (bump 5) (bump 7) n)))",
    "(let ((i 0) (acc 1))
       (begin (while (< i 10) (set! acc (* acc 2)) (set! i (+ i 1))) acc))",
    // Vectors.
    "(let ((v (make-vector 10 0)) (i 0))
       (begin
         (while (< i 10) (vec-set! v i (* i i)) (set! i (+ i 1)))
         (+ (vec-ref v 9) (vec-len v))))",
    // Recursion through globals.
    "(define gcd (lambda (a b) (if (= b 0) a (gcd b (mod a b))))) (gcd 252 105)",
    "(define ack (lambda (m n)
        (if (= m 0) (+ n 1)
          (if (= n 0) (ack (- m 1) 1)
            (ack (- m 1) (ack m (- n 1)))))))
     (ack 2 3)",
    // Booleans flowing through data.
    "(let ((flags (make-vector 4 #f)))
       (begin
         (vec-set! flags 2 #t)
         (if (vec-ref flags 2) 7 8)))",
];

fn interp_int(src: &str) -> i64 {
    match run_source(src) {
        Ok(Value::Int(n)) => n,
        other => panic!("interpreter produced {other:?} for {src}"),
    }
}

#[test]
fn interpreter_and_both_vms_agree_on_corpus() {
    for src in CORPUS {
        let expected = interp_int(src);
        assert_eq!(run_unboxed(src).unwrap(), expected, "unboxed: {src}");
        assert_eq!(run_boxed(src).unwrap(), expected, "boxed: {src}");
    }
}

#[test]
fn all_optimizer_levels_agree_on_corpus() {
    let reg = NativeRegistry::new();
    for src in CORPUS {
        let expected = interp_int(src);
        let program = parse_program(src).unwrap();
        bitc_core::infer::infer_program(&program).unwrap();
        for level in OptLevel::ALL {
            let bc = compile_optimized(&program, level).unwrap();
            let got = Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap();
            assert_eq!(got, expected, "{src} at {level}");
            let got_boxed = Vm::<Boxed>::new(&bc, &reg).unwrap().run_int().unwrap();
            assert_eq!(got_boxed, expected, "boxed {src} at {level}");
        }
    }
}

#[test]
fn runtime_errors_are_consistent_across_engines() {
    let traps = ["(div 1 0)", "(vec-ref (make-vector 3 0) 8)", "(mod 5 0)"];
    for src in traps {
        assert!(run_source(src).is_err(), "interp should trap: {src}");
        assert!(run_unboxed(src).is_err(), "unboxed should trap: {src}");
        assert!(run_boxed(src).is_err(), "boxed should trap: {src}");
    }
}

/// A generator of closed, total integer expressions (no division, no
/// unbound variables), so every engine must produce the same value.
fn arb_int_expr() -> impl Strategy<Value = String> {
    let leaf = (-50i64..50).prop_map(|n| n.to_string());
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(- {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(* {a} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(if (< {c} 0) {t} {e})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(let ((x {a})) (+ x {b}))")),
            inner
                .clone()
                .prop_map(|a| format!("((lambda (z) (* z 2)) {a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential fuzzing: generated programs evaluate identically in the
    /// interpreter and both VM representations at full optimization.
    #[test]
    fn generated_programs_agree_everywhere(src in arb_int_expr()) {
        let expected = interp_int(&src);
        prop_assert_eq!(run_unboxed(&src).unwrap(), expected);
        prop_assert_eq!(run_boxed(&src).unwrap(), expected);
        let program = parse_program(&src).unwrap();
        let bc = compile_optimized(&program, OptLevel::Full).unwrap();
        let reg = NativeRegistry::new();
        let opt = Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap();
        prop_assert_eq!(opt, expected);
    }
}
