//! Integration smoke test: every experiment runs end to end at quick scale
//! and its structural claims hold (deterministic properties only — timing
//! magnitudes belong to EXPERIMENTS.md and the Criterion benches).

use plos06::experiments::{self, Scale};

#[test]
fn all_experiments_produce_tables() {
    let tables = experiments::run_all(Scale::Quick);
    // E1–E14 plus the E9b data-plane campaign.
    assert_eq!(tables.len(), 15);
    for t in &tables {
        assert!(!t.rows.is_empty(), "{} has no rows", t.title);
        assert!(!t.headers.is_empty());
        // Rendering never panics and includes the title.
        let rendered = t.to_string();
        assert!(rendered.contains(&t.title));
    }
}

#[test]
fn e1_no_manager_corrupts_memory() {
    let t = experiments::e1_alloc::run(Scale::Quick);
    let errs_col = t
        .headers
        .iter()
        .position(|h| h == "integrity errs")
        .unwrap();
    for row in &t.rows {
        assert_eq!(row[errs_col], "0", "{} corrupted data", row[0]);
    }
}

#[test]
fn e2_representations_compute_identical_results() {
    let t = experiments::e2_boxing::run(Scale::Quick);
    for row in &t.rows {
        assert_eq!(row[5], "ok");
    }
}

#[test]
fn e5_proofs_and_refutations_land_as_designed() {
    let t = experiments::e5_verify::run(Scale::Quick);
    let proved = t.rows.iter().filter(|r| r[2] == "proved").count();
    let refuted = t.rows.iter().filter(|r| r[2] == "refuted").count();
    assert_eq!(proved, 6);
    assert_eq!(refuted, 6);
}

#[test]
fn e6_protocol_cycles_are_heap_independent() {
    let t = experiments::e6_ipc::run(Scale::Quick);
    let cycles: Vec<&String> = t.rows.iter().map(|r| &r[1]).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "transparency violated: {cycles:?}"
    );
}

#[test]
fn e7_only_the_broken_bank_may_show_anomalies() {
    let t = experiments::e7_shared_state::run(Scale::Quick);
    for row in &t.rows {
        assert_eq!(row[6], "yes", "{} lost money", row[0]);
        if row[0] != "broken-composed" {
            assert_eq!(row[4], "0", "{} exposed intermediate state", row[0]);
        }
    }
}

#[test]
fn e9_campaigns_stay_available_replayable_and_verified() {
    let t = experiments::e9_faults::run(Scale::Quick);
    let avail = t.headers.iter().position(|h| h == "RT avail").unwrap();
    let replay = t.headers.iter().position(|h| h == "replay").unwrap();
    let inv = t.headers.iter().position(|h| h == "invariants").unwrap();
    for row in &t.rows {
        assert_ne!(
            row[avail], "0.0%",
            "{} fault rate lost all availability",
            row[0]
        );
        assert!(
            row[replay].ends_with('✓'),
            "{} campaign did not replay",
            row[0]
        );
        assert_eq!(row[inv], "6/6", "invariants regressed at {}", row[0]);
    }
    assert_eq!(
        t.rows[0][avail], "100.0%",
        "fault-free baseline must be perfect"
    );
}

#[test]
fn e10_trie_beats_linear_scan_and_streams_conserve_packets() {
    // The structural claim behind E10, checked on real timings: by a
    // 64-route table the O(32) trie must out-run the O(n) linear scan.
    let point = sysnet::bench::lookup_comparison(64, 200_000, 0x5EED_0E10);
    assert!(point.routes >= 64);
    assert!(
        point.speedup() > 1.0,
        "trie ({:.1} ns) must beat linear scan ({:.1} ns) at {} routes",
        point.trie_ns,
        point.linear_ns,
        point.routes
    );

    let t = experiments::e10_dataplane::run(Scale::Quick);
    let fwd = t.headers.iter().position(|h| h == "forwarded").unwrap();
    let drop = t.headers.iter().position(|h| h == "dropped").unwrap();
    let streams: Vec<_> = t
        .rows
        .iter()
        .filter(|r| r[0] == "pipeline stream")
        .collect();
    assert!(
        streams.len() >= 2,
        "at least 1-worker and multi-worker rows"
    );
    for row in &streams {
        let total: u64 = row[fwd].parse::<u64>().unwrap() + row[drop].parse::<u64>().unwrap();
        assert_eq!(total, 20_000, "stream must conserve packets: {row:?}");
    }
    // Every worker count routes the identical stream to identical outcomes.
    assert!(
        streams
            .windows(2)
            .all(|w| w[0][fwd] == w[1][fwd] && w[0][drop] == w[1][drop]),
        "sharding changed routing outcomes"
    );
}

#[test]
fn e12_cache_hits_on_skewed_traffic_and_pool_reuses_frames() {
    let t = experiments::e12_cache::run(Scale::Quick);
    assert_eq!(t.rows.len(), 6, "2 lookup rows + 2 streams × cache on/off");
    let hit = t.headers.iter().position(|h| h == "hit rate").unwrap();
    let reuse = t.headers.iter().position(|h| h == "frame reuse").unwrap();
    // Skewed traffic through the enabled cache must mostly hit — on both
    // the bare lookup path and the end-to-end stream; cache-off rows have
    // no hit rate at all.
    for row in [&t.rows[1], &t.rows[2]] {
        let pct: f64 = row[hit].trim_end_matches(" %").parse().unwrap();
        assert!(pct > 50.0, "skewed stream must hit the cache: {row:?}");
    }
    assert_eq!(t.rows[3][hit], "—", "cache off reports no hit rate");
    // The pool recycles in every stream configuration (the zero-alloc
    // claim's structural half; the measured half lives in router_bench).
    for row in &t.rows[2..] {
        let r: f64 = row[reuse].trim_end_matches(" %").parse().unwrap();
        assert!(r > 50.0, "steady state must reuse frames: {row:?}");
    }
}

#[test]
fn e13_checker_clears_correct_models_and_catches_seeded_bugs() {
    let t = experiments::e13_check::run(Scale::Quick);
    assert_eq!(t.rows.len(), 7, "3 clean models + 2 bugs × 2 modes");
    let outcome = t.headers.iter().position(|h| h == "outcome").unwrap();
    let preempts = t.headers.iter().position(|h| h == "min preempts").unwrap();
    for row in &t.rows {
        if row[0].contains("broken") || row[0].contains("wakeup") {
            assert!(
                row[outcome].starts_with("found"),
                "{} must be rediscovered: {row:?}",
                row[0]
            );
            let n: usize = row[preempts].parse().unwrap();
            assert!(
                (1..=2).contains(&n),
                "{} must shrink to 1-2 preemptions: {row:?}",
                row[0]
            );
        } else {
            assert!(
                row[outcome].starts_with("clean"),
                "{} must verify clean: {row:?}",
                row[0]
            );
        }
    }
}

#[test]
fn e8_parsers_recognize_the_same_stream() {
    let t = experiments::e8_repr::run(Scale::Quick);
    assert_eq!(t.rows[0][3], t.rows[2][3], "zero-copy vs boxed checksum");
}

#[test]
fn e14_defense_beats_the_naive_tracker_under_flood() {
    let t = experiments::e14_conntrack::run(Scale::Quick);
    let delivery = t
        .headers
        .iter()
        .position(|h| h == "benign delivery")
        .unwrap();
    let pct = |row: &Vec<String>| -> f64 { row[delivery].trim_end_matches('%').parse().unwrap() };
    let on = t
        .rows
        .iter()
        .find(|r| r[1] != "0%" && r[2] == "on")
        .expect("a defended attack row");
    let off = t
        .rows
        .iter()
        .find(|r| r[2] == "OFF")
        .expect("the defense-off contrast row");
    assert!(
        pct(on) > pct(off),
        "defense must out-deliver naive LRU under the same flood"
    );
    // Benign-only rows lose nothing at quick scale: every drop is typed
    // and attributable to the flood.
    assert_eq!(pct(&t.rows[0]), 100.0);
}

#[test]
fn e9b_net_campaign_digests_replay() {
    let t = experiments::e9_faults::run_net(Scale::Quick);
    let audits = t.headers.iter().position(|h| h == "ct audits").unwrap();
    let replay = t.headers.iter().position(|h| h == "replay").unwrap();
    for row in &t.rows {
        assert_eq!(row[audits], "0 ✓", "no injected fault may corrupt a shard");
        assert!(row[replay].ends_with('✓'), "campaigns must replay: {row:?}");
    }
}
