//! syscheck model of the flight recorder's seqlock ring and freeze
//! protocol (`sysobs::recorder`).
//!
//! The recorder's contract has two halves the real-thread stress test in
//! `sysobs` can only sample:
//!
//! * **no torn events** — a dumper racing the owning writer never decodes
//!   a slot whose payload and sequence word disagree: it either skips the
//!   slot (odd / moved sequence) or sees a fully published event. This
//!   holds for *any* drain, frozen or not;
//! * **freeze sees a consistent prefix** — an *unfrozen* drain is
//!   per-slot consistent but not cross-slot consistent (it can observe
//!   event `k+1` while having read event `k`'s slot too early), which is
//!   exactly why the trigger engine freezes before capturing. Once the
//!   rings are frozen, at most one in-flight record per writer can still
//!   land, every earlier event of that writer is already published, and
//!   every frozen drain yields a gapless prefix of each writer's program
//!   order.
//!
//! The model rebuilds the ring discipline on `syscheck::shim` atomics —
//! per-slot sequence word odd while in flight, payload store, then the
//! even publish — so the checker owns every interleaving of writer stores,
//! dumper loads, and the freeze flag. A seeded **publish-before-payload**
//! variant (the classic seqlock ordering bug: the even sequence word lands
//! before the payload) must be caught: there is a schedule where the
//! dumper decodes a stale payload under a matching sequence word.

use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;
use syscheck::shim::{spawn, AtomicBool, AtomicU64};
use syscheck::{explore, Config, FailureKind};

/// Slots per model ring — at least the events written, so a frozen drain's
/// seq set must be a gapless prefix (wraparound is the real ring's
/// business; the protocol under check is publish/tear/freeze).
const CAP: usize = 4;
/// Events each writer attempts in the concurrent phase.
const EVENTS: u64 = 2;

struct Slot {
    seq: AtomicU64,
    value: AtomicU64,
}

struct Ring {
    head: AtomicU64,
    slots: [Slot; CAP],
}

struct ModelRecorder {
    frozen: AtomicBool,
    rings: [Ring; 2],
}

fn model_recorder() -> ModelRecorder {
    let ring = || Ring {
        head: AtomicU64::new(0),
        slots: std::array::from_fn(|_| Slot {
            seq: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }),
    };
    ModelRecorder {
        frozen: AtomicBool::new(false),
        rings: [ring(), ring()],
    }
}

/// A payload that names its own provenance, so a torn decode is
/// self-evident: writer id and sequence number are embedded.
fn encode(writer: usize, seq: u64) -> u64 {
    (writer as u64) << 32 | seq << 8 | 0xA5
}

/// One `record` in the model: the freeze check, the owner-only head bump,
/// then the seqlock write protocol. `publish_first` is the seeded bug —
/// the even sequence word is stored *before* the payload.
fn record(rec: &ModelRecorder, writer: usize, publish_first: bool) -> bool {
    if rec.frozen.load(SeqCst) {
        return false;
    }
    let ring = &rec.rings[writer];
    let seq = ring.head.load(SeqCst);
    ring.head.store(seq + 1, SeqCst);
    #[allow(clippy::cast_possible_truncation)]
    let slot = &ring.slots[(seq % CAP as u64) as usize];
    let published = (seq + 1) << 1;
    if publish_first {
        slot.seq.store(published, SeqCst); // BUG: visible before the payload
        slot.value.store(encode(writer, seq), SeqCst);
    } else {
        slot.seq.store(published | 1, SeqCst); // odd: in flight
        slot.value.store(encode(writer, seq), SeqCst);
        slot.seq.store(published, SeqCst); // even: published
    }
    true
}

/// One dumper pass: decode every stable slot, assert internal consistency
/// (the no-torn-events property) and return `(writer, seq)` pairs.
fn drain(rec: &ModelRecorder) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for (w, ring) in rec.rings.iter().enumerate() {
        for slot in &ring.slots {
            let s1 = slot.seq.load(SeqCst);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // empty or in flight
            }
            let value = slot.value.load(SeqCst);
            let s2 = slot.seq.load(SeqCst);
            if s1 != s2 {
                continue; // torn: writer moved on mid-read
            }
            let seq = (s1 >> 1) - 1;
            assert_eq!(
                value,
                encode(w, seq),
                "torn event: slot published seq {seq} of writer {w} but the payload disagrees"
            );
            out.push((w, seq));
        }
    }
    out
}

/// The consistent-prefix property: per writer, the drained sequence
/// numbers are exactly `0..h` for some `h` — never a gap. Only frozen or
/// quiescent drains promise this.
fn assert_prefix(events: &[(usize, u64)]) {
    for w in 0..2 {
        let mut seqs: Vec<u64> = events
            .iter()
            .filter(|(ew, _)| *ew == w)
            .map(|(_, s)| *s)
            .collect();
        seqs.sort_unstable();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(*s, i as u64, "writer {w} drained with a gap: {seqs:?}");
        }
    }
}

fn spawn_writers(
    rec: &Arc<ModelRecorder>,
    publish_first: bool,
) -> Vec<syscheck::shim::JoinHandle<()>> {
    (0..2)
        .map(|w| {
            let rec = Arc::clone(rec);
            spawn(move || {
                for _ in 0..EVENTS {
                    record(&rec, w, publish_first);
                }
            })
        })
        .collect()
}

/// Two span writers race a dumper. Every drain checks tear-freedom; the
/// prefix property is only claimed once the writers have quiesced.
fn tear_model(publish_first: bool) -> u64 {
    let rec = Arc::new(model_recorder());
    let writers = spawn_writers(&rec, publish_first);
    // Mid-flight drains: per-slot consistency must already hold. (No
    // prefix claim here — an unfrozen drain has no cross-slot snapshot.)
    let _ = drain(&rec);
    let _ = drain(&rec);
    for h in writers {
        h.join().unwrap();
    }
    // Quiescent: everything published, nothing torn, gapless.
    let full = drain(&rec);
    assert_prefix(&full);
    assert_eq!(
        full.len() as u64,
        2 * EVENTS,
        "all events published after join"
    );
    full.len() as u64
}

/// The freezing reader: freeze lands at an arbitrary point in the writers'
/// schedule; every frozen drain must be a consistent prefix, and a frozen
/// ring must drop fresh writes.
fn freeze_model() -> u64 {
    let rec = Arc::new(model_recorder());
    let writers = spawn_writers(&rec, false);

    // The incident: freeze concurrently with the writers. At most one
    // in-flight record per writer lands after this store.
    rec.frozen.store(true, SeqCst);
    assert_prefix(&drain(&rec));
    assert_prefix(&drain(&rec));
    for h in writers {
        h.join().unwrap();
    }

    // Writers are done and the rings are frozen: the capture is stable.
    let capture = drain(&rec);
    assert_prefix(&capture);
    assert_eq!(drain(&rec), capture, "frozen drain must be stable");
    // A post-freeze write is dropped; unfreezing readmits writes.
    assert!(!record(&rec, 0, false), "frozen ring must drop the write");
    assert_eq!(drain(&rec).len(), capture.len());
    rec.frozen.store(false, SeqCst);
    assert!(record(&rec, 0, false));
    assert_eq!(drain(&rec).len(), capture.len() + 1);
    capture.len() as u64
}

#[test]
fn checker_ring_protocol_never_tears() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = explore(&cfg, || tear_model(false));
    assert!(
        ex.failure.is_none(),
        "seqlock ring tore under some schedule: {:?}",
        ex.failure
    );
    assert!(
        ex.complete,
        "model must be exhaustively checkable at preemption bound 2 \
         (ran {} schedules without finishing the tree)",
        ex.schedules
    );
    assert_eq!(
        ex.distinct_states, 1,
        "terminal ring contents must not depend on the schedule"
    );
}

#[test]
fn checker_frozen_drains_are_consistent_prefixes() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = explore(&cfg, freeze_model);
    assert!(
        ex.failure.is_none(),
        "a frozen capture tore or had a gap under some schedule: {:?}",
        ex.failure
    );
    assert!(
        ex.complete,
        "model must be exhaustively checkable at preemption bound 2 \
         (ran {} schedules without finishing the tree)",
        ex.schedules
    );
    // How many events beat the freeze varies by schedule (0..=4); what may
    // not vary is the prefix shape, which the model asserts inline.
    assert!(ex.distinct_states >= 2, "freeze timing must actually vary");
}

#[test]
fn checker_finds_publish_before_payload_tear() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = explore(&cfg, || tear_model(true));
    let failure = ex
        .failure
        .expect("publishing the sequence word before the payload must be caught");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("torn event"),
        "the failing schedule must be the torn decode, got: {}",
        failure.message
    );
}
