//! Cross-crate integration: the kernel's *verified models* and its *running
//! code* must tell the same story. The prover proves the models; these
//! tests check the implementation against the same properties, including
//! randomized runs (the verified invariant is the property-test oracle).

use bitc_verify::vcgen::{is_verified, verify_procedure, VcOutcome};
use microkernel::invariants::{invariant_suite, mint_procedure, seeded_bug_suite};
use microkernel::kernel::{Kernel, Message, SysResult, Syscall};
use microkernel::rights::Rights;
use proptest::prelude::*;

#[test]
fn every_kernel_invariant_is_proved() {
    for proc in invariant_suite() {
        assert!(is_verified(&proc), "invariant {} must prove", proc.name);
    }
}

#[test]
fn every_seeded_bug_is_refuted_with_a_counterexample() {
    for proc in seeded_bug_suite() {
        let refutations: Vec<String> = verify_procedure(&proc)
            .into_iter()
            .filter_map(|(_, o)| match o {
                VcOutcome::Refuted(m) => Some(m),
                _ => None,
            })
            .collect();
        assert!(!refutations.is_empty(), "{} must be refuted", proc.name);
    }
}

#[test]
fn runtime_mint_matches_the_verified_model() {
    // The model `mint` is proved non-amplifying; the implementation must be
    // non-amplifying on every rights combination (exhaustive: 64 x 64).
    let _proved = mint_procedure(false);
    for src_bits in 0..64u8 {
        for req_bits in 0..64u8 {
            let src = Rights::from_bits(src_bits);
            let req = Rights::from_bits(req_bits);
            let minted = src & req;
            assert!(
                src.contains(minted),
                "amplification: src {src} req {req} minted {minted}"
            );
        }
    }
}

proptest! {
    /// Random kernel sessions never violate rights monotonicity: any
    /// capability reachable in any c-space has rights included in ALL, and
    /// caps produced by grant/mint are included in their source's rights.
    #[test]
    fn random_grants_never_amplify(rights_bits in proptest::collection::vec(0u8..64, 1..12)) {
        let mut k = Kernel::with_default_heap();
        let root = k.spawn_process();
        let ep = k.create_endpoint(root).unwrap();
        let mut current = k.inspect_cap(root, ep).unwrap();
        let mut slot = ep;
        let mut holder = root;
        for bits in rights_bits {
            let target = k.spawn_process();
            let requested = Rights::from_bits(bits);
            match k.grant_cap(holder, slot, target, requested) {
                Ok(new_slot) => {
                    let granted = k.inspect_cap(target, new_slot).unwrap();
                    prop_assert!(
                        current.rights.contains(granted.rights),
                        "amplified: {} -> {}", current.rights, granted.rights
                    );
                    current = granted;
                    slot = new_slot;
                    holder = target;
                }
                Err(_) => {
                    // Lacking GRANT terminates the delegation chain: also a
                    // monotonicity win.
                    break;
                }
            }
        }
    }

    /// Messages delivered equal messages sent, under any payload.
    #[test]
    fn ipc_is_lossless(payload in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut k = Kernel::with_default_heap();
        let server = k.spawn_process();
        let client = k.spawn_process();
        let ep = k.create_endpoint(server).unwrap();
        let ep_c = k.grant_cap(server, ep, client, Rights::SEND).unwrap();
        k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
        k.syscall(client, Syscall::Send { cap: ep_c, msg: Message::words(&payload) }).unwrap();
        let got = k.take_delivered(server).unwrap();
        prop_assert_eq!(got.payload, payload);
    }
}

#[test]
fn kernel_sessions_work_on_every_heap_policy() {
    use sysmem::arena::RegionHeap;
    use sysmem::freelist::FreeListHeap;
    use sysmem::generational::GenerationalHeap;
    use sysmem::marksweep::MarkSweepHeap;
    use sysmem::semispace::SemiSpaceHeap;
    use sysmem::Manager;

    let heaps: Vec<Box<dyn Manager>> = vec![
        Box::new(FreeListHeap::new(1 << 20)),
        Box::new(RegionHeap::new(1 << 20)),
        Box::new(MarkSweepHeap::new(1 << 20)),
        Box::new(SemiSpaceHeap::new(1 << 21)),
        Box::new(GenerationalHeap::new(1 << 20, 1 << 13)),
    ];
    for heap in heaps {
        let name = heap.name();
        let mut k = Kernel::new(heap);
        let server = k.spawn_process();
        let client = k.spawn_process();
        let ep = k.create_endpoint(server).unwrap();
        let ep_c = k.grant_cap(server, ep, client, Rights::SEND).unwrap();
        for i in 0..100u64 {
            k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
            k.syscall(
                client,
                Syscall::Send {
                    cap: ep_c,
                    msg: Message::words(&[i, i * 2]),
                },
            )
            .unwrap();
            let m = k.take_delivered(server).unwrap();
            assert_eq!(m.payload, vec![i, i * 2], "heap {name}");
        }
    }
}

#[test]
fn page_rights_are_enforced_end_to_end() {
    let mut k = Kernel::with_default_heap();
    let owner = k.spawn_process();
    let SysResult::Slot(page) = k.syscall(owner, Syscall::AllocPage { words: 2 }).unwrap() else {
        panic!("expected slot");
    };
    k.syscall(
        owner,
        Syscall::WritePage {
            cap: page,
            offset: 1,
            value: 5,
        },
    )
    .unwrap();
    // Mint write-only and read-only views; each permits exactly its verb.
    let SysResult::Slot(ro) = k
        .syscall(
            owner,
            Syscall::Mint {
                src: page,
                rights: Rights::READ,
            },
        )
        .unwrap()
    else {
        panic!("expected slot");
    };
    let SysResult::Slot(wo) = k
        .syscall(
            owner,
            Syscall::Mint {
                src: page,
                rights: Rights::WRITE,
            },
        )
        .unwrap()
    else {
        panic!("expected slot");
    };
    assert!(matches!(
        k.syscall(owner, Syscall::ReadPage { cap: ro, offset: 1 })
            .unwrap(),
        SysResult::Value(5)
    ));
    assert!(k
        .syscall(
            owner,
            Syscall::WritePage {
                cap: ro,
                offset: 0,
                value: 9
            }
        )
        .is_err());
    assert!(k
        .syscall(
            owner,
            Syscall::WritePage {
                cap: wo,
                offset: 0,
                value: 9
            }
        )
        .is_ok());
    assert!(k
        .syscall(owner, Syscall::ReadPage { cap: wo, offset: 0 })
        .is_err());
}
