//! Regression: a fault campaign replayed from its plan reproduces not just
//! the fault-log digest (sysfault's own guarantee) but the *flight-recorder
//! trace shape* — same spans, instants, and counter samples in the same
//! per-thread order, with only timestamps differing. This is what makes a
//! flight-recorder dump from a failed run actionable: re-running the plan
//! regenerates the same trace to poke at.

use microkernel::kernel::{Kernel, SITE_IPC_DROP, SITE_KERNEL_OOM};
use microkernel::rights::Rights;
use std::sync::Mutex;
use sysfault::{FaultPlan, Schedule, SharedInjector};
use sysmem::freelist::FreeListHeap;
use sysobs::Mode;

// Mode and rings are process-global; tests that trace serialize here.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs a deterministic faulted IPC workload under full tracing and returns
/// `(fault log digest, trace shape digest, event count)`.
fn traced_campaign(plan: FaultPlan, rounds: usize) -> (u64, u64, usize) {
    sysobs::clear();
    let mut k = Kernel::new(Box::new(FreeListHeap::new(1 << 20)));
    let inj = SharedInjector::new(plan);
    k.set_injector(inj.clone());
    let server = k.spawn_process();
    let client = k.spawn_process();
    let req_s = k.create_endpoint(server).unwrap();
    let req_c = k.grant_cap(server, req_s, client, Rights::SEND).unwrap();
    let rep_s = k.create_endpoint(server).unwrap();
    let rep_c = k.grant_cap(server, rep_s, client, Rights::RECV).unwrap();
    for _ in 0..rounds {
        // Lost requests recover through the watchdog; unrecoverable rounds
        // surface as typed timeouts. Either way the trace records the path.
        let _ = k.ping_pong_resilient(client, server, (req_s, req_c), (rep_s, rep_c), 8, 2_000, 4);
    }
    let events = sysobs::collect_events().len();
    (inj.digest(), sysobs::shape_digest(), events)
}

#[test]
fn replayed_fault_schedule_reproduces_the_trace_shape() {
    let _guard = MODE_LOCK.lock().unwrap();
    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Tracing);

    let plan = FaultPlan::new(0x00DE_C0DE)
        .with_site(SITE_IPC_DROP, Schedule::EveryNth(5))
        .with_site(SITE_KERNEL_OOM, Schedule::Probability(0.02));
    let (fault_a, shape_a, events_a) = traced_campaign(plan.clone(), 30);
    let (fault_b, shape_b, events_b) = traced_campaign(plan, 30);

    sysobs::set_mode(prev);
    sysobs::clear();

    assert!(events_a > 0, "tracing recorded nothing");
    assert_eq!(fault_a, fault_b, "fault schedule must replay identically");
    assert_eq!(
        events_a, events_b,
        "replay produced a different event count"
    );
    assert_eq!(shape_a, shape_b, "replay produced a different trace shape");
}

#[test]
fn different_fault_schedules_produce_different_trace_shapes() {
    let _guard = MODE_LOCK.lock().unwrap();
    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Tracing);

    let quiet = FaultPlan::new(0x00DE_C0DE);
    let noisy = FaultPlan::new(0x00DE_C0DE).with_site(SITE_IPC_DROP, Schedule::EveryNth(3));
    let (_, shape_quiet, _) = traced_campaign(quiet, 20);
    let (_, shape_noisy, _) = traced_campaign(noisy, 20);

    sysobs::set_mode(prev);
    sysobs::clear();

    assert_ne!(
        shape_quiet, shape_noisy,
        "injected drops change the recovery path, so the trace shape must differ"
    );
}

#[test]
fn trace_dump_names_the_injected_faults() {
    let _guard = MODE_LOCK.lock().unwrap();
    let prev = sysobs::mode();
    sysobs::set_mode(Mode::Tracing);

    let plan = FaultPlan::new(7).with_site(SITE_IPC_DROP, Schedule::EveryNth(4));
    let (fault_digest, _, _) = traced_campaign(plan, 20);
    let text = sysobs::dump_text();
    let json = sysobs::dump_chrome_json();

    sysobs::set_mode(prev);
    sysobs::clear();

    assert_ne!(
        fault_digest,
        sysfault::FaultLog::default().digest(),
        "faults fired"
    );
    assert!(
        text.contains(&format!("fault.fired.{SITE_IPC_DROP}")),
        "text dump must name the fired site:\n{text}"
    );
    assert!(
        json.contains("kernel.syscall"),
        "chrome dump must carry syscall spans"
    );
    assert!(
        json.contains("\"ph\":\"i\""),
        "fault firings are instant events"
    );
}
