//! Integration tests for the anomaly-to-postmortem path: the E16 campaign's
//! exactly-one property, the postmortem JSON artifact, and the panic-dump
//! black box.
//!
//! These run in their own process (observability mode, the sampler, and
//! the recorder rings are process-global), serialized on one lock so the
//! campaign's registry deltas and the panic test's mode flips don't
//! interleave.

use plos06::experiments::{e16_postmortem, Scale};
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn campaign_yields_exactly_one_postmortem_per_incident() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let outcomes = e16_postmortem::campaign(Scale::Quick);
    assert_eq!(outcomes.len(), 5, "one incident per standard watch");
    for o in &outcomes {
        assert_eq!(
            o.expected_fired, 1,
            "incident `{}` must produce exactly one postmortem naming its trigger \
             (got {}, {} total fired)",
            o.trigger, o.expected_fired, o.total_fired
        );
    }
    let spike = outcomes
        .iter()
        .find(|o| o.trigger == "drop-rate-spike")
        .expect("campaign injects a drop spike");
    assert!(
        spike.cross_worker_trace,
        "the drop-spike postmortem must reconstruct a dispatcher→worker causal trace \
         ({} events, {} traces captured)",
        spike.events, spike.traces
    );
    let stall = outcomes
        .iter()
        .find(|o| o.trigger == "backpressure-stall")
        .expect("campaign injects a stall burst");
    assert!(
        stall.fault_digest.is_some(),
        "the stall ran under a fault plan: its postmortem must carry the plan's log digest"
    );
}

#[test]
fn fired_trigger_emits_parseable_postmortem_json() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let c = sysobs::registry().counter("test.pm.spike");
    let mut eng = sysobs::TriggerEngine::new().with(sysobs::Watch::counter_delta(
        "test-pm-spike",
        "test.pm.spike",
        8,
    ));
    assert!(eng.poll(None).is_empty(), "baseline poll arms the watch");
    c.add(64);
    let pms = eng.poll(Some(0xD16E57));
    assert_eq!(pms.len(), 1);
    let json = pms[0].to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"postmortem\": 1"), "{json}");
    assert!(json.contains("\"trigger\": \"test-pm-spike\""), "{json}");
    assert!(
        json.contains("\"test.pm.spike\": "),
        "metrics snapshot embedded: {json}"
    );
}

#[test]
fn panic_dump_captures_recorder_tail_and_metrics() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sysobs::install_panic_dump();
    let prev = sysobs::mode();
    sysobs::set_mode(sysobs::Mode::Tracing);
    sysobs::clear();
    sysobs::obs_span_hot!("test.panic.span");
    sysobs::obs_count!("test.panic.counter", 7);

    let result = std::panic::catch_unwind(|| panic!("seeded bench crash"));
    assert!(result.is_err());
    sysobs::set_mode(prev);

    let dump = sysobs::last_panic_dump().expect("panic hook captured a dump");
    assert!(
        dump.contains("flight recorder"),
        "dump must carry the recorder header: {dump}"
    );
    assert!(
        dump.contains("test.panic.span"),
        "dump must contain the recorder tail (the span recorded before the crash)"
    );
    assert!(
        dump.contains("test.panic.counter"),
        "dump must contain the metrics snapshot"
    );
}
