//! The case-running half of the harness: configuration, seeding, and the
//! loop behind the `proptest!` macro.

use crate::strategy::TestRng;

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline CI quick while
        // still exercising a meaningful sample. Override with PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` for each configured case index with a per-case deterministic
/// RNG. Panics (failing the enclosing `#[test]`) on the first case returning
/// `Err`, echoing the seed and case index needed to replay.
///
/// # Panics
///
/// Panics when a case fails, with a replayable seed in the message.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(config.cases);
    let seed = base_seed(test_name);
    for i in 0..cases {
        let mut rng = TestRng::new(seed ^ (u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        if let Err(msg) = case(&mut rng) {
            panic!(
                "property {test_name} failed at case {i}/{cases}: {msg}\n\
                 replay with PROPTEST_SEED={seed} (case index {i})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_cases(&ProptestConfig::with_cases(10), "demo", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_seed() {
        run_cases(&ProptestConfig::with_cases(5), "demo_fail", |_| {
            Err("boom".into())
        });
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(base_seed("alpha"), base_seed("alpha"));
        assert_ne!(base_seed("alpha"), base_seed("beta"));
    }
}
