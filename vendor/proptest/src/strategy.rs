//! Generator-based strategies: the value-producing half of proptest.
//!
//! A [`Strategy`] here is simply a deterministic generator: given a
//! [`TestRng`] it produces one value. Combinators mirror the real crate's
//! names so call sites compile unchanged.

use std::sync::Arc;

/// Deterministic SplitMix64 RNG threaded through strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. The workspace-facing subset of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, regenerating (bounded).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// previous depth level and returns the composite level. `depth` bounds
    /// nesting; the size-budget parameters of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> R,
    {
        let mut level = self.arc();
        for _ in 0..depth {
            let deeper = recurse(level.clone()).arc();
            level = Union::new(vec![(1, level), (2, deeper)]).arc();
        }
        level
    }

    /// Type-erases the strategy behind an `Arc` (the stand-in for
    /// `BoxedStrategy`).
    fn arc(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        ArcStrategy {
            gen_fn: Arc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Cloneable, type-erased strategy handle.
pub struct ArcStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy {
            gen_fn: Arc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for ArcStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always produces a clone of the wrapped value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Weighted union of same-typed strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, ArcStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Creates a union; every weight must be nonzero.
    #[must_use]
    pub fn new(arms: Vec<(u32, ArcStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if pick < u64::from(*w) {
                return arm.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                let offset = rng.below(span as u64);
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    self.start.wrapping_add(offset as $t)
                }
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.abs_diff(start) as u64;
                let offset =
                    if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    start.wrapping_add(offset as $t)
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-lite string strategy: `&'static str` patterns made of character
/// classes with optional `{m}` / `{m,n}` repetition (e.g. `"[a-z0-9]{1,5}"`)
/// plus literal characters. This covers the patterns used in-tree; anything
/// fancier panics loudly rather than misgenerating.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.max == atom.min {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..reps {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.' | '\\'),
                "unsupported regex feature {c:?} in pattern {pattern:?} (regex-lite stub)"
            );
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat lower bound"),
                    hi.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (0u32..8).generate(&mut rng);
            assert!(v < 8);
            let w = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&w));
            let x = (1u8..=16).generate(&mut rng);
            assert!((1..=16).contains(&x));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,5}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "bad {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = "[a-z]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&t.len()));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::new(1);
        let u = Union::new(vec![(1, Just(0u8).arc()), (3, Just(1u8).arc())]);
        let ones = (0..4_000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!((2_600..3_400).contains(&ones), "got {ones}");
    }

    #[test]
    fn map_filter_recursive_compose() {
        let mut rng = TestRng::new(5);
        let s = (0u32..100)
            .prop_map(|n| n * 2)
            .prop_filter("even under 100", |&n| n < 100);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 100);
        }
        let nested = (0i32..10)
            .prop_map(|n| n.to_string())
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
            });
        let sample = nested.generate(&mut rng);
        assert!(!sample.is_empty());
    }
}
