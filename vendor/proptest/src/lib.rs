//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic property-testing harness exposing the subset of the
//! proptest 1.x API the repo uses: the [`proptest!`] macro, `prop_assert*`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map` / `prop_filter` /
//! `prop_recursive`, [`collection::vec`], integer-range and regex-lite string
//! strategies, and [`arbitrary::any`].
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic seeds.** Each test derives its RNG seed from the test
//!   name (overridable with `PROPTEST_SEED`), so CI failures replay exactly.
//! * **No integrated shrinking.** A failing case reports its seed, case
//!   index, and `Debug` rendering of the inputs. (The fault-injection crate
//!   layers domain-specific plan shrinking on top; see `sysfault::shrink`.)
//! * Default case count is 64 (not 256) to keep offline CI fast.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with the
/// generated inputs echoed) rather than panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(
                format!($($fmt)*) + &format!(" ({a:?} != {b:?})"),
            );
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Weighted or unweighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::arc($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::arc($strat))),+
        ])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `fn` items whose
/// arguments are `pattern in strategy` bindings or `name: Type` shorthand
/// (the latter meaning `name in any::<Type>()`, as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |prop_rng| {
                $crate::__proptest_bind!(prop_rng; $($args)*);
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Expands one `proptest!` argument list into `let` bindings drawing from
/// the per-case RNG. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}
