//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::new(4);
        let s = vec(any::<u8>(), 2..9);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::new(8);
        let s = vec(vec(0usize..4, 1..4), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        assert!(v
            .iter()
            .all(|inner| !inner.is_empty() && inner.iter().all(|&x| x < 4)));
    }
}
