//! `any::<T>()` support for primitive types.

use crate::strategy::{Strategy, TestRng};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the entire domain of `T` (`proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward printable ASCII, occasionally wider BMP.
        let raw = rng.next_u64();
        if raw & 3 != 0 {
            #[allow(clippy::cast_possible_truncation)]
            let b = (raw >> 2) as u8 & 0x7f;
            char::from(b.max(b' '))
        } else {
            char::from_u32((raw >> 2) as u32 % 0xD800).unwrap_or('a')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::new(11);
        let trues = (0..100)
            .filter(|_| any::<bool>().generate(&mut rng))
            .count();
        assert!(trues > 10 && trues < 90);
    }

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::new(2);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
