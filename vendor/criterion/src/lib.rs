//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough API surface for the bench suite to compile and
//! produce *indicative* wall-clock numbers without the statistics engine:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints the
//! median per-iteration time.

use std::time::{Duration, Instant};

/// Opaque benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 30,
        }
    }
}

/// Batch sizing hints (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Times `f` (which receives a [`Bencher`]) and prints the median sample.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        match b.median() {
            Some(d) => println!(
                "  {label:<40} median {d:>12?} ({} samples)",
                b.samples.len()
            ),
            None => println!("  {label:<40} produced no samples"),
        }
        self
    }

    /// Ends the group (printing nothing extra; parity with criterion).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box` semantics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function list (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
