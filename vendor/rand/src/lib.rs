//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, deterministic implementation of the slice
//! of the rand 0.8 API it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and [`Rng::gen_range`] / [`Rng::gen_bool`]. The generator is SplitMix64 —
//! statistically fine for synthetic workloads, explicitly **not** for
//! cryptography.

/// Uniform sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Minimal core-RNG object-safe interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.abs_diff(self.start);
                let offset = rng.next_u64() % u64::from(span);
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    self.start.wrapping_add(offset as $t)
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = u64::from(end.abs_diff(start));
                let offset =
                    if span == u64::MAX { rng.next_u64() } else { rng.next_u64() % (span + 1) };
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    start.wrapping_add(offset as $t)
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, i8, i16, i32, i64);

macro_rules! impl_wide_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                let offset = if span == u64::MAX { rng.next_u64() } else { rng.next_u64() % (span + 1) };
                #[allow(clippy::cast_possible_truncation)]
                {
                    start + offset as $t
                }
            }
        }
    )*};
}

impl_wide_range!(u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing methods layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        #[allow(clippy::cast_precision_loss)]
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u8..=16);
            assert!((1..=16).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
