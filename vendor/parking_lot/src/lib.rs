//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the parking_lot API shape (guards returned directly, no
//! `LockResult`); poisoning is sidestepped by taking the inner value from a
//! poisoned lock, which is parking_lot's behaviour in spirit (it has no
//! poisoning at all).

use std::sync::PoisonError;

/// Mutual exclusion backed by `std::sync::Mutex` without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, returning the guard directly.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock backed by `std::sync::RwLock` without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
