//! The scenario-campaign harness: writes `BENCH_scenario.json` at the
//! repo root (experiment E18's recorded form) and `CRASH_*.json` for
//! every deduplicated, shrunk fuzzer crash.
//!
//! ```sh
//! cargo run --release --example scenario_bench             # full run, writes BENCH_scenario.json
//! cargo run --release --example scenario_bench -- --quick  # CI-sized, prints only
//! cargo run --release --example scenario_bench -- --repro CRASH_packet_xxxxxxxx.json
//! ```
//!
//! The campaign runs the standard library (flash crowd, route-flap storm,
//! cascading backend death, slowloris trickle, mixed attack/benign) and
//! the pinned regressions (TTL loop, no-op-insert cache nuke, premature
//! epoch free, half-pair NAT, parser overread), each three times — plain,
//! replay, traced — from its single u64 seed. Then one population-fuzzing
//! run per target (packet, dns, bitc).
//!
//! Acceptance floors asserted here (every mode):
//!
//! * every row replays to an identical digest across all three runs;
//! * every declared oracle holds — a failing pinned regression means a
//!   fixed headline bug resurfaced;
//! * the packet fuzzer rediscovers the seeded trusting-parser bug within
//!   its budget, and the shrunk artifact still reproduces.

use std::process::ExitCode;
use sysscenario::fuzz::{self, CrashArtifact, FuzzConfig, FuzzTarget};
use sysscenario::library;
use sysscenario::report::CampaignReport;
use sysscenario::run_campaign;

fn repro(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("repro: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(artifact) = CrashArtifact::from_json(&json) else {
        eprintln!("repro: {path} is not a crash artifact");
        return ExitCode::from(2);
    };
    let input = if artifact.minimized.is_empty() {
        &artifact.input
    } else {
        &artifact.minimized
    };
    eprintln!(
        "repro: target {}, {} bytes (shrunk from {}), expecting: {}",
        artifact.target.name(),
        input.len(),
        artifact.input.len(),
        artifact.message
    );
    match fuzz::replay(artifact.target, input) {
        Some(message) => {
            println!("crash reproduced: {message}");
            ExitCode::SUCCESS
        }
        None => {
            println!("crash did NOT reproduce (fixed? stale artifact?)");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    sysobs::install_panic_dump();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--repro") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: scenario_bench --repro <CRASH_*.json>");
            return ExitCode::from(2);
        };
        return repro(path);
    }
    let quick = args.iter().any(|a| a == "--quick");

    let (standard, regressions) = if quick {
        (
            library::quick_scale(library::standard()),
            library::quick_scale(library::regressions()),
        )
    } else {
        (library::standard(), library::regressions())
    };
    eprintln!(
        "scenario bench: {} standard + {} regression scenarios, triple-run replay check...",
        standard.len(),
        regressions.len()
    );
    let report = CampaignReport {
        scenarios: run_campaign(&standard),
        regressions: run_campaign(&regressions),
        fuzz: [FuzzTarget::Packet, FuzzTarget::Dns, FuzzTarget::Bitc]
            .into_iter()
            .map(|target| {
                fuzz::run_fuzz(&FuzzConfig {
                    iterations: if quick { 3_000 } else { 30_000 },
                    ..FuzzConfig::quick(target)
                })
            })
            .collect(),
    };
    let json = report.to_json();
    print!("{json}");

    // Crash artifacts land at their stable content-addressed paths with
    // the repro command embedded; `--repro` closes the loop.
    for f in &report.fuzz {
        for crash in &f.crashes {
            let name = crash.file_name();
            std::fs::write(&name, crash.to_json()).expect("write crash artifact");
            eprintln!(
                "wrote {name} ({} bytes shrunk to {}): {}",
                crash.input.len(),
                crash.minimized.len(),
                crash.message
            );
        }
    }

    for e in report.scenarios.iter().chain(&report.regressions) {
        assert!(
            e.replay_verified,
            "replay diverged in {}: the scenario is not a pure function of its seed",
            e.outcome.name
        );
        assert!(
            e.outcome.expectations_ok(),
            "oracles failed in {}: {:?}",
            e.outcome.name,
            e.outcome.failures
        );
    }
    let packet = report
        .fuzz
        .iter()
        .find(|f| matches!(f.target, FuzzTarget::Packet))
        .expect("packet target ran");
    assert!(
        packet.seeded_bug_found,
        "the packet fuzzer must rediscover the seeded trusting-parser bug \
         within its budget ({} iterations)",
        packet.iterations
    );
    for crash in &packet.crashes {
        assert!(
            fuzz::replay(FuzzTarget::Packet, &crash.minimized).is_some(),
            "shrunk artifact no longer reproduces: {}",
            crash.message
        );
    }
    eprintln!(
        "headline: {} rows, all replays verified, all oracles hold, seeded bug {}",
        report.scenarios.len() + report.regressions.len(),
        if report.seeded_bug_found() {
            "rediscovered"
        } else {
            "MISSED"
        }
    );
    if quick {
        eprintln!("(--quick: not writing BENCH_scenario.json)");
    } else {
        std::fs::write("BENCH_scenario.json", json).expect("write BENCH_scenario.json");
        eprintln!("wrote BENCH_scenario.json");
    }
    ExitCode::SUCCESS
}
