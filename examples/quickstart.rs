//! Quickstart: the full BitC pipeline on one program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Parses a program, infers its types, evaluates it with the reference
//! interpreter, compiles it, runs it on both VM representations, and
//! verifies a contract about the algorithm with the prover.

use bitc_core::compile::compile_source;
use bitc_core::contracts::{verify_function, Contract};
use bitc_core::ffi::NativeRegistry;
use bitc_core::infer::infer_program;
use bitc_core::interp::eval_program;
use bitc_core::parser::parse_program;
use bitc_core::vm::{Boxed, Unboxed, Vm};
use bitc_verify::term::{Cmp, Formula, Term};
use bitc_verify::vcgen::{verify_procedure, Procedure, Stmt};

const PROGRAM: &str = "
; Sum of squares below n, the systems-programming way: a loop and mutation,
; under an ML-strength type system.
(define sum-squares (lambda (n)
  (let ((i 0) (acc 0))
    (begin
      (while (< i n)
        (set! acc (+ acc (* i i)))
        (set! i (+ i 1)))
      acc))))
; A contract-checkable helper (linear fragment).
(define clamp (lambda (x lo hi)
  (if (< x lo) lo (if (> x hi) hi x))))
(sum-squares (clamp 100 0 1000))
";

fn main() {
    // 1. Parse.
    let program = parse_program(PROGRAM).expect("parse");
    println!("parsed {} definition(s) + main", program.defs.len());

    // 2. Typecheck (Hindley–Milner with mutation).
    let typed = infer_program(&program).expect("typecheck");
    for (name, scheme) in &typed.def_types {
        println!("  {name} : {scheme}");
    }
    println!("  main : {}", typed.main_type);

    // 3. Reference interpreter.
    let value = eval_program(&program).expect("interpret");
    println!("interpreter => {value}");

    // 4. Compile once, run under both value representations.
    let bytecode = compile_source(PROGRAM).expect("compile");
    println!(
        "compiled to {} instructions across {} functions",
        bytecode.instruction_count(),
        bytecode.functions.len()
    );
    let registry = NativeRegistry::new();
    let unboxed = Vm::<Unboxed>::new(&bytecode, &registry)
        .and_then(|mut vm| vm.run_int())
        .expect("unboxed run");
    let boxed = Vm::<Boxed>::new(&bytecode, &registry)
        .and_then(|mut vm| vm.run_int())
        .expect("boxed run");
    println!("unboxed VM => {unboxed}");
    println!("boxed VM   => {boxed}");
    assert_eq!(unboxed, boxed);

    // 5. Verify a contract against the *actual* AST of clamp — the BitC
    //    workflow: requires lo <= hi, ensures lo <= result <= hi.
    let v = Term::var;
    let contract = Contract {
        requires: Formula::cmp(Cmp::Le, v("lo"), v("hi")),
        ensures: Formula::and(
            Formula::cmp(Cmp::Ge, v("result"), v("lo")),
            Formula::cmp(Cmp::Le, v("result"), v("hi")),
        ),
    };
    for (vc, outcome) in verify_function(&program, "clamp", &contract).expect("in fragment") {
        println!("prover: {} => {outcome}", vc.label);
    }

    // 6. And a hand-modelled invariant of the loop: one step preserves
    //    acc >= 0 when the increment is nonnegative.
    let step = Procedure {
        name: "sum-squares-step".into(),
        requires: Formula::And(vec![
            Formula::cmp(Cmp::Ge, v("acc"), Term::Int(0)),
            Formula::cmp(Cmp::Ge, v("sq"), Term::Int(0)),
        ]),
        ensures: Formula::cmp(Cmp::Ge, v("acc"), Term::Int(0)),
        body: vec![Stmt::Assign(
            "acc".into(),
            Term::Add(Box::new(v("acc")), Box::new(v("sq"))),
        )],
    };
    for (vc, outcome) in verify_procedure(&step) {
        println!("prover: {} => {outcome}", vc.label);
    }
    println!("quickstart complete");
}
