//! Regenerates the experiment tables in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example experiments -- all          # every table, quick scale
//! cargo run --release --example experiments -- e2 e3        # a subset
//! cargo run --release --example experiments -- --full all   # paper-scale sizes
//! ```

use plos06::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted = if wanted.is_empty() || wanted.contains(&"all") {
        vec![
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e9net", "e10", "e11", "e12",
            "e13", "e14", "e15", "e16", "e17", "e18", "f1",
        ]
    } else {
        wanted
    };
    println!("# PLOS06 reproduction experiments ({scale:?} scale)\n");
    for id in wanted {
        let table = match id {
            "e1" => experiments::e1_alloc::run(scale),
            "e2" => experiments::e2_boxing::run(scale),
            "e3" => experiments::e3_optimizer::run(scale),
            "e4" => experiments::e4_ffi::run(scale),
            "e5" => experiments::e5_verify::run(scale),
            "e6" => experiments::e6_ipc::run(scale),
            "e7" => experiments::e7_shared_state::run(scale),
            "e8" => experiments::e8_repr::run(scale),
            "e9" => experiments::e9_faults::run(scale),
            "e9net" => experiments::e9_faults::run_net(scale),
            "e10" => experiments::e10_dataplane::run(scale),
            "e11" => experiments::e11_obs::run(scale),
            "e12" => experiments::e12_cache::run(scale),
            "e13" => experiments::e13_check::run(scale),
            "e14" => experiments::e14_conntrack::run(scale),
            "e15" => experiments::e15_churn::run(scale),
            "e16" => experiments::e16_postmortem::run(scale),
            "e17" => experiments::e17_lb::run(scale),
            "e18" => experiments::e18_scenario::run(scale),
            "f1" => experiments::e2_boxing::run_figure(scale),
            other => {
                eprintln!("unknown experiment {other} (use e1..e18, e9net, or all)");
                std::process::exit(2);
            }
        };
        println!("{table}");
    }
}
