//! The conntrack bench harness: writes `BENCH_conntrack.json` at the repo
//! root (experiment E14's recorded form).
//!
//! ```sh
//! cargo run --release --example conntrack_bench            # full run, tens of seconds
//! cargo run --release --example conntrack_bench -- --quick # CI-sized, prints only
//! ```
//!
//! The full run sweeps the benign-only live-flow population 10k → 1M
//! (pps, p50/p99/p999 latency), then runs the attack matrix at 100k benign
//! flows: 50 % and 90 % SYN-flood mixes with the overload defense on, and
//! the 90 % mix again with the defense off as the collapse contrast. The
//! headline is established-flow goodput retained at the 90 % mix, which
//! the full run asserts stays ≥ 70 % of the benign-only baseline. Both
//! modes assert the steady state allocates (amortized) under 0.05 heap
//! allocations per packet — generator included, via [`FrameForge`]'s
//! in-place template patching.
//!
//! [`FrameForge`]: sysnet::ctbench::FrameForge

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use sysnet::ctbench::{run_ct_bench, CtBenchConfig};

/// Counts every heap allocation in the process, so the bench measures the
/// tracked data plane's steady-state allocation rate instead of asserting it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    // A panicking bench run leaves its flight-recorder tail and metrics
    // snapshot on stderr instead of a bare backtrace.
    sysobs::install_panic_dump();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = if quick {
        CtBenchConfig::quick()
    } else {
        CtBenchConfig::full()
    };
    cfg.alloc_counter = Some(alloc_count);
    eprintln!(
        "conntrack bench: scale {:?} flows, attack at {} flows x mixes {:?}, \
         {} workers, backlog {}...",
        cfg.scale_flows, cfg.attack_flows, cfg.attack_mixes, cfg.workers, cfg.syn_backlog
    );
    let report = run_ct_bench(&cfg);
    let json = report.to_json();
    print!("{json}");

    let baseline = *report.baseline().expect("baseline ran");
    for p in report.scale.iter().chain(report.attack.iter()) {
        // Hard robustness floor: the sharded gauge must cap the table at
        // its configured capacity no matter the offered load.
        assert!(
            p.peak_flows <= p.capacity,
            "flow table exceeded capacity: {} > {} (mix {:.2}, defense {})",
            p.peak_flows,
            p.capacity,
            p.attack_mix,
            p.defense
        );
        let allocs = p
            .steady_allocs_per_packet
            .expect("alloc counter was supplied");
        // Zero-alloc steady state, generator included: after the stream's
        // first half warms the pool and slab, the second half must allocate
        // (amortized) well under one Vec per packet.
        assert!(
            allocs < 0.05,
            "steady state must not allocate per packet: {allocs:.4} allocs/pkt \
             at {} flows, mix {:.2}",
            p.benign_flows,
            p.attack_mix
        );
    }
    let headline = report.headline().expect("attack matrix ran");
    let retained = headline.goodput_retained(&baseline);
    eprintln!(
        "headline: {:.1} % attack mix at {} benign flows -> {:.1} % goodput retained",
        headline.attack_mix * 100.0,
        headline.benign_flows,
        retained * 100.0
    );
    if !quick {
        // The acceptance floor: graceful degradation, not collapse. The
        // quick run skips it — tiny streams make the ratio noisy.
        assert!(
            retained >= 0.70,
            "defense must retain >= 70 % goodput at the hottest mix: {retained:.3}"
        );
    }
    if quick {
        eprintln!("(--quick: not writing BENCH_conntrack.json)");
    } else {
        std::fs::write("BENCH_conntrack.json", json).expect("write BENCH_conntrack.json");
        eprintln!("wrote BENCH_conntrack.json");
    }
}
