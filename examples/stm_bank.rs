//! The composition problem, live: lock-based transfer vs STM transfer under
//! a concurrent auditor.
//!
//! ```sh
//! cargo run --release --example stm_bank
//! ```
//!
//! This is the paper's (and the Harris et al. STM paper's) bank-account
//! example. The broken bank composes two individually-correct critical
//! sections; the auditor catches it red-handed. The STM bank composes the
//! same two operations inside one transaction; the auditor never blinks.

use sysconc::bank::{run_contention, Bank, BrokenComposedBank, StmBank};
use sysconc::stm::stm_stats;

fn main() {
    const ACCOUNTS: usize = 32;
    const INITIAL: i64 = 1_000;
    const EXPECTED: i64 = ACCOUNTS as i64 * INITIAL;

    println!("bank with {ACCOUNTS} accounts x {INITIAL} units; invariant: total == {EXPECTED}\n");

    // 1. Deterministic demonstration of the exposed intermediate state.
    let broken = BrokenComposedBank::new(2, INITIAL);
    assert!(broken.debit(0, 400), "debit is individually correct");
    let mid = broken.audit();
    println!("broken bank, between debit and credit: audit sees {mid} (400 units in flight!)");
    broken.credit(1, 400);
    println!(
        "broken bank, after credit:             audit sees {}\n",
        broken.audit()
    );

    // 2. Race them: four transfer threads + a continuous auditor.
    let broken = BrokenComposedBank::new(ACCOUNTS, INITIAL);
    let r = run_contention(&broken, 4, 20_000);
    println!(
        "broken-composed: {:>8.0} transfers/s, {} audits, {} ANOMALIES",
        r.throughput(),
        r.audits,
        r.audit_anomalies
    );

    let stm = StmBank::new(ACCOUNTS, INITIAL);
    let before = stm_stats();
    let r = run_contention(&stm, 4, 20_000);
    let after = stm_stats();
    println!(
        "stm:             {:>8.0} transfers/s, {} audits, {} anomalies, {} aborts/retries",
        r.throughput(),
        r.audits,
        r.audit_anomalies,
        after.aborts - before.aborts
    );
    assert_eq!(
        r.audit_anomalies, 0,
        "STM transactions are atomic to auditors"
    );
    assert_eq!(stm.audit(), EXPECTED);
    println!("\nSTM composed debit+credit into one atomic action; the locks could not.");
}
