//! `bitc` — a command-line driver for the language.
//!
//! ```sh
//! cargo run --release --example bitc -- run prog.bitc       # typecheck + run (unboxed VM)
//! cargo run --release --example bitc -- run --boxed prog.bitc
//! cargo run --release --example bitc -- check prog.bitc     # typecheck only
//! cargo run --release --example bitc -- dis prog.bitc       # disassemble
//! cargo run --release --example bitc -- dis -O prog.bitc    # optimized disassembly
//! echo '(+ 1 2)' | cargo run --release --example bitc -- run -   # from stdin
//! ```

use bitc_core::compile::compile_program;
use bitc_core::ffi::NativeRegistry;
use bitc_core::infer::infer_program;
use bitc_core::opt::{compile_optimized, OptLevel};
use bitc_core::parser::parse_program;
use bitc_core::vm::{Boxed, Unboxed, Vm};
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bitc <run|check|dis> [--boxed] [-O] <file.bitc | ->");
    ExitCode::from(2)
}

fn read_source(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut boxed = false;
    let mut optimize = false;
    let mut path = None;
    for a in &args {
        match a.as_str() {
            "run" | "check" | "dis" if command.is_none() => command = Some(a.clone()),
            "--boxed" => boxed = true,
            "-O" | "--optimize" => optimize = true,
            other if path.is_none() => path = Some(other.to_owned()),
            _ => return usage(),
        }
    }
    let (Some(command), Some(path)) = (command, path) else {
        return usage();
    };
    let source = match read_source(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bitc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bitc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let typed = match infer_program(&program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bitc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "check" => {
            for (name, scheme) in &typed.def_types {
                println!("{name} : {scheme}");
            }
            println!("main : {}", typed.main_type);
            ExitCode::SUCCESS
        }
        "dis" => {
            let bc = if optimize {
                compile_optimized(&program, OptLevel::Full)
            } else {
                compile_program(&program)
            };
            match bc {
                Ok(bc) => {
                    print!("{}", bc.disassemble());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bitc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let bc = if optimize {
                compile_optimized(&program, OptLevel::Full)
            } else {
                compile_program(&program)
            };
            let bc = match bc {
                Ok(bc) => bc,
                Err(e) => {
                    eprintln!("bitc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let registry = NativeRegistry::with_defaults();
            let result = if boxed {
                Vm::<Boxed>::new(&bc, &registry)
                    .and_then(|mut vm| vm.run().map(|v| format!("{v:?}")))
            } else {
                Vm::<Unboxed>::new(&bc, &registry)
                    .and_then(|mut vm| vm.run_int().map(|n| n.to_string()))
            };
            match result {
                Ok(v) => {
                    println!("{v}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bitc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
