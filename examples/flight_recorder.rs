//! Flight-recorder dump smoke: runs a faulted IPC workload under full
//! tracing and prints both dump formats.
//!
//! ```sh
//! cargo run --release --example flight_recorder             # text dump
//! cargo run --release --example flight_recorder -- --chrome # trace_event JSON
//! ```
//!
//! The workload is deterministic: a seeded [`sysfault`] plan drops IPC
//! messages on a fixed schedule while a client and server ping-pong through
//! the resilient retry path. Every run of this example therefore produces
//! the same fault-log digest *and* the same flight-recorder shape digest —
//! the property `tests/obs_replay.rs` locks in. The `--chrome` output loads
//! directly into `chrome://tracing` / Perfetto.

use microkernel::kernel::{Kernel, SITE_IPC_DROP};
use microkernel::rights::Rights;
use sysfault::{FaultPlan, Schedule, SharedInjector};
use sysmem::freelist::FreeListHeap;
use sysobs::Mode;

fn run_workload() -> (u64, u64) {
    sysobs::clear();
    let mut k = Kernel::new(Box::new(FreeListHeap::new(1 << 20)));
    let inj = SharedInjector::new(
        FaultPlan::new(0x0B5E_2026).with_site(SITE_IPC_DROP, Schedule::EveryNth(7)),
    );
    k.set_injector(inj.clone());
    let server = k.spawn_process();
    let client = k.spawn_process();
    let req_s = k.create_endpoint(server).unwrap();
    let req_c = k.grant_cap(server, req_s, client, Rights::SEND).unwrap();
    let rep_s = k.create_endpoint(server).unwrap();
    let rep_c = k.grant_cap(server, rep_s, client, Rights::RECV).unwrap();
    for _ in 0..40 {
        // Some round trips lose their request to the injector and recover
        // through the watchdog; both paths land in the trace.
        let _ = k.ping_pong_resilient(client, server, (req_s, req_c), (rep_s, rep_c), 8, 2_000, 4);
    }
    (inj.digest(), sysobs::shape_digest())
}

fn main() {
    let chrome = std::env::args().any(|a| a == "--chrome");
    sysobs::set_mode(Mode::Tracing);
    sysobs::install_panic_dump();

    let (fault_digest, shape) = run_workload();
    let json = sysobs::dump_chrome_json();
    let text = sysobs::dump_text();

    if chrome {
        print!("{json}");
    } else {
        print!("{text}");
    }
    eprintln!(
        "fault log digest {fault_digest:#018x}, trace shape digest {shape:#018x}, \
         {} trace events",
        sysobs::collect_events().len()
    );

    // Smoke guarantees for ci.sh: the dump is non-trivial and the workload's
    // signature events are present.
    assert!(
        !sysobs::collect_events().is_empty(),
        "tracing produced no events"
    );
    assert!(
        json.contains("kernel.syscall"),
        "syscall spans missing from dump"
    );
    assert!(
        text.contains("fault.fired"),
        "injected faults missing from dump"
    );
    let (fault2, shape2) = run_workload();
    assert_eq!(
        fault_digest, fault2,
        "fault schedule must replay identically"
    );
    assert_eq!(shape, shape2, "trace shape must replay identically");
    eprintln!("replay reproduced both digests");
    sysobs::set_mode(Mode::Disabled);
}
