//! The observability-overhead bench harness (experiment E11): writes
//! `BENCH_obs.json` at the repo root.
//!
//! ```sh
//! cargo run --release --example obs_bench            # full run, enforces the budget
//! cargo run --release --example obs_bench -- --quick # CI-sized, prints only
//! ```
//!
//! The full run measures the E10 router stream under four observability
//! configurations (instrumentation compiled out / compiled in but disabled /
//! counters only / full flight-recorder tracing) and the E6 IPC ping-pong
//! under the three runtime modes, then **enforces the overhead budget**:
//! with instrumentation compiled in but disabled the router must stay within
//! 5% of the compiled-out baseline, counters-only within 15%, and full
//! tracing within 90% on the IPC round trip (hot spans are single-marker
//! events, so the begin/end pair's second clock read is gone). `--quick`
//! runs small sizes and skips both the file write and the budget assertions
//! (a CI box under load can't referee a 5% throughput claim).

use plos06::experiments::e11_obs;
use plos06::experiments::Scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    eprintln!("obs bench: measuring observability overhead at {scale:?} scale...");
    let report = e11_obs::measure(scale);
    let json = report.to_json();
    print!("{json}");
    if quick {
        eprintln!("(--quick: not writing BENCH_obs.json, not enforcing the budget)");
        return;
    }
    let disabled = report.router_point("disabled").expect("disabled point");
    let counters = report.router_point("counters").expect("counters point");
    let ipc_tracing = report.ipc_point("tracing").expect("ipc tracing point");
    assert!(
        disabled.overhead_pct <= 5.0,
        "budget: disabled instrumentation costs {:.1}% > 5% router throughput",
        disabled.overhead_pct
    );
    assert!(
        counters.overhead_pct <= 15.0,
        "budget: counters-only costs {:.1}% > 15% router throughput",
        counters.overhead_pct
    );
    // Full tracing on the sub-µs IPC path: hot spans collapse to one ring
    // write + one clock read each, which must keep the round trip under
    // 1.9x the disabled mode (it measured 2.1x before the hot-span form;
    // ~1.75x after).
    assert!(
        ipc_tracing.overhead_pct <= 90.0,
        "budget: tracing costs {:.1}% > 90% on the IPC round trip",
        ipc_tracing.overhead_pct
    );
    eprintln!(
        "budget held: disabled {:+.1}% (≤5%), counters {:+.1}% (≤15%), \
         ipc tracing {:+.1}% (≤90%)",
        disabled.overhead_pct, counters.overhead_pct, ipc_tracing.overhead_pct
    );
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json");
}
