//! The observability-overhead bench harness (experiment E11): writes
//! `BENCH_obs.json` at the repo root.
//!
//! ```sh
//! cargo run --release --example obs_bench            # full run, enforces the budget
//! cargo run --release --example obs_bench -- --quick # CI-sized, prints only
//! ```
//!
//! The full run measures the E10 router stream under five observability
//! configurations (instrumentation compiled out / compiled in but disabled /
//! counters only / adaptive sampled tracing / full flight-recorder tracing)
//! and the E6 IPC ping-pong under the four runtime modes, then **enforces
//! the overhead budget**: with instrumentation compiled in but disabled the
//! router must stay within 5% of the compiled-out baseline, counters-only
//! within 15%, adaptive sampling within 5% (that is the always-on claim:
//! sampled causal tracing rides inside the disabled-mode budget), and on
//! the IPC round trip sampling within 15% and full tracing within 120% of
//! disabled (tracing pays a linked span pair plus causal-context
//! propagation on every message — the debug mode, not the always-on
//! default). `--quick` runs small sizes and skips both
//! the file write and the budget assertions (a CI box under load can't
//! referee a 5% throughput claim).
//!
//! `--postmortem-smoke` instead runs the E16 drop-spike incident end to
//! end — live counters, the standard watch set, a frozen flight-recorder
//! capture — and writes the emitted postmortem to `POSTMORTEM_smoke.json`
//! for CI to parse and validate.

use plos06::experiments::Scale;
use plos06::experiments::{e11_obs, e16_postmortem};

fn main() {
    if std::env::args().any(|a| a == "--postmortem-smoke") {
        eprintln!("obs bench: seeding a drop-rate spike for the postmortem smoke...");
        let json = e16_postmortem::smoke_postmortem()
            .expect("the seeded drop spike must fire the drop-rate-spike watch");
        std::fs::write("POSTMORTEM_smoke.json", &json).expect("write POSTMORTEM_smoke.json");
        eprintln!("wrote POSTMORTEM_smoke.json ({} bytes)", json.len());
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    eprintln!("obs bench: measuring observability overhead at {scale:?} scale...");
    let report = e11_obs::measure(scale);
    let json = report.to_json();
    print!("{json}");
    if quick {
        eprintln!("(--quick: not writing BENCH_obs.json, not enforcing the budget)");
        return;
    }
    let disabled = report.router_point("disabled").expect("disabled point");
    let counters = report.router_point("counters").expect("counters point");
    let sampled = report.router_point("sampled").expect("sampled point");
    let ipc_sampled = report.ipc_point("sampled").expect("ipc sampled point");
    let ipc_tracing = report.ipc_point("tracing").expect("ipc tracing point");
    assert!(
        disabled.overhead_pct <= 5.0,
        "budget: disabled instrumentation costs {:.1}% > 5% router throughput",
        disabled.overhead_pct
    );
    assert!(
        counters.overhead_pct <= 15.0,
        "budget: counters-only costs {:.1}% > 15% router throughput",
        counters.overhead_pct
    );
    // The tentpole claim: adaptive sampled tracing is cheap enough to
    // leave on in production — within the same 5% envelope the disabled
    // mode gets on the router, and 15% on the sub-µs IPC path where each
    // round trip pays the per-site draw several times.
    assert!(
        sampled.overhead_pct <= 5.0,
        "budget: adaptive sampling costs {:.1}% > 5% router throughput",
        sampled.overhead_pct
    );
    assert!(
        ipc_sampled.overhead_pct <= 15.0,
        "budget: adaptive sampling costs {:.1}% > 15% on the IPC round trip",
        ipc_sampled.overhead_pct
    );
    // Full tracing on the sub-µs IPC path is the *debug* mode, not the
    // always-on mode: each round trip now records linked send/recv spans
    // and propagates the causal trace context on the message itself, which
    // measures ≈2x the disabled round trip. The budget caps it at 2.2x so
    // a regression past the context-propagation cost still fails the run.
    assert!(
        ipc_tracing.overhead_pct <= 120.0,
        "budget: tracing costs {:.1}% > 120% on the IPC round trip",
        ipc_tracing.overhead_pct
    );
    eprintln!(
        "budget held: disabled {:+.1}% (≤5%), counters {:+.1}% (≤15%), \
         sampled {:+.1}% (≤5%), ipc sampled {:+.1}% (≤15%), ipc tracing {:+.1}% (≤120%)",
        disabled.overhead_pct,
        counters.overhead_pct,
        sampled.overhead_pct,
        ipc_sampled.overhead_pct,
        ipc_tracing.overhead_pct
    );
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json");
}
