//! The load-balancer bench harness: writes `BENCH_lb.json` at the repo
//! root (experiment E17's recorded form).
//!
//! ```sh
//! cargo run --release --example lb_bench            # full run, tens of seconds
//! cargo run --release --example lb_bench -- --quick # CI-sized, prints only
//! ```
//!
//! Four router scenarios — the no-LB tracked control, the rewriting steady
//! state, a port-scan storm riding on the steady population, and a large
//! slowloris population trickling data — plus the virtual-clock failover
//! harness that scripts a backend death through the seeded probe site and
//! measures goodput recovery in handshake-retry ticks.
//!
//! Acceptance floors asserted here (full run):
//!
//! * rewriting steady state sustains ≥ 90 % of the no-LB control's pps;
//! * the steady state allocates (amortized) < 0.05 heap allocations per
//!   packet, traffic generator included;
//! * goodput returns to 100 % within one health-probe interval of the
//!   scripted backend death.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use sysnet::lbbench::{run_lb_bench, FailoverConfig, LbBenchConfig};

/// Counts every heap allocation in the process, so the bench measures the
/// balanced data plane's steady-state allocation rate instead of asserting it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    sysobs::install_panic_dump();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = if quick {
        LbBenchConfig::quick()
    } else {
        LbBenchConfig::full()
    };
    cfg.alloc_counter = Some(alloc_count);
    let failover = FailoverConfig::default();
    eprintln!(
        "lb bench: {} flows steady, storm mix {:.0} %, {} slowloris flows, \
         {} workers; failover {} flows, probe {} ms...",
        cfg.flows,
        cfg.storm_mix * 100.0,
        cfg.slowloris_flows,
        cfg.workers,
        failover.flows,
        failover.probe_interval_ns / 1_000_000
    );
    let report = run_lb_bench(&cfg, &failover);
    let json = report.to_json();
    print!("{json}");

    for p in &report.scenarios {
        let allocs = p
            .steady_allocs_per_packet
            .expect("alloc counter was supplied");
        assert!(
            allocs < 0.05,
            "steady state must not allocate per packet: {allocs:.4} allocs/pkt \
             in {}",
            p.scenario.name()
        );
        assert!(
            p.benign_delivery() > 0.99,
            "benign delivery collapsed in {}: {:.3}",
            p.scenario.name(),
            p.benign_delivery()
        );
    }
    let f = &report.failover;
    assert!(f.victims > 0, "the scripted death must orphan some flows");
    assert!(
        f.recovered_within_probe_interval(),
        "goodput must recover within one probe interval: {:?} vs {}",
        f.recovery_ns,
        f.probe_interval_ns
    );
    let ratio = report.rewrite_pps_ratio().expect("both scenarios ran");
    eprintln!(
        "headline: rewrite pps ratio {:.3}, failover recovery {} us \
         (budget {} us)",
        ratio,
        f.recovery_ns.unwrap_or(0) / 1_000,
        f.probe_interval_ns / 1_000
    );
    if !quick {
        // The acceptance floor: NAT rewriting must cost < 10 % of the
        // tracked fast path. The quick run skips it — tiny streams make
        // the ratio noisy.
        assert!(
            ratio >= 0.90,
            "rewriting must sustain >= 90 % of the no-LB control: {ratio:.3}"
        );
    }
    if quick {
        eprintln!("(--quick: not writing BENCH_lb.json)");
    } else {
        std::fs::write("BENCH_lb.json", json).expect("write BENCH_lb.json");
        eprintln!("wrote BENCH_lb.json");
    }
}
