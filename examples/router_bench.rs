//! The data-plane bench harness: writes `BENCH_router.json` at the repo
//! root.
//!
//! ```sh
//! cargo run --release --example router_bench            # full sweep, a few seconds
//! cargo run --release --example router_bench -- --quick # CI-sized, prints only
//! ```
//!
//! The full sweep measures the linear-vs-trie lookup microbench and the
//! end-to-end pipeline at 1/2/4 workers × batch 16/64/256 over a skewed
//! flow population, then records packets/sec, p50/p99 per-packet latency,
//! the flow-cache hit rate, and — via the counting global allocator below —
//! steady-state heap allocations per packet, which the full run asserts is
//! ≈ 0 (the router's buffer pool at work). `--quick` runs a small sweep and
//! skips the file write so CI never clobbers the recorded trajectory with
//! throwaway numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use sysnet::bench::{run_sweep, SweepConfig};

/// Counts every heap allocation in the process, so the sweep can measure
/// the router's steady-state allocation rate instead of asserting it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    // A panicking bench run leaves its flight-recorder tail and metrics
    // snapshot on stderr instead of a bare backtrace.
    sysobs::install_panic_dump();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    cfg.alloc_counter = Some(alloc_count);
    eprintln!(
        "router bench: {} packets/config, {} routes, {} flows, workers {:?}, batches {:?}...",
        cfg.packets, cfg.routes, cfg.flows, cfg.worker_counts, cfg.batch_sizes
    );
    let report = run_sweep(&cfg);
    let json = report.to_json();
    print!("{json}");
    assert!(
        report.lookup.speedup() > 1.0,
        "trie must beat the linear scan at {} routes (linear {:.1} ns, trie {:.1} ns)",
        report.lookup.routes,
        report.lookup.linear_ns,
        report.lookup.trie_ns
    );
    for p in &report.sweep {
        let allocs = p
            .steady_allocs_per_packet
            .expect("alloc counter was supplied");
        // The zero-alloc steady state, measured: after the first half of the
        // stream warms the pool, the second half must allocate (amortized)
        // well under one Vec per packet. The budget leaves room for bounded
        // warm-tail growth (stalled-queue churn), not per-packet allocation.
        assert!(
            allocs < 0.05,
            "steady state must not allocate per packet: {allocs:.4} allocs/pkt \
             at workers={} batch={}",
            p.workers,
            p.batch_size
        );
    }
    for p in &report.churn {
        let allocs = p
            .steady_allocs_per_packet
            .expect("alloc counter was supplied");
        // Route churn must not reintroduce per-packet allocation: COW
        // spine clones recycle through the epoch domain's node pool.
        assert!(
            allocs < 0.05,
            "churn steady state allocated: {allocs:.4} allocs/pkt at \
             {} {}/s",
            p.mode_name(),
            p.target_updates_per_sec
        );
    }
    let cow_at = |rate: u64| {
        report
            .churn
            .iter()
            .find(|p| p.mode_name() == "cow-epoch" && p.target_updates_per_sec == rate)
    };
    if let (Some(base), Some(hot)) = (cow_at(0), cow_at(10_000)) {
        // The tentpole's headline: updates through the copy-on-write path
        // cost the data plane almost nothing — 10k updates/s must keep at
        // least 80 % of the zero-churn throughput.
        assert!(
            hot.pps >= 0.8 * base.pps,
            "cow-epoch throughput collapsed under churn: {:.0} pps at 10k \
             updates/s vs {:.0} pps at zero churn",
            hot.pps,
            base.pps
        );
    }
    if quick {
        eprintln!("(--quick: not writing BENCH_router.json)");
    } else {
        std::fs::write("BENCH_router.json", json).expect("write BENCH_router.json");
        eprintln!("wrote BENCH_router.json");
    }
}
