//! The data-plane bench harness: writes `BENCH_router.json` at the repo
//! root.
//!
//! ```sh
//! cargo run --release --example router_bench            # full sweep, a few seconds
//! cargo run --release --example router_bench -- --quick # CI-sized, prints only
//! ```
//!
//! The full sweep measures the linear-vs-trie lookup microbench and the
//! end-to-end pipeline at 1/2/4 workers × batch 16/64/256, then records
//! packets/sec and p50/p99 per-packet latency (plus the host core count —
//! worker scaling is only meaningful with >1 core). `--quick` runs a small
//! sweep and skips the file write so CI never clobbers the recorded
//! trajectory with throwaway numbers.

use sysnet::bench::{run_sweep, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    eprintln!(
        "router bench: {} packets/config, {} routes, workers {:?}, batches {:?}...",
        cfg.packets, cfg.routes, cfg.worker_counts, cfg.batch_sizes
    );
    let report = run_sweep(&cfg);
    let json = report.to_json();
    print!("{json}");
    assert!(
        report.lookup.speedup() > 1.0,
        "trie must beat the linear scan at {} routes (linear {:.1} ns, trie {:.1} ns)",
        report.lookup.routes,
        report.lookup.linear_ns,
        report.lookup.trie_ns
    );
    if quick {
        eprintln!("(--quick: not writing BENCH_router.json)");
    } else {
        std::fs::write("BENCH_router.json", json).expect("write BENCH_router.json");
        eprintln!("wrote BENCH_router.json");
    }
}
