//! Contract-checked bounded ring buffer: the prover proves the correct
//! implementation and pinpoints the bug in the broken one.
//!
//! ```sh
//! cargo run --release --example verified_queue
//! ```
//!
//! The paper's Challenge 1 workflow: the invariant lives next to the code,
//! the tool discharges it. The "bug" here — a forgotten wrap-around — is
//! the shape of mistake that becomes a kernel memory-safety hole in C.

use bitc_verify::term::{Cmp, Formula, Term};
use bitc_verify::vcgen::{verify_procedure, Procedure, Stmt, VcOutcome};
use microkernel::invariants::queue_enqueue_procedure;

/// A concrete ring buffer matching the verified model.
#[derive(Debug)]
struct RingBuffer {
    items: Vec<u64>,
    head: usize,
    tail: usize,
    count: usize,
}

impl RingBuffer {
    fn new(cap: usize) -> Self {
        RingBuffer {
            items: vec![0; cap],
            head: 0,
            tail: 0,
            count: 0,
        }
    }

    /// The code the model describes: enqueue with wrap.
    fn enqueue(&mut self, v: u64) -> bool {
        if self.count == self.items.len() {
            return false;
        }
        self.items[self.tail] = v;
        self.tail += 1;
        if self.tail >= self.items.len() {
            self.tail = 0; // the line the buggy variant forgets
        }
        self.count += 1;
        true
    }

    fn dequeue(&mut self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let v = self.items[self.head];
        self.head = (self.head + 1) % self.items.len();
        self.count -= 1;
        Some(v)
    }
}

fn report(proc: &Procedure) {
    println!("verifying `{}`:", proc.name);
    for (vc, outcome) in verify_procedure(proc) {
        println!("  {:<45} {}", vc.label, outcome);
    }
    println!();
}

fn main() {
    // 1. The correct enqueue model proves.
    report(&queue_enqueue_procedure(false));

    // 2. The buggy model (no wrap) is refuted; the counterexample is the
    //    exact boundary case: tail == cap - 1.
    let buggy = queue_enqueue_procedure(true);
    report(&buggy);
    let refutation = verify_procedure(&buggy)
        .into_iter()
        .find_map(|(_, o)| match o {
            VcOutcome::Refuted(m) => Some(m),
            _ => None,
        })
        .expect("the bug must be found");
    println!("counterexample: {refutation}");
    println!("(read: with these values the postcondition fails — tail escapes the buffer)\n");

    // 3. A second contract, written inline: dequeue decreases count.
    let v = Term::var;
    let dequeue = Procedure {
        name: "dequeue-count".into(),
        requires: Formula::and(
            Formula::cmp(Cmp::Ge, v("count"), Term::Int(1)),
            Formula::cmp(Cmp::Le, v("count"), v("cap")),
        ),
        ensures: Formula::and(
            Formula::cmp(Cmp::Ge, v("count"), Term::Int(0)),
            Formula::cmp(Cmp::Lt, v("count"), v("cap")),
        ),
        body: vec![Stmt::Assign(
            "count".into(),
            Term::Sub(Box::new(v("count")), Box::new(Term::Int(1))),
        )],
    };
    report(&dequeue);

    // 4. And the real implementation agrees with its model.
    let mut rb = RingBuffer::new(4);
    for i in 0..4 {
        assert!(rb.enqueue(i));
    }
    assert!(!rb.enqueue(99), "full queue rejects");
    assert_eq!(rb.dequeue(), Some(0));
    assert!(rb.enqueue(4), "wrap-around works");
    let drained: Vec<u64> = std::iter::from_fn(|| rb.dequeue()).collect();
    assert_eq!(drained, vec![1, 2, 3, 4]);
    println!("concrete ring buffer exercised: FIFO order preserved across the wrap");
}
