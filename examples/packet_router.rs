//! Packet router: zero-copy parsing + trie LPM + sharded workers, on the
//! `sysnet` data plane.
//!
//! ```sh
//! cargo run --release --example packet_router
//! ```
//!
//! The scenario from the paper's Challenge 3: network code needs exact,
//! zero-copy control over wire representation. This example used to carry
//! its own linear-scan route table; that table (bugs and all — an unmasked
//! prefix like `10.1.2.9/24` silently never matched) grew up into
//! `sysnet::lpm`, and the parse → validate → route loop into
//! `sysnet::router`. What remains here is the demo: build a table, push a
//! synthetic stream through the sharded router, and print where everything
//! went and why.

use sysnet::lpm::TrieTable;
use sysnet::pipeline::DROP_LABELS;
use sysnet::router::{run_stream, RouterConfig};
use sysrepr::packet::PacketBuilder;

const PORT_NAMES: [&str; 4] = ["core-a", "edge-b", "rack-c", "default-gw"];

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

fn main() {
    let mut table = TrieTable::new();
    table.insert(ip(10, 0, 0, 0), 8, 0u16).unwrap();
    table.insert(ip(10, 1, 0, 0), 16, 1u16).unwrap();
    // Deliberately unmasked: canonicalized to 10.1.2.0/24 on insert. The
    // old linear scan stored this verbatim and it never matched anything.
    table.insert(ip(10, 1, 2, 9), 24, 2u16).unwrap();
    table.insert(0, 0, 3u16).unwrap();

    // Synthesize a mixed stream: four destinations + some corrupted frames.
    let mut stream = Vec::new();
    for i in 0..30_000usize {
        let dst = match i % 4 {
            0 => [10, 0, 9, 9],
            1 => [10, 1, 9, 9],
            2 => [10, 1, 2, 9], // hits the canonicalized /24
            _ => [192, 168, 0, 1],
        };
        let mut b = PacketBuilder::udp()
            .src_ip([172, 16, 0, 1])
            .dst_ip(dst)
            .dst_port(4789)
            .payload(&[0xAA; 64]);
        if i % 500 == 0 {
            b = b.corrupt_checksum();
        }
        stream.push(b.build());
    }
    let total = stream.len();

    let config = RouterConfig {
        workers: 2,
        batch_size: 64,
        queue_depth: 8,
        ..RouterConfig::default()
    };
    let (report, elapsed) = run_stream(table, PORT_NAMES.len(), config, &stream);

    let totals = &report.stats.totals;
    println!(
        "routed {total} packets in {elapsed:?} across {} workers \
         (zero-copy views, trie LPM, bounded channels)",
        report.stats.per_worker.len()
    );
    for (port, n) in totals.per_port.iter().enumerate() {
        println!("  {:<12} {n}", PORT_NAMES[port]);
    }
    for (reason, n) in totals.dropped.iter().enumerate() {
        if *n > 0 {
            println!("  drop/{:<12} {n}", DROP_LABELS[reason]);
        }
    }
    println!(
        "  p50 {} ns, p99 {} ns per packet (batch submit → completion)",
        report.latency_ns(0.50),
        report.latency_ns(0.99)
    );

    let forwarded = totals.forwarded;
    let dropped = totals.dropped_total();
    assert_eq!(
        forwarded + dropped,
        total as u64,
        "every packet accounted for"
    );
    assert!(dropped >= 60, "failure injection must be caught");
    assert!(
        totals.per_port[2] > 0,
        "the unmasked /24 must forward after canonicalization"
    );
}
