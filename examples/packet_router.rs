//! Packet router: zero-copy parsing + longest-prefix-match forwarding.
//!
//! ```sh
//! cargo run --release --example packet_router
//! ```
//!
//! The scenario from the paper's Challenge 3: network code needs exact,
//! zero-copy control over wire representation. We parse a synthetic packet
//! stream with the bit-precise views, drop packets that fail validation
//! (bad checksum, truncation — LangSec style: reject before acting), and
//! route the rest through a longest-prefix-match table.

use sysrepr::packet::{EthernetView, PacketBuilder};

/// A routing-table entry: prefix, mask length, next hop.
#[derive(Debug, Clone, Copy)]
struct Route {
    prefix: u32,
    len: u8,
    next_hop: &'static str,
}

/// Longest-prefix match over a (small, linear) routing table.
fn route(table: &[Route], dst: u32) -> Option<&'static str> {
    table
        .iter()
        .filter(|r| {
            let mask = if r.len == 0 { 0 } else { u32::MAX << (32 - u32::from(r.len)) };
            dst & mask == r.prefix
        })
        .max_by_key(|r| r.len)
        .map(|r| r.next_hop)
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

fn main() {
    let table = [
        Route { prefix: ip(10, 0, 0, 0), len: 8, next_hop: "core-a" },
        Route { prefix: ip(10, 1, 0, 0), len: 16, next_hop: "edge-b" },
        Route { prefix: ip(10, 1, 2, 0), len: 24, next_hop: "rack-c" },
        Route { prefix: 0, len: 0, next_hop: "default-gw" },
    ];

    // Synthesize a mixed stream: three destinations + some corrupted frames.
    let mut stream = Vec::new();
    for i in 0..30_000usize {
        let dst = match i % 4 {
            0 => [10, 0, 9, 9],
            1 => [10, 1, 9, 9],
            2 => [10, 1, 2, 9],
            _ => [192, 168, 0, 1],
        };
        let mut b = PacketBuilder::udp()
            .src_ip([172, 16, 0, 1])
            .dst_ip(dst)
            .dst_port(4789)
            .payload(&[0xAA; 64]);
        if i % 500 == 0 {
            b = b.corrupt_checksum();
        }
        stream.push(b.build());
    }

    let mut forwarded: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    let mut dropped = 0usize;
    let t0 = std::time::Instant::now();
    for frame in &stream {
        // Total parsing: validate the whole header chain before any use.
        let Ok(eth) = EthernetView::parse(frame) else {
            dropped += 1;
            continue;
        };
        let Ok(ipv4) = eth.ipv4() else {
            dropped += 1;
            continue;
        };
        if ipv4.verify_checksum().is_err() || ipv4.ttl() == 0 {
            dropped += 1;
            continue;
        }
        match route(&table, ipv4.dst_u32()) {
            Some(hop) => *forwarded.entry(hop).or_insert(0) += 1,
            None => dropped += 1,
        }
    }
    let elapsed = t0.elapsed();
    println!("routed {} packets in {elapsed:?} (zero-copy, zero allocations in the fast path)", stream.len());
    for (hop, n) in &forwarded {
        println!("  {hop:<10} {n}");
    }
    println!("  dropped    {dropped} (checksum/validation failures)");
    let total: usize = forwarded.values().sum();
    assert_eq!(total + dropped, stream.len());
    assert!(dropped >= 60, "failure injection must be caught");
}
