//! Capability microkernel demo: boot, spawn, grant, IPC echo, revoke.
//!
//! ```sh
//! cargo run --release --example microkernel_demo
//! ```
//!
//! A miniature of the EROS/Coyotos world the paper's author builds: a
//! client may only reach the server through a SEND-only endpoint
//! capability; the server hands back a read-only page; destroying the
//! endpoint revokes the communication path. Every denied operation is a
//! typed error, not a crash.

use microkernel::kernel::{Kernel, Message, SysResult, Syscall};
use microkernel::rights::Rights;

fn main() {
    let mut kernel = Kernel::with_default_heap();
    println!("kernel booted with '{}' heap", kernel.heap_name());

    // Boot story: a root task spawns a server and a client.
    let server = kernel.spawn_process();
    let client = kernel.spawn_process();
    let ep = kernel.create_endpoint(server).expect("endpoint");
    // The client receives a *diminished* capability: SEND only.
    let client_ep = kernel
        .grant_cap(server, ep, client, Rights::SEND)
        .expect("grant");
    println!("spawned {server} (server, ALL rights) and {client} (client, SEND only)");

    // Echo transaction.
    kernel
        .syscall(server, Syscall::Recv { cap: ep })
        .expect("server waits");
    kernel
        .syscall(
            client,
            Syscall::Send {
                cap: client_ep,
                msg: Message::words(&[104, 105]),
            },
        )
        .expect("client sends");
    let request = kernel.take_delivered(server).expect("delivered");
    println!("server received payload {:?}", request.payload);

    // The client cannot receive on its SEND-only capability.
    let denied = kernel
        .syscall(client, Syscall::Recv { cap: client_ep })
        .unwrap_err();
    println!("client Recv on SEND-only cap => denied: {denied}");

    // Server shares memory: allocates a page, writes, sends a READ-only cap.
    let SysResult::Slot(page) = kernel
        .syscall(server, Syscall::AllocPage { words: 4 })
        .unwrap()
    else {
        unreachable!("AllocPage returns a slot")
    };
    kernel
        .syscall(
            server,
            Syscall::WritePage {
                cap: page,
                offset: 0,
                value: 0xFEED,
            },
        )
        .unwrap();
    let reply_ep = kernel.create_endpoint(server).expect("reply endpoint");
    let client_reply = kernel
        .grant_cap(server, reply_ep, client, Rights::RECV)
        .expect("grant");
    kernel
        .syscall(client, Syscall::Recv { cap: client_reply })
        .unwrap();
    // Mint a READ-only page cap and transfer it in the reply message.
    let SysResult::Slot(ro_page) = kernel
        .syscall(
            server,
            Syscall::Mint {
                src: page,
                rights: Rights::READ,
            },
        )
        .unwrap()
    else {
        unreachable!("Mint returns a slot")
    };
    let ro_capability = kernel.inspect_cap(server, ro_page).expect("minted cap");
    kernel
        .syscall(
            server,
            Syscall::Send {
                cap: reply_ep,
                msg: Message {
                    payload: vec![1],
                    cap: Some(ro_capability),
                    ctx: 0,
                },
            },
        )
        .expect("reply");
    let reply = kernel.take_delivered(client).expect("reply delivered");
    assert!(reply.cap.is_some(), "page capability transferred");
    // The client can read the shared page through the transferred cap...
    let transferred = microkernel::CapSlot(1); // first free slot after client_ep... found below
    let transferred = (0..8)
        .map(microkernel::CapSlot)
        .find(|&s| {
            kernel
                .inspect_cap(client, s)
                .map(|c| c.kind == microkernel::object::ObjectKind::Page)
                .unwrap_or(false)
        })
        .unwrap_or(transferred);
    let SysResult::Value(v) = kernel
        .syscall(
            client,
            Syscall::ReadPage {
                cap: transferred,
                offset: 0,
            },
        )
        .unwrap()
    else {
        unreachable!("ReadPage returns a value")
    };
    println!("client read shared page word 0 = {v:#x} through a READ-only cap");
    // ...but cannot write through it.
    let denied = kernel
        .syscall(
            client,
            Syscall::WritePage {
                cap: transferred,
                offset: 0,
                value: 0,
            },
        )
        .unwrap_err();
    println!("client WritePage through READ-only cap => denied: {denied}");

    // Revocation: destroying the endpoint cuts the client off.
    kernel
        .syscall(server, Syscall::DestroyEndpoint { cap: ep })
        .expect("destroy");
    let dangling = kernel
        .syscall(
            client,
            Syscall::Send {
                cap: client_ep,
                msg: Message::empty(),
            },
        )
        .unwrap_err();
    println!("after revocation, client Send => {dangling}");

    println!(
        "done: {} cycles total, {} bytes live in the kernel heap",
        kernel.cycles.total(),
        kernel.heap_live_bytes()
    );
}
